//! Fibers: the coordinate/payload lists that make up a fibertree level.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;

/// The payload of a fiber element: a scalar at the leaves, a child fiber at
/// intermediate levels.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Payload {
    /// A scalar value (leaf of the fibertree).
    Val(f64),
    /// A reference to the fiber one rank below.
    Fiber(Fiber),
}

impl Payload {
    /// Returns the scalar value if this is a leaf payload.
    pub fn as_val(&self) -> Option<f64> {
        match self {
            Payload::Val(v) => Some(*v),
            Payload::Fiber(_) => None,
        }
    }

    /// Returns the child fiber if this is an intermediate payload.
    pub fn as_fiber(&self) -> Option<&Fiber> {
        match self {
            Payload::Val(_) => None,
            Payload::Fiber(f) => Some(f),
        }
    }

    /// Mutable access to the child fiber if this is an intermediate payload.
    pub fn as_fiber_mut(&mut self) -> Option<&mut Fiber> {
        match self {
            Payload::Val(_) => None,
            Payload::Fiber(f) => Some(f),
        }
    }

    /// Whether the payload is empty w.r.t. `zero`: a scalar equal to `zero`
    /// or a fiber with no elements.
    pub fn is_empty(&self, zero: f64) -> bool {
        match self {
            Payload::Val(v) => *v == zero,
            Payload::Fiber(f) => f.is_empty(),
        }
    }

    /// Number of scalar leaves reachable from this payload.
    pub fn leaf_count(&self) -> usize {
        match self {
            Payload::Val(_) => 1,
            Payload::Fiber(f) => f.iter().map(|e| e.payload.leaf_count()).sum(),
        }
    }
}

impl From<f64> for Payload {
    fn from(v: f64) -> Self {
        Payload::Val(v)
    }
}

impl From<Fiber> for Payload {
    fn from(f: Fiber) -> Self {
        Payload::Fiber(f)
    }
}

/// One coordinate/payload pair within a fiber.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Element {
    /// The coordinate of this element within its fiber.
    pub coord: Coord,
    /// The value (leaf) or child fiber (intermediate) at that coordinate.
    pub payload: Payload,
}

impl Element {
    /// Creates an element from a coordinate and payload.
    pub fn new(coord: impl Into<Coord>, payload: impl Into<Payload>) -> Self {
        Element {
            coord: coord.into(),
            payload: payload.into(),
        }
    }
}

/// A fiber: the set of elements sharing all coordinates in all higher levels
/// of the fibertree (Sze et al. terminology, paper §2.1).
///
/// Elements are kept sorted by coordinate with no duplicates, which is what
/// makes concordant traversal (paper §3.2.2) a plain sequential walk and
/// two-finger intersection linear.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::{Fiber, Shape};
/// let mut f = Fiber::new(Shape::Interval(6));
/// f.append(1u64, 2.0).unwrap();
/// f.append(5u64, 6.0).unwrap();
/// assert_eq!(f.occupancy(), 2);
/// assert_eq!(f.get(&1u64.into()).and_then(|p| p.as_val()), Some(2.0));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Fiber {
    shape: Shape,
    elems: Vec<Element>,
}

impl Fiber {
    /// Creates an empty fiber with the given shape.
    pub fn new(shape: impl Into<Shape>) -> Self {
        Fiber {
            shape: shape.into(),
            elems: Vec::new(),
        }
    }

    /// Builds a fiber from pre-sorted elements.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::Unsorted`] if coordinates are not strictly
    /// increasing, or [`FibertreeError::OutOfShape`] if any coordinate falls
    /// outside `shape`.
    pub fn from_sorted(
        shape: impl Into<Shape>,
        elems: Vec<Element>,
    ) -> Result<Self, FibertreeError> {
        let shape = shape.into();
        for w in elems.windows(2) {
            if w[0].coord >= w[1].coord {
                return Err(FibertreeError::Unsorted {
                    prev: w[0].coord.clone(),
                    next: w[1].coord.clone(),
                });
            }
        }
        if let Some(e) = elems.iter().find(|e| !shape.contains(&e.coord)) {
            return Err(FibertreeError::OutOfShape {
                coord: e.coord.clone(),
                shape,
            });
        }
        Ok(Fiber { shape, elems })
    }

    /// Builds a leaf fiber from `(coordinate, value)` pairs, sorting them.
    ///
    /// # Errors
    ///
    /// Returns an error if a coordinate is duplicated or out of shape.
    pub fn from_pairs(
        shape: impl Into<Shape>,
        pairs: impl IntoIterator<Item = (u64, f64)>,
    ) -> Result<Self, FibertreeError> {
        let mut elems: Vec<Element> = pairs.into_iter().map(|(c, v)| Element::new(c, v)).collect();
        elems.sort_by(|a, b| a.coord.cmp(&b.coord));
        Self::from_sorted(shape, elems)
    }

    /// The shape (legal coordinate space) of this fiber.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Replaces the shape of this fiber (used by transforms that change the
    /// coordinate system but not the content).
    pub fn set_shape(&mut self, shape: Shape) {
        self.shape = shape;
    }

    /// Number of (present) elements in the fiber.
    pub fn occupancy(&self) -> usize {
        self.elems.len()
    }

    /// Whether the fiber has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Iterates over the elements in coordinate order.
    pub fn iter(&self) -> std::slice::Iter<'_, Element> {
        self.elems.iter()
    }

    /// Mutable iteration over the elements in coordinate order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Element> {
        self.elems.iter_mut()
    }

    /// The elements as a slice.
    pub fn elements(&self) -> &[Element] {
        &self.elems
    }

    /// Consumes the fiber, returning its elements.
    pub fn into_elements(self) -> Vec<Element> {
        self.elems
    }

    /// Binary-searches for `coord`, returning its payload if present.
    pub fn get(&self, coord: &Coord) -> Option<&Payload> {
        self.position(coord).map(|i| &self.elems[i].payload)
    }

    /// Mutable payload lookup by coordinate.
    pub fn get_mut(&mut self, coord: &Coord) -> Option<&mut Payload> {
        match self.elems.binary_search_by(|e| e.coord.cmp(coord)) {
            Ok(i) => Some(&mut self.elems[i].payload),
            Err(_) => None,
        }
    }

    /// The position (index) of `coord` within the fiber, if present.
    pub fn position(&self, coord: &Coord) -> Option<usize> {
        self.elems.binary_search_by(|e| e.coord.cmp(coord)).ok()
    }

    /// Appends an element whose coordinate must exceed all existing ones.
    ///
    /// This is the concordant-write path: outputs built in loop order only
    /// ever append.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::Unsorted`] if `coord` is not strictly
    /// greater than the last coordinate.
    pub fn append(
        &mut self,
        coord: impl Into<Coord>,
        payload: impl Into<Payload>,
    ) -> Result<(), FibertreeError> {
        let coord = coord.into();
        if let Some(last) = self.elems.last() {
            if last.coord >= coord {
                return Err(FibertreeError::Unsorted {
                    prev: last.coord.clone(),
                    next: coord,
                });
            }
        }
        self.elems.push(Element {
            coord,
            payload: payload.into(),
        });
        Ok(())
    }

    /// Gets the payload at `coord`, inserting `default()` if absent.
    ///
    /// This is the fibertree `getPayloadRef` / populate primitive: output
    /// fibers grow on demand as the loop nest discovers nonzero results.
    pub fn get_or_insert_with(
        &mut self,
        coord: &Coord,
        default: impl FnOnce() -> Payload,
    ) -> &mut Payload {
        match self.elems.binary_search_by(|e| e.coord.cmp(coord)) {
            Ok(i) => &mut self.elems[i].payload,
            Err(i) => {
                self.elems.insert(
                    i,
                    Element {
                        coord: coord.clone(),
                        payload: default(),
                    },
                );
                &mut self.elems[i].payload
            }
        }
    }

    /// Removes elements whose payload is empty w.r.t. `zero`, recursively.
    ///
    /// Sparse fibertrees omit empty payloads (paper §2.1); this restores
    /// that invariant after in-place updates.
    pub fn prune(&mut self, zero: f64) {
        for e in &mut self.elems {
            if let Payload::Fiber(f) = &mut e.payload {
                f.prune(zero);
            }
        }
        self.elems.retain(|e| !e.payload.is_empty(zero));
    }

    /// Total number of scalar leaves beneath this fiber.
    pub fn leaf_count(&self) -> usize {
        self.elems.iter().map(|e| e.payload.leaf_count()).sum()
    }

    /// Per-level statistics: `(fiber count, total occupancy)` for each level
    /// of the subtree rooted at this fiber, starting with this fiber's level.
    pub fn level_stats(&self) -> Vec<(usize, usize)> {
        let mut stats: Vec<(usize, usize)> = Vec::new();
        fn walk(f: &Fiber, depth: usize, stats: &mut Vec<(usize, usize)>) {
            if stats.len() <= depth {
                stats.resize(depth + 1, (0, 0));
            }
            stats[depth].0 += 1;
            stats[depth].1 += f.occupancy();
            for e in f.iter() {
                if let Payload::Fiber(child) = &e.payload {
                    walk(child, depth + 1, stats);
                }
            }
        }
        walk(self, 0, &mut stats);
        stats
    }
}

impl fmt::Display for Fiber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &e.payload {
                Payload::Val(v) => write!(f, "{}: {v}", e.coord)?,
                Payload::Fiber(inner) => write!(f, "{}: {inner}", e.coord)?,
            }
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Fiber {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(pairs: &[(u64, f64)]) -> Fiber {
        Fiber::from_pairs(Shape::Interval(100), pairs.iter().copied()).expect("valid fiber")
    }

    #[test]
    fn from_pairs_sorts_and_validates() {
        let f = leaf(&[(5, 1.0), (1, 2.0)]);
        let coords: Vec<u64> = f.iter().map(|e| e.coord.as_point().unwrap()).collect();
        assert_eq!(coords, vec![1, 5]);
    }

    #[test]
    fn duplicate_coordinates_are_rejected() {
        let err = Fiber::from_pairs(Shape::Interval(10), [(1, 1.0), (1, 2.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn out_of_shape_is_rejected() {
        let err = Fiber::from_pairs(Shape::Interval(4), [(7, 1.0)]);
        assert!(matches!(err, Err(FibertreeError::OutOfShape { .. })));
    }

    #[test]
    fn get_uses_binary_search() {
        let f = leaf(&[(1, 2.0), (5, 6.0), (9, 10.0)]);
        assert_eq!(f.get(&5u64.into()).and_then(Payload::as_val), Some(6.0));
        assert_eq!(f.get(&4u64.into()), None);
        assert_eq!(f.position(&9u64.into()), Some(2));
    }

    #[test]
    fn append_enforces_order() {
        let mut f = Fiber::new(Shape::Interval(10));
        f.append(3u64, 1.0).unwrap();
        assert!(f.append(3u64, 2.0).is_err());
        assert!(f.append(2u64, 2.0).is_err());
        f.append(7u64, 2.0).unwrap();
        assert_eq!(f.occupancy(), 2);
    }

    #[test]
    fn get_or_insert_keeps_sorted() {
        let mut f = leaf(&[(2, 1.0), (8, 2.0)]);
        let p = f.get_or_insert_with(&5u64.into(), || Payload::Val(0.0));
        *p = Payload::Val(42.0);
        let coords: Vec<u64> = f.iter().map(|e| e.coord.as_point().unwrap()).collect();
        assert_eq!(coords, vec![2, 5, 8]);
        assert_eq!(f.get(&5u64.into()).and_then(Payload::as_val), Some(42.0));
    }

    #[test]
    fn prune_removes_empty_payloads_recursively() {
        let inner_empty = Fiber::new(Shape::Interval(4));
        let inner_zero = leaf(&[(0, 0.0)]);
        let inner_ok = leaf(&[(1, 3.0)]);
        let mut root = Fiber::from_sorted(
            Shape::Interval(8),
            vec![
                Element::new(0u64, inner_empty),
                Element::new(1u64, inner_zero),
                Element::new(2u64, inner_ok),
            ],
        )
        .unwrap();
        root.prune(0.0);
        assert_eq!(root.occupancy(), 1);
        assert_eq!(root.iter().next().unwrap().coord, Coord::Point(2));
    }

    #[test]
    fn level_stats_counts_fibers_and_occupancy() {
        let row0 = leaf(&[(0, 1.0), (2, 2.0)]);
        let row1 = leaf(&[(1, 3.0)]);
        let root = Fiber::from_sorted(
            Shape::Interval(4),
            vec![Element::new(0u64, row0), Element::new(3u64, row1)],
        )
        .unwrap();
        let stats = root.level_stats();
        assert_eq!(stats, vec![(1, 2), (2, 3)]);
        assert_eq!(root.leaf_count(), 3);
    }

    #[test]
    fn display_matches_fibertree_notation() {
        let f = leaf(&[(1, 2.0), (3, 4.0)]);
        assert_eq!(f.to_string(), "[1: 2, 3: 4]");
    }
}
