//! Error types for fibertree construction and transforms.

use std::fmt;

use crate::coord::{Coord, Shape};

/// Errors produced by fibertree construction and transformation.
#[derive(Clone, PartialEq, Debug)]
pub enum FibertreeError {
    /// Coordinates were not strictly increasing.
    Unsorted {
        /// The earlier coordinate.
        prev: Coord,
        /// The offending (non-increasing) coordinate.
        next: Coord,
    },
    /// A coordinate fell outside the fiber's shape.
    OutOfShape {
        /// The offending coordinate.
        coord: Coord,
        /// The shape it violates.
        shape: Shape,
    },
    /// An operation addressed a rank that the tensor does not have.
    UnknownRank {
        /// The requested rank id.
        rank: String,
        /// The tensor's actual rank ids.
        have: Vec<String>,
    },
    /// A rank order given to swizzle was not a permutation of the tensor's
    /// ranks.
    BadPermutation {
        /// The requested order.
        requested: Vec<String>,
        /// The tensor's actual rank ids.
        have: Vec<String>,
    },
    /// A transform needed an interval-shaped rank but found a tuple shape
    /// (e.g. uniform-shape partitioning of an already-flattened rank).
    NotAnInterval {
        /// The rank whose shape was not an interval.
        rank: String,
    },
    /// The arity of an entry did not match the tensor's rank count.
    ArityMismatch {
        /// Expected number of coordinates.
        expected: usize,
        /// Number of coordinates provided.
        got: usize,
    },
    /// A partition size of zero was requested.
    ZeroPartition,
    /// A tensor could not be converted to compressed (CSF) storage.
    NotCompressible {
        /// Why the conversion failed (e.g. a flattened tuple-coordinate
        /// rank).
        reason: String,
    },
}

impl fmt::Display for FibertreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FibertreeError::Unsorted { prev, next } => {
                write!(f, "coordinates not strictly increasing: {prev} then {next}")
            }
            FibertreeError::OutOfShape { coord, shape } => {
                write!(f, "coordinate {coord} outside shape {shape}")
            }
            FibertreeError::UnknownRank { rank, have } => {
                write!(f, "unknown rank {rank:?}; tensor has ranks {have:?}")
            }
            FibertreeError::BadPermutation { requested, have } => {
                write!(
                    f,
                    "rank order {requested:?} is not a permutation of {have:?}"
                )
            }
            FibertreeError::NotAnInterval { rank } => {
                write!(f, "rank {rank:?} does not have an interval shape")
            }
            FibertreeError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} coordinates per point, got {got}")
            }
            FibertreeError::ZeroPartition => write!(f, "partition size must be nonzero"),
            FibertreeError::NotCompressible { reason } => {
                write!(f, "tensor cannot be compressed: {reason}")
            }
        }
    }
}

impl std::error::Error for FibertreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = FibertreeError::UnknownRank {
            rank: "Q".into(),
            have: vec!["M".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown rank"));
        assert!(msg.contains('Q'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<FibertreeError>();
    }
}
