//! Read-only cursors over fibertree storage: [`FiberView`],
//! [`PayloadView`], and the representation-erasing [`TensorData`].
//!
//! A `FiberView` is a cheap `Copy` cursor onto one fiber, regardless of
//! whether that fiber lives in an owned [`Fiber`] tree or in a
//! [`CompressedTensor`]'s flat arrays. The streaming co-iteration layer
//! ([`crate::iterate`]) and the simulator's engine drive these cursors
//! end-to-end, so the hot path neither clones subtrees nor cares which
//! representation a tensor arrived in.

use std::cmp::Ordering;

use crate::compressed::CompressedTensor;
use crate::coord::{Coord, Shape};
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;

/// A read-only cursor onto one fiber of either representation.
///
/// Positions index the fiber's elements in coordinate order, exactly like
/// [`Fiber::elements`]. All accessors are `O(1)` or a binary search
/// (except [`FiberView::leaf_count`] — see its docs); none allocate
/// except [`FiberView::coord_at`] on tuple coordinates.
#[derive(Clone, Copy, Debug)]
pub enum FiberView<'a> {
    /// A fiber of an owned tree.
    Owned(&'a Fiber),
    /// A fiber of a compressed tensor: the elements
    /// `coords[level][start..end]`.
    Compressed {
        /// The backing compressed tensor.
        tree: &'a CompressedTensor,
        /// The rank (level) this fiber sits at.
        level: usize,
        /// First element position (inclusive) in the level's flat arrays.
        start: usize,
        /// Last element position (exclusive).
        end: usize,
    },
}

/// What a fiber element holds: a scalar leaf or the fiber one rank below.
#[derive(Clone, Copy, Debug)]
pub enum PayloadView<'a> {
    /// A scalar value (leaf).
    Val(f64),
    /// The child fiber.
    Fiber(FiberView<'a>),
}

/// A borrowed-or-inline coordinate, for comparisons that must not
/// allocate: owned fibers lend `&Coord` (possibly a tuple), compressed
/// fibers produce inline points or pairs (flattened ranks).
#[derive(Clone, Copy, Debug)]
pub enum CoordKey<'a> {
    /// A coordinate borrowed from an owned fiber.
    Borrowed(&'a Coord),
    /// An inline point coordinate from a compressed fiber.
    Point(u64),
    /// An inline pair coordinate from a compressed flattened rank.
    Pair(u64, u64),
}

/// Compares an inline `(a, b)` pair against a materialized coordinate,
/// agreeing with [`Coord`]'s derived `Ord` (points before tuples, tuples
/// lexicographic with length tiebreak) without allocating.
#[inline]
fn pair_cmp_coord(a: u64, b: u64, other: &Coord) -> Ordering {
    match other {
        Coord::Point(_) => Ordering::Greater,
        Coord::Tuple(cs) => {
            for (mine, theirs) in [Coord::Point(a), Coord::Point(b)].iter().zip(cs) {
                match mine.cmp(theirs) {
                    Ordering::Equal => {}
                    o => return o,
                }
            }
            2usize.cmp(&cs.len())
        }
    }
}

impl CoordKey<'_> {
    /// Total order, agreeing with [`Coord`]'s `Ord` (points before
    /// tuples, tuples lexicographic).
    #[inline]
    pub fn cmp_key(&self, other: &CoordKey<'_>) -> Ordering {
        match (self, other) {
            (CoordKey::Point(a), CoordKey::Point(b)) => a.cmp(b),
            (CoordKey::Pair(a, b), CoordKey::Pair(c, d)) => (a, b).cmp(&(c, d)),
            (CoordKey::Point(_), CoordKey::Pair(..)) => Ordering::Less,
            (CoordKey::Pair(..), CoordKey::Point(_)) => Ordering::Greater,
            (CoordKey::Borrowed(a), CoordKey::Borrowed(b)) => a.cmp(b),
            (CoordKey::Borrowed(a), _) => other.cmp_coord(a).reverse(),
            (_, CoordKey::Borrowed(b)) => self.cmp_coord(b),
        }
    }

    /// Comparison against a materialized coordinate.
    #[inline]
    pub fn cmp_coord(&self, other: &Coord) -> Ordering {
        match self {
            CoordKey::Borrowed(a) => (*a).cmp(other),
            CoordKey::Point(a) => Coord::Point(*a).cmp(other),
            CoordKey::Pair(a, b) => pair_cmp_coord(*a, *b, other),
        }
    }

    /// Materializes the coordinate (clones tuples, copies points).
    #[inline]
    pub fn to_coord(&self) -> Coord {
        match self {
            CoordKey::Borrowed(c) => (*c).clone(),
            CoordKey::Point(p) => Coord::Point(*p),
            CoordKey::Pair(a, b) => Coord::pair(*a, *b),
        }
    }
}

impl<'a> FiberView<'a> {
    /// A cursor onto a compressed tensor's root fiber (`None` for
    /// scalars).
    pub fn of_compressed(tree: &'a CompressedTensor) -> Option<FiberView<'a>> {
        if tree.order() == 0 {
            None
        } else {
            Some(FiberView::Compressed {
                tree,
                level: 0,
                start: 0,
                end: tree.level_len(0),
            })
        }
    }

    /// Number of (present) elements in the fiber.
    #[inline]
    pub fn occupancy(&self) -> usize {
        match self {
            FiberView::Owned(f) => f.occupancy(),
            FiberView::Compressed { start, end, .. } => end - start,
        }
    }

    /// Whether the fiber has no elements.
    pub fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// The fiber's shape (legal coordinate space).
    pub fn shape(&self) -> Shape {
        match self {
            FiberView::Owned(f) => f.shape().clone(),
            FiberView::Compressed { tree, level, .. } => tree.rank_shapes()[*level].clone(),
        }
    }

    /// The coordinate at `pos`, materialized.
    pub fn coord_at(&self, pos: usize) -> Coord {
        self.coord_key_at(pos).to_coord()
    }

    /// The coordinate at `pos` as an allocation-free comparison key.
    #[inline]
    pub fn coord_key_at(&self, pos: usize) -> CoordKey<'a> {
        match self {
            FiberView::Owned(f) => CoordKey::Borrowed(&f.elements()[pos].coord),
            FiberView::Compressed {
                tree, level, start, ..
            } => tree.coord_key(*level, start + pos),
        }
    }

    /// The payload at `pos`.
    #[inline]
    pub fn payload_at(&self, pos: usize) -> PayloadView<'a> {
        match self {
            FiberView::Owned(f) => PayloadView::of(&f.elements()[pos].payload),
            FiberView::Compressed {
                tree, level, start, ..
            } => {
                let p = start + pos;
                if level + 1 == tree.order() {
                    PayloadView::Val(tree.value_at(p))
                } else {
                    let (cs, ce) = tree.child_range(*level, p);
                    PayloadView::Fiber(FiberView::Compressed {
                        tree,
                        level: level + 1,
                        start: cs,
                        end: ce,
                    })
                }
            }
        }
    }

    /// A stable identity for the element at `pos`, unique within the
    /// backing storage for the lifetime of the borrow. The simulator's
    /// instrumentation uses this to deduplicate touches; the value itself
    /// carries no meaning.
    #[inline]
    pub fn payload_key(&self, pos: usize) -> usize {
        match self {
            FiberView::Owned(f) => &f.elements()[pos].payload as *const Payload as usize,
            FiberView::Compressed {
                tree, level, start, ..
            } => tree.payload_key(*level, start + pos),
        }
    }

    /// Binary-searches for `coord`, returning its position if present.
    pub fn position(&self, coord: &Coord) -> Option<usize> {
        match self {
            FiberView::Owned(f) => f.position(coord),
            FiberView::Compressed {
                tree,
                level,
                start,
                end,
            } => tree
                .position_in(*level, *start, *end, &CoordKey::Borrowed(coord))
                .map(|p| p - start),
        }
    }

    /// Binary-searches for a comparison key, returning its position.
    pub fn position_of_key(&self, key: &CoordKey<'_>) -> Option<usize> {
        match self {
            FiberView::Owned(f) => f
                .elements()
                .binary_search_by(|e| key.cmp_coord(&e.coord).reverse())
                .ok(),
            FiberView::Compressed {
                tree,
                level,
                start,
                end,
            } => tree
                .position_in(*level, *start, *end, key)
                .map(|p| p - start),
        }
    }

    /// Looks up the payload stored at `coord`.
    pub fn get(&self, coord: &Coord) -> Option<PayloadView<'a>> {
        self.position(coord).map(|p| self.payload_at(p))
    }

    /// Iterates `(coordinate, payload)` pairs in coordinate order.
    pub fn iter(&self) -> FiberViewIter<'a> {
        FiberViewIter {
            view: *self,
            pos: 0,
        }
    }

    /// Number of scalar leaves beneath this fiber (`O(subtree)` for
    /// owned trees, `O(depth)` for compressed storage — a range's
    /// children are a contiguous range, so each rank is two segment
    /// lookups).
    pub fn leaf_count(&self) -> usize {
        match self {
            FiberView::Owned(f) => f.leaf_count(),
            FiberView::Compressed {
                tree,
                level,
                start,
                end,
            } => tree.leaf_count_in(*level, *start, *end),
        }
    }
}

/// Iterator over a [`FiberView`]'s elements.
#[derive(Clone, Debug)]
pub struct FiberViewIter<'a> {
    view: FiberView<'a>,
    pos: usize,
}

impl<'a> Iterator for FiberViewIter<'a> {
    type Item = (Coord, PayloadView<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.view.occupancy() {
            return None;
        }
        let item = (self.view.coord_at(self.pos), self.view.payload_at(self.pos));
        self.pos += 1;
        Some(item)
    }
}

impl<'a> PayloadView<'a> {
    /// Wraps a borrowed owned-tree payload.
    pub fn of(p: &'a Payload) -> Self {
        match p {
            Payload::Val(v) => PayloadView::Val(*v),
            Payload::Fiber(f) => PayloadView::Fiber(FiberView::Owned(f)),
        }
    }

    /// The scalar value if this is a leaf payload.
    pub fn as_val(&self) -> Option<f64> {
        match self {
            PayloadView::Val(v) => Some(*v),
            PayloadView::Fiber(_) => None,
        }
    }

    /// The child fiber view if this is an intermediate payload.
    pub fn as_fiber(&self) -> Option<FiberView<'a>> {
        match self {
            PayloadView::Val(_) => None,
            PayloadView::Fiber(f) => Some(*f),
        }
    }
}

/// A tensor in either representation, presented uniformly.
///
/// The simulator takes its inputs as `TensorData`: owned trees when the
/// workload is small or needs in-place construction, compressed storage
/// when it is large and read-only. [`TensorData::root_view`] hands the
/// engine a cursor either way.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorData {
    /// An owned fibertree.
    Owned(Tensor),
    /// Compressed (CSF) storage.
    Compressed(CompressedTensor),
}

impl TensorData {
    /// The tensor's name.
    pub fn name(&self) -> &str {
        match self {
            TensorData::Owned(t) => t.name(),
            TensorData::Compressed(c) => c.name(),
        }
    }

    /// The labelled ranks, top-to-bottom.
    pub fn rank_ids(&self) -> &[String] {
        match self {
            TensorData::Owned(t) => t.rank_ids(),
            TensorData::Compressed(c) => c.rank_ids(),
        }
    }

    /// The per-rank shapes, in rank order.
    pub fn rank_shapes(&self) -> &[Shape] {
        match self {
            TensorData::Owned(t) => t.rank_shapes(),
            TensorData::Compressed(c) => c.rank_shapes(),
        }
    }

    /// Number of ranks.
    pub fn order(&self) -> usize {
        self.rank_ids().len()
    }

    /// Number of stored leaves.
    pub fn nnz(&self) -> usize {
        match self {
            TensorData::Owned(t) => t.nnz(),
            TensorData::Compressed(c) => c.nnz(),
        }
    }

    /// Per-rank `(fiber count, total occupancy)` statistics.
    pub fn rank_stats(&self) -> Vec<(usize, usize)> {
        match self {
            TensorData::Owned(t) => t.rank_stats(),
            TensorData::Compressed(c) => c.rank_stats(),
        }
    }

    /// A cursor onto the root payload.
    pub fn root_view(&self) -> PayloadView<'_> {
        match self {
            TensorData::Owned(t) => PayloadView::of(t.root()),
            TensorData::Compressed(c) => {
                if c.order() == 0 {
                    PayloadView::Val(c.values()[0])
                } else {
                    PayloadView::Fiber(FiberView::Compressed {
                        tree: c,
                        level: 0,
                        start: 0,
                        end: c.level_len(0),
                    })
                }
            }
        }
    }

    /// The root fiber view, if this is not a scalar.
    pub fn root_fiber_view(&self) -> Option<FiberView<'_>> {
        self.root_view().as_fiber()
    }

    /// Materializes an owned tensor (clones owned storage, decompresses
    /// compressed storage). The transform pipeline operates on the result.
    pub fn to_tensor(&self) -> Tensor {
        match self {
            TensorData::Owned(t) => t.clone(),
            TensorData::Compressed(c) => c.to_tensor(),
        }
    }

    /// Consumes `self`, yielding an owned tensor.
    pub fn into_tensor(self) -> Tensor {
        match self {
            TensorData::Owned(t) => t,
            TensorData::Compressed(c) => c.to_tensor(),
        }
    }

    /// Borrows the owned tensor, if this is the owned representation.
    pub fn as_owned(&self) -> Option<&Tensor> {
        match self {
            TensorData::Owned(t) => Some(t),
            TensorData::Compressed(_) => None,
        }
    }

    /// Looks up the value at a point, in either representation.
    pub fn get(&self, point: &[u64]) -> Option<f64> {
        match self {
            TensorData::Owned(t) => t.get(point),
            TensorData::Compressed(c) => c.get(point),
        }
    }

    /// Enumerates `(path, value)` for every nonzero leaf (coordinates may
    /// be tuples on flattened ranks), in lexicographic order.
    pub fn leaves(&self) -> Vec<(Vec<Coord>, f64)> {
        match self {
            TensorData::Owned(t) => t.leaves(),
            TensorData::Compressed(c) => c.leaves(),
        }
    }

    /// Enumerates `(point, value)` for every nonzero leaf, in
    /// lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics if a flattened (tuple-coordinate) rank is encountered.
    pub fn entries(&self) -> Vec<(Vec<u64>, f64)> {
        match self {
            TensorData::Owned(t) => t.entries(),
            TensorData::Compressed(c) => c.entries(),
        }
    }

    /// Maximum elementwise absolute difference against another tensor in
    /// either representation — convenience for functional validation,
    /// without decompressing either side.
    pub fn max_abs_diff(&self, other: &TensorData) -> f64 {
        let mut points: std::collections::BTreeMap<Vec<Coord>, (f64, f64)> =
            std::collections::BTreeMap::new();
        for (p, v) in self.leaves() {
            points.entry(p).or_insert((0.0, 0.0)).0 = v;
        }
        for (p, v) in other.leaves() {
            points.entry(p).or_insert((0.0, 0.0)).1 = v;
        }
        points
            .values()
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether this is the compressed representation.
    pub fn is_compressed(&self) -> bool {
        matches!(self, TensorData::Compressed(_))
    }

    /// Stable FNV-1a content hash: name, rank labels, shapes, and every
    /// nonzero leaf (coordinates tagged, values by bit pattern).
    ///
    /// The hash is representation-independent — an owned tensor and its
    /// compressed form hash equally — so it can key shared caches (the
    /// `PreparedInputs` stage of the evaluation pipeline) no matter which
    /// storage a tensor arrived in. Costs one full [`TensorData::leaves`]
    /// walk; hash once and reuse the key.
    pub fn content_hash(&self) -> u64 {
        fn absorb(state: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *state ^= u64::from(b);
                *state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        fn absorb_u64(state: &mut u64, v: u64) {
            absorb(state, &v.to_le_bytes());
        }
        fn absorb_str(state: &mut u64, s: &str) {
            absorb_u64(state, s.len() as u64);
            absorb(state, s.as_bytes());
        }
        fn absorb_shape(state: &mut u64, shape: &Shape) {
            match shape {
                Shape::Interval(n) => {
                    absorb_u64(state, 0);
                    absorb_u64(state, *n);
                }
                Shape::Tuple(parts) => {
                    absorb_u64(state, 1);
                    absorb_u64(state, parts.len() as u64);
                    for p in parts {
                        absorb_shape(state, p);
                    }
                }
            }
        }
        fn absorb_coord(state: &mut u64, coord: &Coord) {
            match coord {
                Coord::Point(p) => {
                    absorb_u64(state, 0);
                    absorb_u64(state, *p);
                }
                Coord::Tuple(parts) => {
                    absorb_u64(state, 1);
                    absorb_u64(state, parts.len() as u64);
                    for p in parts {
                        absorb_coord(state, p);
                    }
                }
            }
        }
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        absorb_str(&mut state, "tensor-content-v1");
        absorb_str(&mut state, self.name());
        absorb_u64(&mut state, self.order() as u64);
        for rank in self.rank_ids() {
            absorb_str(&mut state, rank);
        }
        for shape in self.rank_shapes() {
            absorb_shape(&mut state, shape);
        }
        let leaves = self.leaves();
        absorb_u64(&mut state, leaves.len() as u64);
        for (path, value) in &leaves {
            absorb_u64(&mut state, path.len() as u64);
            for coord in path {
                absorb_coord(&mut state, coord);
            }
            absorb_u64(&mut state, value.to_bits());
        }
        state
    }
}

impl std::fmt::Display for TensorData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorData::Owned(t) => t.fmt(f),
            TensorData::Compressed(c) => c.fmt(f),
        }
    }
}

impl From<Tensor> for TensorData {
    fn from(t: Tensor) -> Self {
        TensorData::Owned(t)
    }
}

impl From<CompressedTensor> for TensorData {
    fn from(c: CompressedTensor) -> Self {
        TensorData::Compressed(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::fig1_matrix_a;

    fn both_views() -> (TensorData, TensorData) {
        let t = fig1_matrix_a();
        let c = CompressedTensor::from_tensor(&t).unwrap();
        (TensorData::Owned(t), TensorData::Compressed(c))
    }

    #[test]
    fn views_agree_across_representations() {
        let (o, c) = both_views();
        let (fo, fc) = (o.root_fiber_view().unwrap(), c.root_fiber_view().unwrap());
        assert_eq!(fo.occupancy(), fc.occupancy());
        for pos in 0..fo.occupancy() {
            assert_eq!(fo.coord_at(pos), fc.coord_at(pos));
            let (po, pc) = (fo.payload_at(pos), fc.payload_at(pos));
            let (ko, kc) = (po.as_fiber().unwrap(), pc.as_fiber().unwrap());
            let leaves_o: Vec<(Coord, f64)> =
                ko.iter().map(|(c, p)| (c, p.as_val().unwrap())).collect();
            let leaves_c: Vec<(Coord, f64)> =
                kc.iter().map(|(c, p)| (c, p.as_val().unwrap())).collect();
            assert_eq!(leaves_o, leaves_c);
        }
    }

    #[test]
    fn position_and_get_binary_search_both_representations() {
        let (o, c) = both_views();
        for data in [&o, &c] {
            let root = data.root_fiber_view().unwrap();
            assert_eq!(root.position(&Coord::Point(2)), Some(1));
            assert_eq!(root.position(&Coord::Point(1)), None);
            let k = root.get(&Coord::Point(2)).unwrap().as_fiber().unwrap();
            assert_eq!(k.get(&Coord::Point(1)).unwrap().as_val(), Some(4.0));
        }
    }

    #[test]
    fn payload_keys_are_stable_and_distinct() {
        let (_, c) = both_views();
        let root = c.root_fiber_view().unwrap();
        let keys: Vec<usize> = (0..root.occupancy()).map(|p| root.payload_key(p)).collect();
        assert_eq!(
            keys,
            (0..root.occupancy())
                .map(|p| root.payload_key(p))
                .collect::<Vec<_>>()
        );
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn coord_keys_order_like_coords() {
        let tuple = Coord::pair(1, 2);
        let key = CoordKey::Borrowed(&tuple);
        assert_eq!(
            key.cmp_key(&CoordKey::Point(9)),
            std::cmp::Ordering::Greater
        );
        assert_eq!(
            CoordKey::Point(3).cmp_key(&CoordKey::Point(7)),
            std::cmp::Ordering::Less
        );
        assert_eq!(CoordKey::Point(3).to_coord(), Coord::Point(3));
    }

    #[test]
    fn leaf_counts_match() {
        let (o, c) = both_views();
        assert_eq!(
            o.root_fiber_view().unwrap().leaf_count(),
            c.root_fiber_view().unwrap().leaf_count()
        );
        assert_eq!(o.nnz(), c.nnz());
    }

    #[test]
    fn content_hash_is_representation_independent() {
        let (o, c) = both_views();
        assert_eq!(o.content_hash(), c.content_hash());
        // And deterministic across calls.
        assert_eq!(o.content_hash(), o.content_hash());
    }

    #[test]
    fn content_hash_is_content_sensitive() {
        use crate::tensor::TensorBuilder;
        let base = |name: &str, coord: u64, val: f64| {
            TensorData::Owned(
                TensorBuilder::new(name, &["I"], &[8])
                    .entry(&[coord], val)
                    .build()
                    .unwrap(),
            )
        };
        let t = base("T", 1, 2.0);
        assert_ne!(t.content_hash(), base("U", 1, 2.0).content_hash());
        assert_ne!(t.content_hash(), base("T", 2, 2.0).content_hash());
        assert_ne!(t.content_hash(), base("T", 1, 3.0).content_hash());
        // Values hash by bit pattern, so sign alone separates hashes.
        assert_ne!(
            base("T", 1, 2.0).content_hash(),
            base("T", 1, -2.0).content_hash()
        );
    }
}
