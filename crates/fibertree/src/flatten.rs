//! Rank flattening and unflattening (Fig. 2 of the paper).
//!
//! Flattening combines two adjacent ranks into one whose coordinates are
//! tuples of the original coordinates. Combined with occupancy partitioning
//! it is the paper's tool for globally load-balancing irregular fibers
//! (§3.2.1): flatten first, then re-partition so every partition holds the
//! same number of values.

use crate::compressed::{CompressedTensor, Level};
use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;

impl Tensor {
    /// Flattens rank `upper` with the rank immediately below it, producing a
    /// single rank named `new_name` with tuple coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::UnknownRank`] if `upper` is missing or is
    /// the bottom rank (there is nothing below to flatten with).
    ///
    /// # Examples
    ///
    /// ```
    /// use teaal_fibertree::tensor::fig1_matrix_a;
    /// use teaal_fibertree::Coord;
    /// let a = fig1_matrix_a(); // [M, K], 4 nonzeros
    /// let flat = a.flatten_rank("M", "MK").unwrap();
    /// assert_eq!(flat.rank_ids(), &["MK".to_string()]);
    /// assert_eq!(flat.root_fiber().unwrap().occupancy(), 4);
    /// assert_eq!(
    ///     flat.root_fiber().unwrap().get(&Coord::pair(0, 2)).and_then(|p| p.as_val()),
    ///     Some(3.0),
    /// );
    /// ```
    pub fn flatten_rank(&self, upper: &str, new_name: &str) -> Result<Tensor, FibertreeError> {
        let d = self.rank_index(upper)?;
        if d + 1 >= self.order() {
            return Err(FibertreeError::UnknownRank {
                rank: format!("{upper} (no rank below to flatten with)"),
                have: self.rank_ids().to_vec(),
            });
        }
        let mut rank_ids = self.rank_ids().to_vec();
        let mut shapes = self.rank_shapes().to_vec();
        let flat_shape = shapes[d].flattened_with(&shapes[d + 1]);
        rank_ids.splice(d..=d + 1, [new_name.to_string()]);
        shapes.splice(d..=d + 1, [flat_shape.clone()]);

        let root = match self.root() {
            Payload::Val(v) => Payload::Val(*v),
            Payload::Fiber(f) => Payload::Fiber(flatten_at(f, d, &flat_shape)),
        };
        Ok(Tensor::from_parts(self.name(), rank_ids, shapes, root))
    }

    /// Splits a flattened rank back into its components.
    ///
    /// `names` gives the new rank names top-to-bottom and must have one
    /// entry per tuple component; `shapes` likewise. This is the inverse of
    /// [`Tensor::flatten_rank`] for two components.
    ///
    /// # Errors
    ///
    /// Returns an error if `rank` is missing or its coordinates are not
    /// tuples of arity `names.len()`.
    pub fn unflatten_rank(
        &self,
        rank: &str,
        names: &[&str],
        shapes: &[Shape],
    ) -> Result<Tensor, FibertreeError> {
        let d = self.rank_index(rank)?;
        let mut rank_ids = self.rank_ids().to_vec();
        let mut rank_shapes = self.rank_shapes().to_vec();
        rank_ids.splice(d..=d, names.iter().map(|s| s.to_string()));
        rank_shapes.splice(d..=d, shapes.iter().cloned());

        let root = match self.root() {
            Payload::Val(v) => Payload::Val(*v),
            Payload::Fiber(f) => Payload::Fiber(unflatten_at(f, d, names.len(), shapes)?),
        };
        Ok(Tensor::from_parts(self.name(), rank_ids, rank_shapes, root))
    }
}

impl CompressedTensor {
    /// Flattens rank `upper` with the rank immediately below it into a
    /// pair-coordinate rank — the compressed-native counterpart of
    /// [`Tensor::flatten_rank`], bit-identical to compressing its result.
    ///
    /// Runs as pure segment fusion: the fused level's lower components
    /// *are* the old lower level's coordinate array (reused as-is), the
    /// upper components are the old upper coordinates expanded by child
    /// count, and the fused segment list is the upper segment list
    /// composed through the lower one. Everything below — and the value
    /// arena — is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::UnknownRank`] if `upper` is missing or is
    /// the bottom rank, and [`FibertreeError::NotCompressible`] when
    /// either rank already holds pair coordinates (a second flatten needs
    /// the owned path).
    pub fn flatten_rank(
        &self,
        upper: &str,
        new_name: &str,
    ) -> Result<CompressedTensor, FibertreeError> {
        let d = self.rank_index(upper)?;
        if d + 1 >= self.order() {
            return Err(FibertreeError::UnknownRank {
                rank: format!("{upper} (no rank below to flatten with)"),
                have: self.rank_ids().to_vec(),
            });
        }
        let (lu, ll) = (&self.levels[d], &self.levels[d + 1]);
        if lu.arity() != 1 || ll.arity() != 1 {
            return Err(FibertreeError::NotCompressible {
                reason: format!(
                    "flattening {upper} would produce coordinates deeper than pairs; \
                     compressed levels hold points or pairs only"
                ),
            });
        }
        let mut rank_ids = self.rank_ids().to_vec();
        let mut shapes = self.rank_shapes().to_vec();
        let flat_shape = shapes[d].flattened_with(&shapes[d + 1]);
        rank_ids.splice(d..=d + 1, [new_name.to_string()]);
        shapes.splice(d..=d + 1, [flat_shape]);

        // Upper components, expanded per child count.
        let mut upper_store = lu.coords.new_like();
        for p in 0..lu.coords.len() {
            let (cs, ce) = (ll.segs[p], ll.segs[p + 1]);
            let up = lu.coords.get(p);
            for _ in cs..ce {
                upper_store.push(up);
            }
        }
        // Fused fiber boundaries: the upper segment list composed through
        // the lower one.
        let segs: Vec<usize> = lu.segs.iter().map(|&f| ll.segs[f]).collect();
        let fused = Level {
            segs,
            upper: Some(upper_store),
            coords: ll.coords.clone(),
        };
        let mut levels = self.levels.clone();
        levels.splice(d..=d + 1, [fused]);
        Ok(CompressedTensor {
            name: self.name.clone(),
            rank_ids,
            rank_shapes: shapes,
            levels,
            values: self.values.clone(),
        })
    }
}

fn flatten_at(f: &Fiber, depth: usize, flat_shape: &Shape) -> Fiber {
    if depth == 0 {
        let mut out = Fiber::new(flat_shape.clone());
        for e in f.iter() {
            let child = e
                .payload
                .as_fiber()
                .expect("flattening requires a fiber payload below the upper rank");
            for inner in child.iter() {
                let c = e.coord.flattened_with(&inner.coord);
                out.append(c, inner.payload.clone())
                    .expect("depth-first traversal yields sorted tuple coordinates");
            }
        }
        out
    } else {
        let mut out = Fiber::new(f.shape().clone());
        for e in f.iter() {
            let child = e.payload.as_fiber().expect("interior payloads are fibers");
            out.append(e.coord.clone(), flatten_at(child, depth - 1, flat_shape))
                .expect("coordinate order unchanged above the flattened rank");
        }
        out
    }
}

fn unflatten_at(
    f: &Fiber,
    depth: usize,
    arity: usize,
    shapes: &[Shape],
) -> Result<Fiber, FibertreeError> {
    if depth == 0 {
        unflatten_fiber(f, arity, shapes)
    } else {
        let mut out = Fiber::new(f.shape().clone());
        for e in f.iter() {
            let child = e.payload.as_fiber().expect("interior payloads are fibers");
            out.append(
                e.coord.clone(),
                unflatten_at(child, depth - 1, arity, shapes)?,
            )
            .expect("coordinate order unchanged above the unflattened rank");
        }
        Ok(out)
    }
}

fn unflatten_fiber(f: &Fiber, arity: usize, shapes: &[Shape]) -> Result<Fiber, FibertreeError> {
    let mut out = Fiber::new(shapes[0].clone());
    for e in f.iter() {
        let comps = e.coord.components();
        if comps.len() < arity {
            return Err(FibertreeError::ArityMismatch {
                expected: arity,
                got: comps.len(),
            });
        }
        // Group the leading component; re-tuple the remainder.
        let first = comps[0].clone();
        let rest: Coord = if comps.len() == arity && arity == 2 {
            comps[1].clone()
        } else {
            Coord::Tuple(comps[1..].to_vec())
        };
        let child_shapes = &shapes[1..];
        let child = out.get_or_insert_with(&first, || {
            Payload::Fiber(Fiber::new(child_shapes[0].clone()))
        });
        let child = child.as_fiber_mut().expect("just inserted a fiber payload");
        if arity == 2 {
            child
                .append(rest, e.payload.clone())
                .expect("lexicographic order preserves per-group order");
        } else {
            // Recursive unflatten for arity > 2: insert under nested tuples.
            let tail = child.get_or_insert_with(&rest, || e.payload.clone());
            *tail = e.payload.clone();
        }
    }
    if arity > 2 {
        // Recursively unflatten the tail rank.
        let mut fixed = Fiber::new(shapes[0].clone());
        for e in out.iter() {
            let child = e.payload.as_fiber().expect("children are fibers");
            fixed
                .append(
                    e.coord.clone(),
                    unflatten_fiber(child, arity - 1, &shapes[1..])?,
                )
                .expect("order preserved");
        }
        return Ok(fixed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{fig1_matrix_a, TensorBuilder};

    #[test]
    fn flatten_matches_fig2() {
        // Fig. 2 flattens ranks M, K of the Fig. 1 matrix: coordinates
        // become (0,2), (2,0), (2,1), (2,2).
        let a = fig1_matrix_a();
        let flat = a.flatten_rank("M", "MK").unwrap();
        let coords: Vec<Coord> = flat
            .root_fiber()
            .unwrap()
            .iter()
            .map(|e| e.coord.clone())
            .collect();
        assert_eq!(
            coords,
            vec![
                Coord::pair(0, 2),
                Coord::pair(2, 0),
                Coord::pair(2, 1),
                Coord::pair(2, 2)
            ]
        );
    }

    #[test]
    fn flatten_preserves_leaf_count_and_values() {
        let a = fig1_matrix_a();
        let flat = a.flatten_rank("M", "MK").unwrap();
        assert_eq!(flat.nnz(), a.nnz());
        let vals: Vec<f64> = flat.leaves().into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![3.0, 9.0, 4.0, 5.0]);
    }

    #[test]
    fn unflatten_inverts_flatten() {
        let a = fig1_matrix_a();
        let flat = a.flatten_rank("M", "MK").unwrap();
        let back = flat
            .unflatten_rank("MK", &["M", "K"], &[Shape::Interval(4), Shape::Interval(3)])
            .unwrap();
        assert_eq!(back.max_abs_diff(&a), 0.0);
        assert_eq!(back.rank_ids(), a.rank_ids());
    }

    #[test]
    fn flatten_below_top_rank() {
        let t = TensorBuilder::new("T", &["M", "K", "N"], &[2, 2, 2])
            .entry(&[0, 1, 0], 1.0)
            .entry(&[1, 0, 1], 2.0)
            .build()
            .unwrap();
        let flat = t.flatten_rank("K", "KN").unwrap();
        assert_eq!(flat.rank_ids(), &["M".to_string(), "KN".to_string()]);
        assert_eq!(flat.nnz(), 2);
        let back = flat
            .unflatten_rank("KN", &["K", "N"], &[Shape::Interval(2), Shape::Interval(2)])
            .unwrap();
        assert_eq!(back.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn flatten_bottom_rank_is_an_error() {
        let a = fig1_matrix_a();
        assert!(a.flatten_rank("K", "KX").is_err());
        assert!(a.flatten_rank("Q", "QX").is_err());
    }

    #[test]
    fn flatten_shape_is_tuple_of_components() {
        let a = fig1_matrix_a();
        let flat = a.flatten_rank("M", "MK").unwrap();
        assert_eq!(
            flat.rank_shapes()[0],
            Shape::Tuple(vec![Shape::Interval(4), Shape::Interval(3)])
        );
    }
}
