//! Streaming construction of compressed (CSF) tensors.
//!
//! [`CompressedBuilder`] accepts leaves in lexicographically sorted order
//! and appends them straight into the flat per-rank arrays — no owned
//! tree, no COO buffer, `O(output nnz)` memory. It is how the simulator's
//! engine assembles compressed outputs (its accumulator drains in sorted
//! order) and how the compressed transform primitives rebuild their
//! results. Per-level coordinate narrowing (`u32` vs `u64`) is chosen
//! from the rank shapes at construction, so every construction path —
//! `from_entries`, `from_tensor`, transforms, outputs — lands on an
//! identical representation for identical content.

use crate::compressed::{CompressedTensor, Level};
use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;

/// Builds a [`CompressedTensor`] from a sorted stream of leaves.
///
/// Leaves must arrive in strictly increasing lexicographic order of their
/// coordinate paths; pushing an equal path sums the values (mirroring
/// [`crate::Tensor::from_entries`]), and a decreasing path is an error.
/// Values are stored as given — explicit zeros survive, so semiring-zero
/// filtering is the caller's policy, not the builder's.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::{CompressedBuilder, Shape};
/// let mut b = CompressedBuilder::new(
///     "Z",
///     vec!["M".into(), "N".into()],
///     vec![Shape::Interval(4), Shape::Interval(4)],
/// ).unwrap();
/// b.push_point(&[0, 1], 2.0).unwrap();
/// b.push_point(&[2, 0], 3.0).unwrap();
/// let z = b.finish();
/// assert_eq!(z.nnz(), 2);
/// assert_eq!(z.get(&[2, 0]), Some(3.0));
/// ```
#[derive(Clone, Debug)]
pub struct CompressedBuilder {
    name: String,
    rank_ids: Vec<String>,
    rank_shapes: Vec<Shape>,
    levels: Vec<Level>,
    values: Vec<f64>,
    /// Raw `(upper, lower)` key of the last pushed leaf, for divergence
    /// computation and order checking.
    last: Vec<(u64, u64)>,
    has_last: bool,
}

impl CompressedBuilder {
    /// Starts a builder for a tensor with the given ranks and shapes.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::NotCompressible`] when a shape is not
    /// representable in a compressed level (tuple arity > 2).
    pub fn new(
        name: impl Into<String>,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
    ) -> Result<Self, FibertreeError> {
        assert_eq!(rank_ids.len(), rank_shapes.len(), "one shape per rank");
        let levels = rank_shapes
            .iter()
            .map(Level::for_shape)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompressedBuilder {
            name: name.into(),
            rank_ids,
            rank_shapes,
            levels,
            values: Vec::new(),
            last: Vec::new(),
            has_last: false,
        })
    }

    /// Number of leaves appended so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no leaf has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one leaf at a coordinate path (one coordinate per rank;
    /// pairs on flattened ranks).
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::ArityMismatch`] for a wrong path length,
    /// [`FibertreeError::OutOfShape`] for a coordinate outside its rank's
    /// shape, and [`FibertreeError::Unsorted`] when the path does not
    /// follow the previous one in lexicographic order.
    pub fn push(&mut self, point: &[Coord], value: f64) -> Result<(), FibertreeError> {
        if point.len() != self.rank_ids.len() {
            return Err(FibertreeError::ArityMismatch {
                expected: self.rank_ids.len(),
                got: point.len(),
            });
        }
        for (c, s) in point.iter().zip(&self.rank_shapes) {
            if !s.contains(c) {
                return Err(FibertreeError::OutOfShape {
                    coord: c.clone(),
                    shape: s.clone(),
                });
            }
        }
        let key: Vec<(u64, u64)> = point
            .iter()
            .map(|c| match c {
                Coord::Point(p) => Ok((*p, 0)),
                Coord::Tuple(cs) => match cs.as_slice() {
                    [Coord::Point(a), Coord::Point(b)] => Ok((*a, *b)),
                    _ => Err(FibertreeError::NotCompressible {
                        reason: format!("coordinate {c} is neither a point nor a pair"),
                    }),
                },
            })
            .collect::<Result<_, _>>()?;
        self.push_raw(&key, value)
    }

    /// Appends one leaf at a point-coordinate path.
    ///
    /// # Errors
    ///
    /// As [`CompressedBuilder::push`].
    pub fn push_point(&mut self, point: &[u64], value: f64) -> Result<(), FibertreeError> {
        if point.len() != self.rank_ids.len() {
            return Err(FibertreeError::ArityMismatch {
                expected: self.rank_ids.len(),
                got: point.len(),
            });
        }
        for (d, (&p, s)) in point.iter().zip(&self.rank_shapes).enumerate() {
            if self.levels[d].arity() != 1 || !s.contains(&Coord::Point(p)) {
                return Err(FibertreeError::OutOfShape {
                    coord: Coord::Point(p),
                    shape: s.clone(),
                });
            }
        }
        let key: Vec<(u64, u64)> = point.iter().map(|&p| (p, 0)).collect();
        self.push_raw(&key, value)
    }

    /// Core append: `key` is the raw `(upper, lower)` pair per rank
    /// (`(coord, 0)` on point ranks), already validated against the
    /// shapes.
    pub(crate) fn push_raw(
        &mut self,
        key: &[(u64, u64)],
        value: f64,
    ) -> Result<(), FibertreeError> {
        let n = self.levels.len();
        if n == 0 {
            // 0-tensor: accumulate into the single scalar slot.
            match self.values.first_mut() {
                Some(v) => *v += value,
                None => self.values.push(value),
            }
            return Ok(());
        }
        // First rank where this leaf diverges from the previous one:
        // every rank from there down gains an element, and every rank
        // strictly below gains a fresh fiber.
        let diff = if self.has_last {
            match self.last.as_slice().cmp(key) {
                std::cmp::Ordering::Less => self
                    .last
                    .iter()
                    .zip(key)
                    .position(|(a, b)| a != b)
                    .expect("strictly less implies a diverging rank"),
                std::cmp::Ordering::Equal => {
                    *self.values.last_mut().expect("a leaf was pushed") += value;
                    return Ok(());
                }
                std::cmp::Ordering::Greater => {
                    let d = self
                        .last
                        .iter()
                        .zip(key)
                        .position(|(a, b)| a != b)
                        .expect("strictly greater implies a diverging rank");
                    return Err(FibertreeError::Unsorted {
                        prev: raw_coord(self.last[d], self.levels[d].arity()),
                        next: raw_coord(key[d], self.levels[d].arity()),
                    });
                }
            }
        } else {
            0
        };
        for (d, &k) in key.iter().enumerate().skip(diff) {
            if d > diff && self.levels[d].coords.len() > 0 {
                let end = self.levels[d].coords.len();
                self.levels[d].segs.push(end);
            }
            self.levels[d].push_raw(k);
        }
        self.values.push(value);
        self.last.clear();
        self.last.extend_from_slice(key);
        self.has_last = true;
        Ok(())
    }

    /// Appends every leaf of `t`, in order, as if pushed one by one.
    ///
    /// This is the k-way concatenation primitive behind the sharded
    /// engine's output merge: each shard drains into its own builder,
    /// and the shards' tensors — whose leading-rank key ranges are
    /// disjoint and ordered — are replayed into one builder. Because
    /// the builder is a deterministic function of its push sequence,
    /// the merged tensor is bit-identical to a single sequential build
    /// of the same leaves.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::ArityMismatch`] when `t`'s order differs
    /// from the builder's, [`FibertreeError::NotCompressible`] when the
    /// rank shapes differ, and [`FibertreeError::Unsorted`] when `t`'s
    /// first leaf does not follow the last pushed leaf.
    pub fn append_tensor(&mut self, t: &CompressedTensor) -> Result<(), FibertreeError> {
        if t.order() != self.rank_ids.len() {
            return Err(FibertreeError::ArityMismatch {
                expected: self.rank_ids.len(),
                got: t.order(),
            });
        }
        if t.rank_shapes() != self.rank_shapes.as_slice() {
            return Err(FibertreeError::NotCompressible {
                reason: "appended tensor's rank shapes differ from the builder's".into(),
            });
        }
        let n = self.rank_ids.len();
        if n == 0 {
            if t.nnz() > 0 {
                self.push_raw(&[], t.value_at(0))?;
            }
            return Ok(());
        }
        let mut key = vec![(0u64, 0u64); n];
        self.append_range(t, 0, 0, t.level_len(0), &mut key)
    }

    /// Replays the element range `[start, end)` of `t`'s `level` (and
    /// everything beneath it) into this builder.
    fn append_range(
        &mut self,
        t: &CompressedTensor,
        level: usize,
        start: usize,
        end: usize,
        key: &mut [(u64, u64)],
    ) -> Result<(), FibertreeError> {
        let leaf = level + 1 == key.len();
        for p in start..end {
            key[level] = t.raw_at(level, p);
            if leaf {
                let k = key.to_vec();
                self.push_raw(&k, t.value_at(p))?;
            } else {
                let (cs, ce) = t.child_range(level, p);
                self.append_range(t, level + 1, cs, ce, key)?;
            }
        }
        Ok(())
    }

    /// Closes the trailing fiber of each rank and yields the tensor.
    pub fn finish(mut self) -> CompressedTensor {
        let n = self.levels.len();
        if n == 0 {
            if self.values.is_empty() {
                self.values.push(0.0);
            }
            return CompressedTensor {
                name: self.name,
                rank_ids: self.rank_ids,
                rank_shapes: self.rank_shapes,
                levels: self.levels,
                values: self.values,
            };
        }
        // A rank below an empty parent has no fibers at all (mirroring
        // the owned tree, where only the root fiber exists in an empty
        // tensor), so its segment list stays `[0]`.
        for d in 0..n {
            let parents = if d == 0 {
                1
            } else {
                self.levels[d - 1].coords.len()
            };
            if parents > 0 {
                let end = self.levels[d].coords.len();
                self.levels[d].segs.push(end);
            }
        }
        CompressedTensor {
            name: self.name,
            rank_ids: self.rank_ids,
            rank_shapes: self.rank_shapes,
            levels: self.levels,
            values: self.values,
        }
    }
}

/// Materializes a raw key back into a coordinate (for error reporting).
fn raw_coord(key: (u64, u64), arity: usize) -> Coord {
    if arity == 2 {
        Coord::pair(key.0, key.1)
    } else {
        Coord::Point(key.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;
    use crate::tensor::Tensor;

    fn shapes(ns: &[u64]) -> Vec<Shape> {
        ns.iter().map(|&n| Shape::Interval(n)).collect()
    }

    #[test]
    fn streaming_build_matches_from_entries() {
        let entries = vec![
            (vec![0, 2], 3.0),
            (vec![2, 0], 9.0),
            (vec![2, 1], 4.0),
            (vec![2, 2], 5.0),
        ];
        let mut b =
            CompressedBuilder::new("A", vec!["M".into(), "K".into()], shapes(&[4, 3])).unwrap();
        for (p, v) in &entries {
            b.push_point(p, *v).unwrap();
        }
        let c = b.finish();
        let reference = CompressedTensor::from_entries("A", &["M", "K"], &[4, 3], entries).unwrap();
        assert_eq!(c, reference);
    }

    #[test]
    fn explicit_zeros_survive_streaming_build() {
        let mut b = CompressedBuilder::new("P", vec!["V".into()], shapes(&[4])).unwrap();
        b.push_point(&[0], 0.0).unwrap();
        b.push_point(&[2], 7.0).unwrap();
        let c = b.finish();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(&[0]), Some(0.0));
    }

    #[test]
    fn duplicates_sum_and_disorder_errors() {
        let mut b = CompressedBuilder::new("T", vec!["I".into()], shapes(&[8])).unwrap();
        b.push_point(&[3], 1.0).unwrap();
        b.push_point(&[3], 2.0).unwrap();
        let err = b.push_point(&[1], 1.0);
        assert!(matches!(err, Err(FibertreeError::Unsorted { .. })));
        let c = b.finish();
        assert_eq!(c.entries(), vec![(vec![3], 3.0)]);
    }

    #[test]
    fn pair_ranks_build_from_tuple_coords() {
        let mut b = CompressedBuilder::new(
            "F",
            vec!["MK".into()],
            vec![Shape::Tuple(vec![Shape::Interval(4), Shape::Interval(3)])],
        )
        .unwrap();
        b.push(&[Coord::pair(0, 2)], 3.0).unwrap();
        b.push(&[Coord::pair(2, 0)], 9.0).unwrap();
        let c = b.finish();
        let owned = crate::tensor::fig1_matrix_a();
        let flat = Tensor::from_entries("F", &["M", "K"], &[4, 3], vec![])
            .unwrap()
            .flatten_rank("M", "MK")
            .unwrap();
        assert_eq!(c.rank_shapes(), flat.rank_shapes());
        assert_eq!(c.nnz(), 2);
        assert_eq!(
            c.leaves()[1],
            (vec![Coord::pair(2, 0)], 9.0),
            "pair coordinates come back out"
        );
        drop(owned);
    }

    #[test]
    fn wrong_arity_and_shape_are_rejected() {
        let mut b = CompressedBuilder::new("T", vec!["I".into()], shapes(&[4])).unwrap();
        assert!(matches!(
            b.push_point(&[1, 2], 1.0),
            Err(FibertreeError::ArityMismatch { .. })
        ));
        assert!(matches!(
            b.push_point(&[9], 1.0),
            Err(FibertreeError::OutOfShape { .. })
        ));
        assert!(matches!(
            b.push(&[Coord::pair(0, 0)], 1.0),
            Err(FibertreeError::OutOfShape { .. })
        ));
    }

    #[test]
    fn empty_and_scalar_builders_finish() {
        let b = CompressedBuilder::new("E", vec!["I".into()], shapes(&[4])).unwrap();
        assert!(b.is_empty());
        let c = b.finish();
        assert_eq!(c.nnz(), 0);
        let mut s = CompressedBuilder::new("s", vec![], vec![]).unwrap();
        s.push(&[], 2.0).unwrap();
        s.push(&[], 1.5).unwrap();
        assert_eq!(s.len(), 1);
        let c = s.finish();
        assert_eq!(c.get(&[]), Some(3.5));
    }

    #[test]
    fn append_tensor_concatenation_matches_single_build() {
        let entries = vec![
            (vec![0, 2], 3.0),
            (vec![1, 0], 1.0),
            (vec![2, 0], 9.0),
            (vec![2, 1], 4.0),
            (vec![5, 2], 5.0),
        ];
        let reference =
            CompressedTensor::from_entries("Z", &["M", "K"], &[8, 3], entries.clone()).unwrap();
        // Split the sorted leaves at every boundary, build each half as
        // its own tensor, and replay both into one builder.
        for split in 0..=entries.len() {
            let halves = [&entries[..split], &entries[split..]];
            let mut merged =
                CompressedBuilder::new("Z", vec!["M".into(), "K".into()], shapes(&[8, 3])).unwrap();
            for half in halves {
                let t = CompressedTensor::from_entries("Z", &["M", "K"], &[8, 3], half.to_vec())
                    .unwrap();
                merged.append_tensor(&t).unwrap();
            }
            assert_eq!(merged.finish(), reference, "split={split}");
        }
    }

    #[test]
    fn append_tensor_rejects_mismatch_and_disorder() {
        let mut b =
            CompressedBuilder::new("Z", vec!["M".into(), "K".into()], shapes(&[8, 3])).unwrap();
        let wrong_order = CompressedTensor::from_entries("X", &["I"], &[8], vec![]).unwrap();
        assert!(matches!(
            b.append_tensor(&wrong_order),
            Err(FibertreeError::ArityMismatch { .. })
        ));
        let wrong_shape =
            CompressedTensor::from_entries("X", &["M", "K"], &[4, 3], vec![]).unwrap();
        assert!(matches!(
            b.append_tensor(&wrong_shape),
            Err(FibertreeError::NotCompressible { .. })
        ));
        b.push_point(&[5, 0], 1.0).unwrap();
        let behind =
            CompressedTensor::from_entries("X", &["M", "K"], &[8, 3], vec![(vec![2, 0], 1.0)])
                .unwrap();
        assert!(matches!(
            b.append_tensor(&behind),
            Err(FibertreeError::Unsorted { .. })
        ));
    }

    #[test]
    fn deep_tuple_shapes_are_not_compressible() {
        let deep = Shape::Tuple(vec![
            Shape::Interval(2),
            Shape::Interval(2),
            Shape::Interval(2),
        ]);
        let err = CompressedBuilder::new("T", vec!["ABC".into()], vec![deep]);
        assert!(matches!(err, Err(FibertreeError::NotCompressible { .. })));
    }
}
