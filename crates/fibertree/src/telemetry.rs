//! Process-wide storage telemetry.
//!
//! A single counter tracks every decompression
//! ([`CompressedTensor::to_tensor`](crate::CompressedTensor::to_tensor)),
//! which is the one operation a compressed-native pipeline must never
//! perform. The simulator's integration tests snapshot it around a run to
//! prove the hot path stayed in the compressed representation — silent
//! fallbacks to the owned path show up as a nonzero delta instead of as a
//! quiet performance cliff.
//!
//! # Thread safety under shard parallelism
//!
//! The counter is a process-wide atomic bumped with `Relaxed` ordering:
//! increments from concurrent shard workers never tear and never get
//! lost, only their interleaving is unspecified. The sharded engine
//! joins every scoped worker before the simulator returns, and a join
//! is a synchronization point, so a snapshot taken *after* a run
//! observes every decompression performed *during* it. The supported
//! protocol is therefore: snapshot → run → snapshot, compare the delta.
//! Resetting is deliberately not offered — a reset would race
//! concurrently running tests, while monotonic deltas cannot.

use std::sync::atomic::{AtomicU64, Ordering};

static DECOMPRESSIONS: AtomicU64 = AtomicU64::new(0);

/// Number of `CompressedTensor::to_tensor` decompressions performed by
/// this process so far. Monotonic; compare snapshots rather than
/// resetting, so concurrent tests cannot race a reset. Safe to read
/// from any thread; see the module docs for the ordering guarantee.
pub fn decompress_count() -> u64 {
    DECOMPRESSIONS.load(Ordering::Relaxed)
}

pub(crate) fn note_decompress() {
    DECOMPRESSIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;

    #[test]
    fn to_tensor_increments_the_counter() {
        let c = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1], 1.0)]).unwrap();
        let before = decompress_count();
        let _ = c.to_tensor();
        let _ = c.to_tensor();
        assert!(decompress_count() >= before + 2);
    }

    #[test]
    fn counter_does_not_lose_increments_under_contention() {
        // The sharded engine's workers may all decompress concurrently;
        // after joining them, every increment must be visible — no lost
        // updates, no tearing.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        let c = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1], 1.0)]).unwrap();
        let before = decompress_count();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        let _ = c.to_tensor();
                    }
                });
            }
        });
        let delta = decompress_count() - before;
        assert!(
            delta >= THREADS as u64 * PER_THREAD,
            "joined workers must account for all {} decompressions, saw {delta}",
            THREADS as u64 * PER_THREAD
        );
    }
}
