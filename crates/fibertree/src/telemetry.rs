//! Process-wide storage telemetry.
//!
//! A single counter tracks every decompression
//! ([`CompressedTensor::to_tensor`](crate::CompressedTensor::to_tensor)),
//! which is the one operation a compressed-native pipeline must never
//! perform. The simulator's integration tests snapshot it around a run to
//! prove the hot path stayed in the compressed representation — silent
//! fallbacks to the owned path show up as a nonzero delta instead of as a
//! quiet performance cliff.

use std::sync::atomic::{AtomicU64, Ordering};

static DECOMPRESSIONS: AtomicU64 = AtomicU64::new(0);

/// Number of `CompressedTensor::to_tensor` decompressions performed by
/// this process so far. Monotonic; compare snapshots rather than
/// resetting, so concurrent tests cannot race a reset.
pub fn decompress_count() -> u64 {
    DECOMPRESSIONS.load(Ordering::Relaxed)
}

pub(crate) fn note_decompress() {
    DECOMPRESSIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;

    #[test]
    fn to_tensor_increments_the_counter() {
        let c = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1], 1.0)]).unwrap();
        let before = decompress_count();
        let _ = c.to_tensor();
        let _ = c.to_tensor();
        assert!(decompress_count() >= before + 2);
    }
}
