//! Process-wide storage and cache telemetry.
//!
//! Besides the decompression counter described below, this module hosts
//! the counters of the staged evaluation pipeline: one [`CacheStats`]
//! registry entry per cache stage (parsed specs, compiled plans,
//! transformed inputs, simulation reports) and a
//! [`transform_exec_count`] that counts transform chains *actually
//! executed* — the number a warm cache must keep flat. Everything
//! follows the same `Relaxed`/monotonic/snapshot-delta protocol.
//!
//! A counter tracks every decompression
//! ([`CompressedTensor::to_tensor`](crate::CompressedTensor::to_tensor)),
//! which is the one operation a compressed-native pipeline must never
//! perform. The simulator's integration tests snapshot it around a run to
//! prove the hot path stayed in the compressed representation — silent
//! fallbacks to the owned path show up as a nonzero delta instead of as a
//! quiet performance cliff.
//!
//! # Thread safety under shard parallelism
//!
//! The counter is a process-wide atomic bumped with `Relaxed` ordering:
//! increments from concurrent shard workers never tear and never get
//! lost, only their interleaving is unspecified. The sharded engine
//! joins every scoped worker before the simulator returns, and a join
//! is a synchronization point, so a snapshot taken *after* a run
//! observes every decompression performed *during* it. The supported
//! protocol is therefore: snapshot → run → snapshot, compare the delta.
//! Resetting is deliberately not offered — a reset would race
//! concurrently running tests, while monotonic deltas cannot.

use std::sync::atomic::{AtomicU64, Ordering};

static DECOMPRESSIONS: AtomicU64 = AtomicU64::new(0);

/// Number of `CompressedTensor::to_tensor` decompressions performed by
/// this process so far. Monotonic; compare snapshots rather than
/// resetting, so concurrent tests cannot race a reset. Safe to read
/// from any thread; see the module docs for the ordering guarantee.
pub fn decompress_count() -> u64 {
    DECOMPRESSIONS.load(Ordering::Relaxed)
}

pub(crate) fn note_decompress() {
    DECOMPRESSIONS.fetch_add(1, Ordering::Relaxed);
}

static TRANSFORM_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Number of input transform chains (swizzle/partition/flatten
/// pipelines) actually *executed* by this process, cache hits excluded.
/// A warm [`TransformCache`](crate::cache::TransformCache) run leaves
/// this counter untouched — the pinned proof that cached evaluation
/// performs zero redundant input transforms. Same monotonic
/// snapshot-delta protocol as [`decompress_count`].
pub fn transform_exec_count() -> u64 {
    TRANSFORM_EXECUTIONS.load(Ordering::Relaxed)
}

/// Records one executed transform chain. Called by the simulator engine
/// whenever a chain really runs (cold cache or no cache attached); not
/// intended for other callers.
pub fn note_transform_exec() {
    TRANSFORM_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Hit/miss/byte counters for one pipeline cache stage.
///
/// All fields are process-wide atomics with the same `Relaxed`,
/// monotonic, snapshot-delta protocol as [`decompress_count`]: take a
/// [`CacheStats::snapshot`] before and after the region of interest and
/// compare deltas; never expect absolute values in a process that runs
/// concurrent work.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one [`CacheStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Approximate bytes resident across all inserted artifacts
    /// (estimates, not allocator-exact). Evictions subtract, so for a
    /// bounded cache this tracks *resident* bytes, not cumulative.
    pub bytes: u64,
    /// Artifacts evicted to stay under a capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Creates zeroed counters (`const`, so stages can live in statics).
    pub const fn new() -> Self {
        CacheStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Records a cache hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss that inserted an artifact of roughly
    /// `bytes` bytes.
    pub fn miss(&self, bytes: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records the eviction of an artifact of roughly `bytes` bytes
    /// (saturating — estimates may drift but never underflow).
    pub fn eviction(&self, bytes: u64) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(bytes))
            });
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that built the artifact so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Approximate bytes resident (inserted minus evicted) so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Artifacts evicted under a capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for delta comparison (fields are read
    /// individually; use deltas, not cross-field invariants).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits(),
            misses: self.misses(),
            bytes: self.bytes(),
            evictions: self.evictions(),
        }
    }
}

static DEGRADED_SEQUENTIAL: AtomicU64 = AtomicU64::new(0);

/// Number of evaluations that fell back from the sharded parallel
/// engine to the sequential walk because a shard worker panicked
/// (panic isolation with graceful degradation). Monotonic; same
/// snapshot-delta protocol as [`decompress_count`].
pub fn degraded_sequential_count() -> u64 {
    DEGRADED_SEQUENTIAL.load(Ordering::Relaxed)
}

/// Records one sharded→sequential degradation. Called by the simulator
/// engine's retry path; not intended for other callers.
pub fn note_degraded_sequential() {
    DEGRADED_SEQUENTIAL.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide counters for the `SpecSource → ParsedSpec` cache stage.
static SPEC_CACHE: CacheStats = CacheStats::new();
/// Process-wide counters for the `ParsedSpec → LoweredPlan` cache stage.
static PLAN_CACHE: CacheStats = CacheStats::new();
/// Process-wide counters for the `PreparedInputs` (transformed-view)
/// cache stage.
static TRANSFORM_CACHE: CacheStats = CacheStats::new();
/// Process-wide counters for the `SimReport` cache stage.
static REPORT_CACHE: CacheStats = CacheStats::new();

/// Counters for the parsed-spec cache (keyed by source hash).
pub fn spec_cache_stats() -> &'static CacheStats {
    &SPEC_CACHE
}

/// Counters for the compiled-plan cache (keyed by spec hash).
pub fn plan_cache_stats() -> &'static CacheStats {
    &PLAN_CACHE
}

/// Counters for the transformed-input cache (keyed by tensor content
/// hash + transform chain).
pub fn transform_cache_stats() -> &'static CacheStats {
    &TRANSFORM_CACHE
}

/// Counters for the simulation-report cache (keyed by plan + operator
/// table + inputs).
pub fn report_cache_stats() -> &'static CacheStats {
    &REPORT_CACHE
}

/// A point-in-time copy of every process-wide pipeline counter: the
/// four stage caches plus the executed-transform, degradation, and
/// decompression counters.
///
/// One [`pipeline_snapshot`] call gives consumers that report telemetry
/// wholesale — the CLI's `--cache-stats` and the `teaal serve` `health`
/// endpoint — a consistent-enough view without naming every registry
/// entry. Same caveat as [`CacheStats::snapshot`]: fields are read
/// individually, so compare deltas, not cross-field invariants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// The parsed-spec cache stage ([`spec_cache_stats`]).
    pub spec: CacheSnapshot,
    /// The compiled-plan cache stage ([`plan_cache_stats`]).
    pub plan: CacheSnapshot,
    /// The transformed-input cache stage ([`transform_cache_stats`]).
    pub transform: CacheSnapshot,
    /// The simulation-report cache stage ([`report_cache_stats`]).
    pub report: CacheSnapshot,
    /// Transform chains actually executed ([`transform_exec_count`]).
    pub transform_execs: u64,
    /// Sharded→sequential degradations ([`degraded_sequential_count`]).
    pub degraded_sequential: u64,
    /// Decompressions performed ([`decompress_count`]).
    pub decompressions: u64,
}

impl PipelineSnapshot {
    /// The stage snapshots paired with their display names, in pipeline
    /// order — the shape both `--cache-stats` and `health` print.
    pub fn stages(&self) -> [(&'static str, CacheSnapshot); 4] {
        [
            ("spec", self.spec),
            ("plan", self.plan),
            ("transform", self.transform),
            ("report", self.report),
        ]
    }
}

/// Captures every pipeline counter at once (see [`PipelineSnapshot`]).
pub fn pipeline_snapshot() -> PipelineSnapshot {
    PipelineSnapshot {
        spec: SPEC_CACHE.snapshot(),
        plan: PLAN_CACHE.snapshot(),
        transform: TRANSFORM_CACHE.snapshot(),
        report: REPORT_CACHE.snapshot(),
        transform_execs: transform_exec_count(),
        degraded_sequential: degraded_sequential_count(),
        decompressions: decompress_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;

    #[test]
    fn to_tensor_increments_the_counter() {
        let c = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1], 1.0)]).unwrap();
        let before = decompress_count();
        let _ = c.to_tensor();
        let _ = c.to_tensor();
        assert!(decompress_count() >= before + 2);
    }

    #[test]
    fn counter_does_not_lose_increments_under_contention() {
        // The sharded engine's workers may all decompress concurrently;
        // after joining them, every increment must be visible — no lost
        // updates, no tearing.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        let c = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1], 1.0)]).unwrap();
        let before = decompress_count();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        let _ = c.to_tensor();
                    }
                });
            }
        });
        let delta = decompress_count() - before;
        assert!(
            delta >= THREADS as u64 * PER_THREAD,
            "joined workers must account for all {} decompressions, saw {delta}",
            THREADS as u64 * PER_THREAD
        );
    }

    #[test]
    fn cache_stats_count_hits_misses_and_bytes() {
        let stats = CacheStats::new();
        stats.miss(128);
        stats.hit();
        stats.hit();
        let snap = stats.snapshot();
        assert_eq!(
            snap,
            CacheSnapshot {
                hits: 2,
                misses: 1,
                bytes: 128,
                evictions: 0
            }
        );
    }

    #[test]
    fn evictions_release_resident_bytes_without_underflow() {
        let stats = CacheStats::new();
        stats.miss(100);
        stats.eviction(60);
        assert_eq!((stats.bytes(), stats.evictions()), (40, 1));
        // Estimate drift must saturate, never wrap.
        stats.eviction(500);
        assert_eq!((stats.bytes(), stats.evictions()), (0, 2));
    }

    #[test]
    fn pipeline_snapshot_mirrors_the_stage_registries() {
        let before = pipeline_snapshot();
        spec_cache_stats().miss(11);
        plan_cache_stats().hit();
        note_transform_exec();
        let after = pipeline_snapshot();
        assert!(after.spec.misses > before.spec.misses);
        assert!(after.spec.bytes >= before.spec.bytes + 11);
        assert!(after.plan.hits > before.plan.hits);
        assert!(after.transform_execs > before.transform_execs);
        // `stages()` pairs names with the same values, in order.
        let names: Vec<&str> = after.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["spec", "plan", "transform", "report"]);
        assert_eq!(after.stages()[0].1, after.spec);
    }

    #[test]
    fn stage_registry_counters_are_independent() {
        let before = report_cache_stats().snapshot();
        transform_cache_stats().hit();
        spec_cache_stats().miss(7);
        plan_cache_stats().miss(9);
        // Other stages' traffic never leaks into the report stage.
        assert_eq!(report_cache_stats().snapshot(), before);
        assert!(spec_cache_stats().bytes() >= 7);
        assert!(plan_cache_stats().misses() >= 1);
        assert!(transform_cache_stats().hits() >= 1);
    }
}
