//! Tensors represented as fibertrees with named, ordered ranks.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};

/// An `N`-tensor stored as a fibertree (paper §2.1).
///
/// Each level of the tree corresponds to a labelled rank; the order of
/// `rank_ids` read left-to-right matches levels read top-to-bottom. Sparse
/// tensors omit empty payloads. A 0-tensor (scalar) has no ranks and a
/// single value.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::Tensor;
/// // The matrix A from Fig. 1 of the paper.
/// let a = Tensor::from_entries(
///     "A",
///     &["M", "K"],
///     &[4, 3],
///     vec![(vec![0, 2], 3.0), (vec![2, 0], 9.0), (vec![2, 1], 4.0), (vec![2, 2], 5.0)],
/// ).unwrap();
/// assert_eq!(a.nnz(), 4);
/// assert_eq!(a.get(&[0, 2]), Some(3.0));
/// assert_eq!(a.get(&[1, 1]), None);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Tensor {
    name: String,
    rank_ids: Vec<String>,
    rank_shapes: Vec<Shape>,
    root: Payload,
}

impl Tensor {
    /// Creates an empty tensor with the given rank ids and interval shapes.
    ///
    /// # Panics
    ///
    /// Panics if `rank_ids` and `shape` have different lengths.
    pub fn empty(name: impl Into<String>, rank_ids: &[&str], shape: &[u64]) -> Self {
        assert_eq!(rank_ids.len(), shape.len(), "one shape per rank");
        let rank_shapes: Vec<Shape> = shape.iter().map(|&n| Shape::Interval(n)).collect();
        let root = if rank_shapes.is_empty() {
            Payload::Val(0.0)
        } else {
            Payload::Fiber(Fiber::new(rank_shapes[0].clone()))
        };
        Tensor {
            name: name.into(),
            rank_ids: rank_ids.iter().map(|s| s.to_string()).collect(),
            rank_shapes,
            root,
        }
    }

    /// Creates a 0-tensor (scalar).
    pub fn scalar(name: impl Into<String>, value: f64) -> Self {
        Tensor {
            name: name.into(),
            rank_ids: Vec::new(),
            rank_shapes: Vec::new(),
            root: Payload::Val(value),
        }
    }

    /// Builds a tensor from `(point, value)` entries.
    ///
    /// Entries with value `0.0` are dropped (the implicit-zero convention);
    /// duplicate points are summed.
    ///
    /// # Errors
    ///
    /// Returns an error if an entry's arity differs from the rank count or a
    /// coordinate falls outside the shape.
    pub fn from_entries(
        name: impl Into<String>,
        rank_ids: &[&str],
        shape: &[u64],
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, FibertreeError> {
        let mut t = Tensor::empty(name, rank_ids, shape);
        let n = rank_ids.len();
        let mut dedup: BTreeMap<Vec<u64>, f64> = BTreeMap::new();
        for (point, v) in entries {
            if point.len() != n {
                return Err(FibertreeError::ArityMismatch {
                    expected: n,
                    got: point.len(),
                });
            }
            for (d, &c) in point.iter().enumerate() {
                if c >= shape[d] {
                    return Err(FibertreeError::OutOfShape {
                        coord: Coord::Point(c),
                        shape: t.rank_shapes[d].clone(),
                    });
                }
            }
            *dedup.entry(point).or_insert(0.0) += v;
        }
        for (point, v) in dedup {
            if v != 0.0 {
                t.set(&point, v);
            }
        }
        Ok(t)
    }

    /// Builds a 2-tensor from a dense row-major matrix, omitting zeros.
    pub fn from_dense_2d(name: impl Into<String>, rank_ids: &[&str; 2], rows: &[Vec<f64>]) -> Self {
        let m = rows.len() as u64;
        let k = rows.first().map_or(0, |r| r.len()) as u64;
        let mut entries = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((vec![i as u64, j as u64], v));
                }
            }
        }
        Tensor::from_entries(name, &[rank_ids[0], rank_ids[1]], &[m, k], entries)
            .expect("dense matrix entries are in shape by construction")
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the tensor.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The labelled ranks, top-to-bottom.
    pub fn rank_ids(&self) -> &[String] {
        &self.rank_ids
    }

    /// The per-rank shapes, in rank order.
    pub fn rank_shapes(&self) -> &[Shape] {
        &self.rank_shapes
    }

    /// Number of ranks (`N` for an `N`-tensor).
    pub fn order(&self) -> usize {
        self.rank_ids.len()
    }

    /// Index of a rank id within this tensor.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::UnknownRank`] if the rank is not present.
    pub fn rank_index(&self, rank: &str) -> Result<usize, FibertreeError> {
        self.rank_ids
            .iter()
            .position(|r| r == rank)
            .ok_or_else(|| FibertreeError::UnknownRank {
                rank: rank.to_string(),
                have: self.rank_ids.clone(),
            })
    }

    /// The root payload (a fiber for `N ≥ 1`, a value for scalars).
    pub fn root(&self) -> &Payload {
        &self.root
    }

    /// Mutable root payload.
    pub fn root_mut(&mut self) -> &mut Payload {
        &mut self.root
    }

    /// The root fiber, if this is not a scalar.
    pub fn root_fiber(&self) -> Option<&Fiber> {
        self.root.as_fiber()
    }

    /// Number of nonzero leaves.
    pub fn nnz(&self) -> usize {
        match &self.root {
            Payload::Val(v) => usize::from(*v != 0.0),
            Payload::Fiber(f) => f.leaf_count(),
        }
    }

    /// Reads the value at an integer point, `None` when absent.
    pub fn get(&self, point: &[u64]) -> Option<f64> {
        let mut payload = &self.root;
        for &c in point {
            payload = payload.as_fiber()?.get(&Coord::Point(c))?;
        }
        payload.as_val()
    }

    /// Writes a value at an integer point, creating intermediate fibers.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong arity.
    pub fn set(&mut self, point: &[u64], value: f64) {
        assert_eq!(
            point.len(),
            self.order(),
            "point arity must match rank count"
        );
        if point.is_empty() {
            self.root = Payload::Val(value);
            return;
        }
        let shapes = self.rank_shapes.clone();
        let mut payload = &mut self.root;
        for (d, &c) in point.iter().enumerate() {
            let fiber = payload
                .as_fiber_mut()
                .expect("intermediate payloads of an N-tensor are fibers");
            let is_leaf = d + 1 == shapes.len();
            let child_shape = if is_leaf {
                None
            } else {
                Some(shapes[d + 1].clone())
            };
            payload = fiber.get_or_insert_with(&Coord::Point(c), || match &child_shape {
                None => Payload::Val(0.0),
                Some(s) => Payload::Fiber(Fiber::new(s.clone())),
            });
        }
        *payload = Payload::Val(value);
    }

    /// Enumerates `(path, value)` for every leaf, where `path` holds one
    /// coordinate per rank (coordinates may be tuples on flattened ranks).
    pub fn leaves(&self) -> Vec<(Vec<Coord>, f64)> {
        let mut out = Vec::new();
        match &self.root {
            Payload::Val(v) => {
                if *v != 0.0 {
                    out.push((Vec::new(), *v));
                }
            }
            Payload::Fiber(f) => {
                let mut path = Vec::new();
                collect_leaves(f, &mut path, &mut out);
            }
        }
        out
    }

    /// Enumerates `(point, value)` for every leaf of a tensor whose ranks
    /// are all plain intervals (no flattened ranks).
    ///
    /// # Panics
    ///
    /// Panics if a flattened (tuple-coordinate) rank is encountered.
    pub fn entries(&self) -> Vec<(Vec<u64>, f64)> {
        self.leaves()
            .into_iter()
            .map(|(path, v)| {
                let pt = path
                    .iter()
                    .map(|c| c.as_point().expect("entries() requires point coordinates"))
                    .collect();
                (pt, v)
            })
            .collect()
    }

    /// Rebuilds the tensor from raw parts. Intended for transforms within
    /// this crate and for testing; validity is the caller's responsibility.
    pub fn from_parts(
        name: impl Into<String>,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
        root: Payload,
    ) -> Self {
        Tensor {
            name: name.into(),
            rank_ids,
            rank_shapes,
            root,
        }
    }

    /// Removes empty fibers and zero leaves throughout the tree.
    pub fn prune(&mut self, zero: f64) {
        if let Payload::Fiber(f) = &mut self.root {
            f.prune(zero);
        }
    }

    /// Per-rank `(fiber count, total occupancy)` statistics, used by the
    /// format sizing and traffic models.
    pub fn rank_stats(&self) -> Vec<(usize, usize)> {
        match &self.root {
            Payload::Val(_) => Vec::new(),
            Payload::Fiber(f) => f.level_stats(),
        }
    }

    /// Sums elementwise absolute difference against another tensor —
    /// convenience for functional validation.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        let mut points: BTreeMap<Vec<Coord>, (f64, f64)> = BTreeMap::new();
        for (p, v) in self.leaves() {
            points.entry(p).or_insert((0.0, 0.0)).0 = v;
        }
        for (p, v) in other.leaves() {
            points.entry(p).or_insert((0.0, 0.0)).1 = v;
        }
        points
            .values()
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

fn collect_leaves(f: &Fiber, path: &mut Vec<Coord>, out: &mut Vec<(Vec<Coord>, f64)>) {
    for e in f.iter() {
        path.push(e.coord.clone());
        match &e.payload {
            Payload::Val(v) => {
                if *v != 0.0 {
                    out.push((path.clone(), *v));
                }
            }
            Payload::Fiber(child) => collect_leaves(child, path, out),
        }
        path.pop();
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.rank_ids.join(", "))?;
        match &self.root {
            Payload::Val(v) => write!(f, " = {v}"),
            Payload::Fiber(fb) => write!(f, " = {fb}"),
        }
    }
}

/// Builds small tensors ergonomically in tests and examples.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::TensorBuilder;
/// let b = TensorBuilder::new("B", &["K"], &[6])
///     .entry(&[0], 1.0)
///     .entry(&[4], 2.0)
///     .build()
///     .unwrap();
/// assert_eq!(b.nnz(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TensorBuilder {
    name: String,
    rank_ids: Vec<String>,
    shape: Vec<u64>,
    entries: Vec<(Vec<u64>, f64)>,
}

impl TensorBuilder {
    /// Starts a builder for a tensor with the given ranks and shape.
    pub fn new(name: impl Into<String>, rank_ids: &[&str], shape: &[u64]) -> Self {
        TensorBuilder {
            name: name.into(),
            rank_ids: rank_ids.iter().map(|s| s.to_string()).collect(),
            shape: shape.to_vec(),
            entries: Vec::new(),
        }
    }

    /// Adds one `(point, value)` entry.
    pub fn entry(mut self, point: &[u64], value: f64) -> Self {
        self.entries.push((point.to_vec(), value));
        self
    }

    /// Adds many entries at once.
    pub fn entries(mut self, entries: impl IntoIterator<Item = (Vec<u64>, f64)>) -> Self {
        self.entries.extend(entries);
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Propagates shape/arity validation errors from
    /// [`Tensor::from_entries`].
    pub fn build(self) -> Result<Tensor, FibertreeError> {
        let ids: Vec<&str> = self.rank_ids.iter().map(String::as_str).collect();
        Tensor::from_entries(self.name, &ids, &self.shape, self.entries)
    }
}

/// Returns the example matrix `A` from Fig. 1 of the paper
/// (`[M, K]` rank order, shape `4 × 3`).
pub fn fig1_matrix_a() -> Tensor {
    Tensor::from_entries(
        "A",
        &["M", "K"],
        &[4, 3],
        vec![
            (vec![0, 2], 3.0),
            (vec![2, 0], 9.0),
            (vec![2, 1], 4.0),
            (vec![2, 2], 5.0),
        ],
    )
    .expect("fig. 1 matrix is well formed")
}

/// Returns the example vector `B` from Fig. 1 of the paper
/// (`[K]` rank order, shape `3`).
pub fn fig1_vector_b() -> Tensor {
    Tensor::from_entries("B", &["K"], &[3], vec![(vec![1], 2.0), (vec![2], 6.0)])
        .expect("fig. 1 vector is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_have_no_ranks() {
        let s = Tensor::scalar("s", 3.0);
        assert_eq!(s.order(), 0);
        assert_eq!(s.get(&[]), Some(3.0));
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn set_then_get_roundtrips() {
        let mut t = Tensor::empty("T", &["M", "K"], &[4, 4]);
        t.set(&[1, 2], 5.0);
        t.set(&[3, 0], 7.0);
        assert_eq!(t.get(&[1, 2]), Some(5.0));
        assert_eq!(t.get(&[3, 0]), Some(7.0));
        assert_eq!(t.get(&[0, 0]), None);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn from_entries_sums_duplicates_and_drops_zeros() {
        let t = Tensor::from_entries(
            "T",
            &["I"],
            &[4],
            vec![(vec![1], 2.0), (vec![1], 3.0), (vec![2], 0.0)],
        )
        .unwrap();
        assert_eq!(t.get(&[1]), Some(5.0));
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn fig1_matrix_matches_paper() {
        let a = fig1_matrix_a();
        // Rank M has fibers at m=0 and m=2; K fibers hold the values shown.
        assert_eq!(a.rank_ids(), &["M".to_string(), "K".to_string()]);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(&[2, 1]), Some(4.0));
        let stats = a.rank_stats();
        assert_eq!(stats[0], (1, 2)); // one M fiber, occupancy 2
        assert_eq!(stats[1], (2, 4)); // two K fibers, total occupancy 4
    }

    #[test]
    fn entries_roundtrip_through_leaves() {
        let a = fig1_matrix_a();
        let entries = a.entries();
        let rebuilt = Tensor::from_entries("A2", &["M", "K"], &[4, 3], entries).unwrap();
        assert_eq!(rebuilt.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn dense_2d_import_skips_zeros() {
        let t = Tensor::from_dense_2d("D", &["M", "K"], &[vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 1]), Some(1.0));
        assert_eq!(t.get(&[1, 1]), None);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let err = Tensor::from_entries("T", &["I"], &[4], vec![(vec![1, 2], 1.0)]);
        assert!(matches!(err, Err(FibertreeError::ArityMismatch { .. })));
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = fig1_matrix_a();
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(&[0, 2], 4.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn builder_collects_entries() {
        let t = TensorBuilder::new("T", &["I", "J"], &[3, 3])
            .entry(&[0, 1], 1.0)
            .entries(vec![(vec![2, 2], 4.0)])
            .build()
            .unwrap();
        assert_eq!(t.nnz(), 2);
    }
}
