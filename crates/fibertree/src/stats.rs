//! Per-tensor rank statistics for analytical cost modeling.
//!
//! A [`TensorStats`] summarizes the shape of a fibertree without keeping
//! any of its data: per-rank extents, fiber counts, occupancies, distinct
//! coordinate counts, and a log2-bucketed fiber-length histogram. The
//! summary is computed in one depth-first walk over [`FiberView`] cursors
//! (so it works identically for owned and compressed tensors) and is the
//! input the simulator's `estimate` module uses to predict co-iteration
//! work and traffic without touching values.
//!
//! Statistics are cheap relative to simulation but still O(nnz), so a
//! [`StatsCache`] memoizes them per tensor fingerprint: compute once,
//! share across the thousands of mapping candidates a search evaluates.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use crate::coord::Coord;
use crate::view::{FiberView, PayloadView, TensorData};

/// Summary statistics for one storage rank (one fibertree level).
#[derive(Clone, Debug, PartialEq)]
pub struct RankStats {
    /// The rank's name (e.g. `"K"`).
    pub rank: String,
    /// The rank's declared extent (coordinate-space size). Tuple shapes
    /// (flattened ranks) report the product of their component extents.
    pub extent: u64,
    /// Number of fibers at this level (distinct coordinate prefixes of the
    /// ranks above; `1` for the root rank).
    pub fibers: u64,
    /// Total elements across all fibers at this level — equivalently the
    /// number of distinct coordinate prefixes *through* this rank.
    pub elements: u64,
    /// Number of distinct coordinates seen on this rank alone (the
    /// projection of the nonzero set onto this single axis).
    pub distinct_coords: u64,
    /// Largest single-fiber occupancy at this level.
    pub max_occupancy: u64,
    /// Fiber-length histogram in log2 buckets: `histogram[i]` counts fibers
    /// whose occupancy `c` satisfies `2^i <= c < 2^(i+1)`. Empty fibers do
    /// not exist in a fibertree, so bucket 0 counts occupancy-1 fibers.
    pub histogram: Vec<u64>,
}

impl RankStats {
    /// Mean elements per fiber at this level (`0.0` when there are no
    /// fibers).
    pub fn mean_occupancy(&self) -> f64 {
        if self.fibers == 0 {
            0.0
        } else {
            self.elements as f64 / self.fibers as f64
        }
    }

    /// Mean fraction of the coordinate space each fiber occupies.
    pub fn density(&self) -> f64 {
        if self.extent == 0 {
            0.0
        } else {
            self.mean_occupancy() / self.extent as f64
        }
    }
}

/// Data-independent shape summary of a tensor: one [`RankStats`] per
/// storage rank, in storage order.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorStats {
    /// The tensor's name.
    pub name: String,
    /// Number of nonzero leaves.
    pub nnz: u64,
    /// Per-rank statistics in storage (rank-id) order.
    pub ranks: Vec<RankStats>,
    /// Marginal caps: `(ranks, count)` pairs asserting that the projection
    /// of the nonzero set onto `ranks` has at most `count` distinct
    /// tuples. Storage-prefix caps are implied by `ranks` and not listed;
    /// entries here carry *extra* knowledge a cost model cannot derive
    /// from chain statistics — e.g. for a cascade intermediate
    /// `T[k,m,n] = A[k,m]·B[k,n]`, the `(K, N)` marginal is bounded by
    /// `nnz(B)` regardless of T's storage order.
    pub marginal_caps: Vec<(Vec<String>, u64)>,
    /// Tensors whose nonzero pattern *contains* this tensor's, projected
    /// onto their shared ranks. A cascade intermediate built by a single
    /// product (`T[k,m,n] = A[k,m]·B[k,n]`) only has a coordinate where
    /// every operand does, so `T`'s `(K, M)` marginal nests inside `A`'s
    /// pattern and `(K, N)` inside `B`'s — and transitively inside
    /// anything *they* nest in. A cost model co-iterating this tensor
    /// against a listed one must not treat their coordinates as
    /// independent: the expected overlap is this tensor's own occupancy,
    /// not the independent-intersection product. Empty for measured
    /// (non-synthetic) tensors.
    pub pattern_subset_of: Vec<String>,
}

impl TensorStats {
    /// Computes statistics for a tensor in one depth-first pass.
    pub fn compute(data: &TensorData) -> TensorStats {
        Self::compute_parts(
            data.name(),
            data.rank_ids(),
            data.rank_shapes(),
            data.nnz() as u64,
            data.root_fiber_view(),
        )
    }

    fn compute_parts(
        name: &str,
        rank_ids: &[String],
        shapes: &[crate::coord::Shape],
        nnz: u64,
        root: Option<FiberView<'_>>,
    ) -> TensorStats {
        let mut levels: Vec<LevelAcc> = rank_ids
            .iter()
            .zip(shapes)
            .map(|(r, s)| LevelAcc::new(r, s.extent()))
            .collect();
        if let Some(root) = root {
            walk(root, 0, &mut levels);
        }
        TensorStats {
            name: name.to_string(),
            nnz,
            ranks: levels.into_iter().map(LevelAcc::finish).collect(),
            marginal_caps: Vec::new(),
            pattern_subset_of: Vec::new(),
        }
    }

    /// Builds synthetic statistics from modeled per-level counts, for
    /// tensors that do not exist yet (e.g. cascade intermediates whose
    /// occupancy a cost model has estimated). `levels` lists, per rank in
    /// storage order, `(rank, extent, elements)` where `elements` is the
    /// estimated number of distinct coordinate prefixes through that rank;
    /// the deepest level's count doubles as the tensor's `nnz`.
    pub fn synthetic(name: &str, levels: &[(String, u64, u64)]) -> TensorStats {
        let mut fibers = 1u64;
        let mut ranks = Vec::with_capacity(levels.len());
        for (rank, extent, elements) in levels {
            let elements = (*elements).max(fibers).max(1);
            let mean = (elements / fibers.max(1)).max(1);
            ranks.push(RankStats {
                rank: rank.clone(),
                extent: *extent,
                fibers,
                elements,
                distinct_coords: elements.min(*extent),
                max_occupancy: mean,
                histogram: Vec::new(),
            });
            fibers = elements;
        }
        TensorStats {
            name: name.to_string(),
            nnz: ranks.last().map(|r| r.elements).unwrap_or(0),
            ranks,
            marginal_caps: Vec::new(),
            pattern_subset_of: Vec::new(),
        }
    }

    /// Number of distinct coordinate prefixes of length `k` (so
    /// `prefix_elements(0) == 1` and `prefix_elements(order)` is `nnz`).
    pub fn prefix_elements(&self, k: usize) -> u64 {
        if k == 0 {
            1
        } else {
            self.ranks
                .get(k - 1)
                .map(|r| r.elements)
                .unwrap_or(self.nnz)
        }
    }

    /// Looks up the statistics for a named rank.
    pub fn rank(&self, name: &str) -> Option<&RankStats> {
        self.ranks.iter().find(|r| r.rank == name)
    }

    /// Storage-order rank names.
    pub fn rank_order(&self) -> Vec<&str> {
        self.ranks.iter().map(|r| r.rank.as_str()).collect()
    }
}

/// In-flight accumulator for one level of the statistics walk.
struct LevelAcc {
    rank: String,
    extent: u64,
    fibers: u64,
    elements: u64,
    coords: HashSet<Coord>,
    max_occupancy: u64,
    histogram: Vec<u64>,
}

impl LevelAcc {
    fn new(rank: &str, extent: u64) -> Self {
        LevelAcc {
            rank: rank.to_string(),
            extent,
            fibers: 0,
            elements: 0,
            coords: HashSet::new(),
            max_occupancy: 0,
            histogram: Vec::new(),
        }
    }

    fn observe_fiber(&mut self, occupancy: u64) {
        self.fibers += 1;
        self.elements += occupancy;
        self.max_occupancy = self.max_occupancy.max(occupancy);
        let bucket = if occupancy == 0 {
            0
        } else {
            63 - occupancy.leading_zeros() as usize
        };
        if self.histogram.len() <= bucket {
            self.histogram.resize(bucket + 1, 0);
        }
        self.histogram[bucket] += 1;
    }

    fn finish(self) -> RankStats {
        RankStats {
            rank: self.rank,
            extent: self.extent,
            fibers: self.fibers,
            elements: self.elements,
            distinct_coords: self.coords.len() as u64,
            max_occupancy: self.max_occupancy,
            histogram: self.histogram,
        }
    }
}

fn walk(fiber: FiberView<'_>, level: usize, levels: &mut [LevelAcc]) {
    let occ = fiber.occupancy();
    levels[level].observe_fiber(occ as u64);
    for pos in 0..occ {
        let coord = fiber.coord_at(pos);
        if !levels[level].coords.contains(&coord) {
            levels[level].coords.insert(coord);
        }
        if let PayloadView::Fiber(child) = fiber.payload_at(pos) {
            walk(child, level + 1, levels);
        }
    }
}

impl crate::tensor::Tensor {
    /// Computes [`TensorStats`] for this tensor (one depth-first pass,
    /// no cloning). See also [`StatsCache`] for memoized computation.
    pub fn statistics(&self) -> TensorStats {
        TensorStats::compute_parts(
            self.name(),
            self.rank_ids(),
            self.rank_shapes(),
            self.nnz() as u64,
            self.root_fiber().map(FiberView::Owned),
        )
    }
}

impl crate::compressed::CompressedTensor {
    /// Computes [`TensorStats`] for this tensor (one depth-first pass over
    /// the CSF arrays, no decompression). See also [`StatsCache`].
    pub fn statistics(&self) -> TensorStats {
        TensorStats::compute_parts(
            self.name(),
            self.rank_ids(),
            self.rank_shapes(),
            self.nnz() as u64,
            FiberView::of_compressed(self),
        )
    }
}

impl TensorData {
    /// Computes [`TensorStats`] for either representation. See also
    /// [`StatsCache`] for memoized computation.
    pub fn statistics(&self) -> TensorStats {
        TensorStats::compute(self)
    }
}

/// Memoizing store of [`TensorStats`], keyed by a cheap structural
/// fingerprint of the tensor (name, rank ids, extents, nnz).
///
/// The fingerprint deliberately avoids hashing coordinates or values, so
/// two *different* tensors that agree on name, rank layout, and nonzero
/// count would collide and share one entry. Within a mapping search —
/// where the same named inputs are re-estimated across thousands of
/// candidate loop orders — that cannot happen, and lookups stay O(ranks).
#[derive(Default)]
pub struct StatsCache {
    inner: Mutex<HashMap<u64, Arc<TensorStats>>>,
}

impl StatsCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        StatsCache::default()
    }

    /// Returns the cached statistics for `data`, computing and storing
    /// them on first sight of its fingerprint.
    pub fn get_or_compute(&self, data: &TensorData) -> Arc<TensorStats> {
        let key = Self::fingerprint(data);
        if let Some(hit) = self.inner.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        let stats = Arc::new(TensorStats::compute(data));
        self.inner
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(stats)
            .clone()
    }

    /// Number of distinct tensors cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The structural fingerprint used as cache key: FNV-1a over the
    /// tensor's name, rank ids, extents, and nonzero count.
    pub fn fingerprint(data: &TensorData) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(data.name().as_bytes());
        for (rid, shape) in data.rank_ids().iter().zip(data.rank_shapes()) {
            eat(rid.as_bytes());
            eat(&shape.extent().to_le_bytes());
        }
        eat(&(data.nnz() as u64).to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorBuilder;

    fn sample() -> TensorData {
        // Row 0: 3 elements; row 2: 1 element; row 5: 2 elements.
        let t = TensorBuilder::new("A", &["K", "M"], &[8, 8])
            .entries(
                [(0, 1), (0, 4), (0, 7), (2, 2), (5, 0), (5, 4)]
                    .into_iter()
                    .map(|(k, m)| (vec![k, m], 1.0)),
            )
            .build()
            .expect("valid entries");
        TensorData::Owned(t)
    }

    #[test]
    fn per_rank_counts_match_structure() {
        let stats = TensorStats::compute(&sample());
        assert_eq!(stats.nnz, 6);
        assert_eq!(stats.ranks.len(), 2);
        let k = &stats.ranks[0];
        assert_eq!((k.fibers, k.elements, k.distinct_coords), (1, 3, 3));
        assert_eq!(k.max_occupancy, 3);
        let m = &stats.ranks[1];
        assert_eq!((m.fibers, m.elements), (3, 6));
        // M coordinates 1,4,7,2,0 → 5 distinct.
        assert_eq!(m.distinct_coords, 5);
        assert_eq!(m.max_occupancy, 3);
        // Fiber lengths at M: 3, 1, 2 → buckets log2: 1, 0, 1.
        assert_eq!(m.histogram, vec![1, 2]);
        assert!((m.mean_occupancy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_elements_bracket_the_tree() {
        let stats = TensorStats::compute(&sample());
        assert_eq!(stats.prefix_elements(0), 1);
        assert_eq!(stats.prefix_elements(1), 3);
        assert_eq!(stats.prefix_elements(2), 6);
    }

    #[test]
    fn compressed_and_owned_agree() {
        let data = sample();
        let owned = TensorStats::compute(&data);
        let ct = crate::compressed::CompressedTensor::from_tensor(data.as_owned().unwrap())
            .expect("compressible");
        assert_eq!(ct.statistics(), owned);
        let compressed = TensorData::Compressed(ct);
        assert_eq!(TensorStats::compute(&compressed), owned);
    }

    #[test]
    fn cache_memoizes_by_fingerprint() {
        let cache = StatsCache::new();
        let data = sample();
        let a = cache.get_or_compute(&data);
        let b = cache.get_or_compute(&data);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn synthetic_stats_are_monotone() {
        let stats = TensorStats::synthetic(
            "T",
            &[
                ("K".to_string(), 64, 32),
                ("M".to_string(), 64, 400),
                ("N".to_string(), 64, 1600),
            ],
        );
        assert_eq!(stats.nnz, 1600);
        assert_eq!(stats.prefix_elements(1), 32);
        assert_eq!(stats.ranks[1].fibers, 32);
        assert_eq!(stats.ranks[2].fibers, 400);
    }
}
