//! Coordinates and shapes for fibertree ranks.
//!
//! A coordinate identifies an element within a fiber. Plain ranks use
//! integer point coordinates; ranks produced by *flattening* (combining two
//! ranks into one, Fig. 2 of the paper) use tuple coordinates whose
//! components are the coordinates of the original ranks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A coordinate within a fiber.
///
/// `Point` is an ordinary integer coordinate. `Tuple` arises from rank
/// flattening: the coordinate of a flattened rank is the tuple of the
/// coordinates in the original fibers. Tuples order lexicographically, which
/// is exactly the order a depth-first traversal of the unflattened tree
/// visits them in, so flattening preserves iteration order.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::Coord;
/// let a = Coord::Point(3);
/// let b = Coord::pair(0, 2);
/// assert!(Coord::pair(0, 2) < Coord::pair(2, 0));
/// assert_eq!(a.as_point(), Some(3));
/// assert_eq!(b.components().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Coord {
    /// An integer coordinate on an ordinary rank.
    Point(u64),
    /// A tuple coordinate on a flattened rank.
    Tuple(Vec<Coord>),
}

impl Coord {
    /// Builds a two-component tuple coordinate from integer points.
    pub fn pair(a: u64, b: u64) -> Self {
        Coord::Tuple(vec![Coord::Point(a), Coord::Point(b)])
    }

    /// Returns the integer value if this is a point coordinate.
    pub fn as_point(&self) -> Option<u64> {
        match self {
            Coord::Point(p) => Some(*p),
            Coord::Tuple(_) => None,
        }
    }

    /// Returns the components of this coordinate.
    ///
    /// A point coordinate has a single component (itself); a tuple
    /// coordinate has one component per flattened rank.
    pub fn components(&self) -> Vec<Coord> {
        match self {
            Coord::Point(_) => vec![self.clone()],
            Coord::Tuple(cs) => cs.clone(),
        }
    }

    /// Number of components (`1` for points).
    pub fn arity(&self) -> usize {
        match self {
            Coord::Point(_) => 1,
            Coord::Tuple(cs) => cs.len(),
        }
    }

    /// Concatenates two coordinates into a flattened tuple coordinate.
    ///
    /// Components of either side are spliced so that flattening is
    /// associative: `flat(flat(a,b),c) == flat(a,flat(b,c))`.
    pub fn flattened_with(&self, other: &Coord) -> Coord {
        let mut cs = self.components();
        cs.extend(other.components());
        Coord::Tuple(cs)
    }

    /// Splits the first component off a tuple coordinate.
    ///
    /// Returns `(first, rest)` where `rest` is a point when only one
    /// component remains. Returns `None` for point coordinates, which have
    /// nothing to split.
    pub fn split_first(&self) -> Option<(Coord, Coord)> {
        match self {
            Coord::Point(_) => None,
            Coord::Tuple(cs) => {
                let first = cs.first()?.clone();
                let rest: Vec<Coord> = cs[1..].to_vec();
                let rest = match rest.len() {
                    0 => return None,
                    1 => rest.into_iter().next().expect("len checked"),
                    _ => Coord::Tuple(rest),
                };
                Some((first, rest))
            }
        }
    }
}

impl From<u64> for Coord {
    fn from(p: u64) -> Self {
        Coord::Point(p)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coord::Point(p) => write!(f, "{p}"),
            Coord::Tuple(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The shape of a fiber: the set of legal coordinate values.
///
/// An `Interval(n)` shape means coordinates in `[0, n)`; a `Tuple` shape is
/// the product space of flattened ranks. Shapes drive uncompressed format
/// sizing and uniform-shape partitioning boundaries.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Shape {
    /// Coordinates are integers in `[0, n)`.
    Interval(u64),
    /// Coordinates are tuples drawn from the product of component shapes.
    Tuple(Vec<Shape>),
}

impl Shape {
    /// Number of legal coordinates in the shape.
    ///
    /// For tuples this is the product of component extents.
    pub fn extent(&self) -> u64 {
        match self {
            Shape::Interval(n) => *n,
            Shape::Tuple(ss) => ss.iter().map(Shape::extent).product(),
        }
    }

    /// Returns the interval bound if this is an interval shape.
    pub fn as_interval(&self) -> Option<u64> {
        match self {
            Shape::Interval(n) => Some(*n),
            Shape::Tuple(_) => None,
        }
    }

    /// Concatenates two shapes into a flattened tuple shape, splicing
    /// components just like [`Coord::flattened_with`].
    pub fn flattened_with(&self, other: &Shape) -> Shape {
        let mut cs = self.components();
        cs.extend(other.components());
        Shape::Tuple(cs)
    }

    /// Components of the shape (a single-element vec for intervals).
    pub fn components(&self) -> Vec<Shape> {
        match self {
            Shape::Interval(_) => vec![self.clone()],
            Shape::Tuple(ss) => ss.clone(),
        }
    }

    /// Whether `coord` is a legal coordinate of this shape.
    pub fn contains(&self, coord: &Coord) -> bool {
        match (self, coord) {
            (Shape::Interval(n), Coord::Point(p)) => p < n,
            (Shape::Tuple(ss), Coord::Tuple(cs)) => {
                ss.len() == cs.len() && ss.iter().zip(cs).all(|(s, c)| s.contains(c))
            }
            _ => false,
        }
    }
}

impl From<u64> for Shape {
    fn from(n: u64) -> Self {
        Shape::Interval(n)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Interval(n) => write!(f, "{n}"),
            Shape::Tuple(ss) => {
                write!(f, "(")?;
                for (i, s) in ss.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ordering_is_numeric() {
        assert!(Coord::Point(1) < Coord::Point(2));
        assert_eq!(Coord::Point(5), Coord::from(5));
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        // Mirrors Fig. 2: (0,2) < (2,0) < (2,1) < (2,2).
        let order = [
            Coord::pair(0, 2),
            Coord::pair(2, 0),
            Coord::pair(2, 1),
            Coord::pair(2, 2),
        ];
        for w in order.windows(2) {
            assert!(w[0] < w[1], "{} should precede {}", w[0], w[1]);
        }
    }

    #[test]
    fn flattening_is_associative() {
        let a = Coord::Point(1);
        let b = Coord::Point(2);
        let c = Coord::Point(3);
        let left = a.flattened_with(&b).flattened_with(&c);
        let right = a.flattened_with(&b.flattened_with(&c));
        assert_eq!(left, right);
        assert_eq!(left.arity(), 3);
    }

    #[test]
    fn split_first_inverts_pair() {
        let c = Coord::pair(4, 7);
        let (first, rest) = c.split_first().expect("tuple splits");
        assert_eq!(first, Coord::Point(4));
        assert_eq!(rest, Coord::Point(7));
        assert!(Coord::Point(3).split_first().is_none());
    }

    #[test]
    fn shape_extent_and_containment() {
        let s = Shape::Interval(4).flattened_with(&Shape::Interval(3));
        assert_eq!(s.extent(), 12);
        assert!(s.contains(&Coord::pair(3, 2)));
        assert!(!s.contains(&Coord::pair(4, 0)));
        assert!(!s.contains(&Coord::Point(1)));
    }

    #[test]
    fn display_roundtrips_visually() {
        assert_eq!(Coord::pair(1, 2).to_string(), "(1, 2)");
        assert_eq!(Shape::Interval(9).to_string(), "9");
    }
}
