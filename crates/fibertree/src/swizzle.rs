//! Rank swizzling: reordering the levels of a fibertree (paper §3.2.2).
//!
//! Swizzles capture transposition (CSR→CSC), sorting, and merging: the
//! content (set of leaf values and their points) is unchanged, but the
//! coordinate system — and therefore the traversal order — changes.

use std::collections::BTreeMap;

use crate::builder::CompressedBuilder;
use crate::compressed::CompressedTensor;
use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;

/// Computes the permutation mapping new rank positions to old ones.
///
/// # Errors
///
/// Returns [`FibertreeError::BadPermutation`] if `order` is not a
/// permutation of `rank_ids`.
pub fn permutation_of(rank_ids: &[String], order: &[&str]) -> Result<Vec<usize>, FibertreeError> {
    let bad = || FibertreeError::BadPermutation {
        requested: order.iter().map(|s| s.to_string()).collect(),
        have: rank_ids.to_vec(),
    };
    if order.len() != rank_ids.len() {
        return Err(bad());
    }
    let mut perm = Vec::with_capacity(order.len());
    for r in order {
        let idx = rank_ids.iter().position(|x| x == r).ok_or_else(bad)?;
        if perm.contains(&idx) {
            return Err(bad());
        }
        perm.push(idx);
    }
    Ok(perm)
}

impl Tensor {
    /// Returns a tensor with the same content and the given rank order.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::BadPermutation`] if `order` is not a
    /// permutation of this tensor's rank ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use teaal_fibertree::tensor::fig1_matrix_a;
    /// let a = fig1_matrix_a(); // [M, K]
    /// let at = a.swizzle(&["K", "M"]).unwrap();
    /// assert_eq!(at.get(&[2, 0]), a.get(&[0, 2]));
    /// assert_eq!(at.nnz(), a.nnz());
    /// ```
    pub fn swizzle(&self, order: &[&str]) -> Result<Tensor, FibertreeError> {
        let perm = self.permutation_for(order)?;
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return Ok(self.clone());
        }
        let shapes: Vec<Shape> = perm
            .iter()
            .map(|&p| self.rank_shapes()[p].clone())
            .collect();
        let entries: Vec<(Vec<Coord>, f64)> = self
            .leaves()
            .into_iter()
            .map(|(path, v)| {
                let newp: Vec<Coord> = perm.iter().map(|&p| path[p].clone()).collect();
                (newp, v)
            })
            .collect();
        Ok(from_coord_entries(
            self.name(),
            order.iter().map(|s| s.to_string()).collect(),
            shapes,
            entries,
        ))
    }

    /// Computes the permutation mapping new rank positions to old ones.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::BadPermutation`] if `order` is not a
    /// permutation of the tensor's rank ids.
    pub fn permutation_for(&self, order: &[&str]) -> Result<Vec<usize>, FibertreeError> {
        permutation_of(self.rank_ids(), order)
    }
}

impl CompressedTensor {
    /// Returns a compressed tensor with the same content and the given
    /// rank order — the compressed-native counterpart of
    /// [`Tensor::swizzle`], and bit-identical to compressing its result.
    ///
    /// Runs entirely on the flat arrays: one pass gathers each leaf's
    /// coordinate path with the permutation applied, a sort re-orders the
    /// keys, and a [`CompressedBuilder`] appends the sorted stream — no
    /// owned tree is ever materialized.
    ///
    /// Pure transposes that pull one rank to the front while keeping the
    /// rest in order (CSR→CSC and its higher-rank analogues — every
    /// permutation of the form `[j, 0, 1, …, ĵ, …, n-1]`) skip the
    /// `O(nnz log nnz)` comparison sort: the gathered leaves are already
    /// in the old lexicographic order, so a stable counting bucket-sort
    /// keyed on the new leading coordinate alone fully sorts them (ties
    /// on the leading coordinate compare by the remaining slots, whose
    /// relative old order is exactly the new order — stability preserves
    /// it). The counting array is only used when the leading coordinate
    /// range is within `4·nnz + 4096`, so degenerate shapes fall back to
    /// the comparison sort rather than allocating a huge histogram.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::BadPermutation`] if `order` is not a
    /// permutation of this tensor's rank ids.
    pub fn swizzle(&self, order: &[&str]) -> Result<CompressedTensor, FibertreeError> {
        let perm = permutation_of(self.rank_ids(), order)?;
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return Ok(self.clone());
        }
        let shapes: Vec<Shape> = perm
            .iter()
            .map(|&p| self.rank_shapes()[p].clone())
            .collect();
        // Gather every nonzero leaf as its permuted raw key (mirroring
        // Tensor::swizzle, which rebuilds from `leaves()` and therefore
        // drops explicit zeros). Keys live in one flat buffer, `order`
        // slots per leaf, and an index sort avoids a per-leaf allocation.
        let n = self.order();
        let mut keys: Vec<(u64, u64)> = Vec::with_capacity(n * self.nnz());
        let mut vals: Vec<f64> = Vec::with_capacity(self.nnz());
        let mut path = vec![(0u64, 0u64); n];
        self.gather_raw(
            0,
            0,
            self.level_len(0),
            &perm,
            &mut path,
            &mut keys,
            &mut vals,
        );
        let idx = sort_permuted_keys(&keys, vals.len(), n, &perm, &shapes);
        let mut b = CompressedBuilder::new(
            self.name(),
            order.iter().map(|s| s.to_string()).collect(),
            shapes,
        )?;
        for &i in &idx {
            b.push_raw(&keys[i * n..(i + 1) * n], vals[i])?;
        }
        Ok(b.finish())
    }

    #[allow(clippy::too_many_arguments)] // internal recursion carrying cursors
    fn gather_raw(
        &self,
        level: usize,
        start: usize,
        end: usize,
        perm: &[usize],
        path: &mut [(u64, u64)],
        keys: &mut Vec<(u64, u64)>,
        vals: &mut Vec<f64>,
    ) {
        let leaf = level + 1 == self.order();
        for p in start..end {
            path[level] = self.raw_at(level, p);
            if leaf {
                let v = self.value_at(p);
                if v != 0.0 {
                    keys.extend(perm.iter().map(|&i| path[i]));
                    vals.push(v);
                }
            } else {
                let (cs, ce) = self.child_range(level, p);
                self.gather_raw(level + 1, cs, ce, perm, path, keys, vals);
            }
        }
    }
}

/// Orders the gathered (already permuted) raw keys: returns the index
/// permutation that sorts `keys` lexicographically.
///
/// `keys` holds `nnz` keys of `n` slots each, gathered in the *old*
/// lexicographic order. When the permutation pulls one point rank to the
/// front and keeps the rest in order, a stable counting bucket-sort on
/// the new leading coordinate is a full sort in `O(nnz + max_coord)`;
/// otherwise a comparison sort on the whole key runs.
fn sort_permuted_keys(
    keys: &[(u64, u64)],
    nnz: usize,
    n: usize,
    perm: &[usize],
    shapes: &[Shape],
) -> Vec<usize> {
    let pull_to_front = !perm.is_empty()
        && perm[1..]
            .iter()
            .copied()
            .eq((0..n).filter(|&i| i != perm[0]));
    let leading_is_point = shapes
        .first()
        .is_some_and(|s| !matches!(s, Shape::Tuple(_)));
    if pull_to_front && leading_is_point && nnz > 0 {
        let max_lead = (0..nnz).map(|i| keys[i * n].0).max().unwrap_or(0);
        if let Ok(buckets) = usize::try_from(max_lead) {
            if buckets < 4 * nnz + 4096 {
                // Counting sort: histogram, exclusive prefix sum, then a
                // stable scatter of the old-order indices.
                let mut count = vec![0usize; buckets + 2];
                for i in 0..nnz {
                    count[keys[i * n].0 as usize + 1] += 1;
                }
                for b in 1..count.len() {
                    count[b] += count[b - 1];
                }
                let mut idx = vec![0usize; nnz];
                for i in 0..nnz {
                    let b = keys[i * n].0 as usize;
                    idx[count[b]] = i;
                    count[b] += 1;
                }
                return idx;
            }
        }
    }
    let mut idx: Vec<usize> = (0..nnz).collect();
    idx.sort_unstable_by(|&a, &b| keys[a * n..(a + 1) * n].cmp(&keys[b * n..(b + 1) * n]));
    idx
}

/// Rebuilds a tensor from per-leaf coordinate paths (one coordinate per
/// rank, possibly tuples on flattened ranks).
///
/// Entries are sorted and grouped into a tree; duplicate paths keep the last
/// value.
pub fn from_coord_entries(
    name: &str,
    rank_ids: Vec<String>,
    rank_shapes: Vec<Shape>,
    entries: Vec<(Vec<Coord>, f64)>,
) -> Tensor {
    if rank_ids.is_empty() {
        let v = entries.last().map_or(0.0, |(_, v)| *v);
        return Tensor::from_parts(name, rank_ids, rank_shapes, Payload::Val(v));
    }
    let mut sorted: BTreeMap<Vec<Coord>, f64> = BTreeMap::new();
    for (p, v) in entries {
        sorted.insert(p, v);
    }
    let items: Vec<(Vec<Coord>, f64)> = sorted.into_iter().collect();
    let root = build_fiber(&items, 0, &rank_shapes);
    Tensor::from_parts(name, rank_ids, rank_shapes, Payload::Fiber(root))
}

fn build_fiber(items: &[(Vec<Coord>, f64)], depth: usize, shapes: &[Shape]) -> Fiber {
    let mut fiber = Fiber::new(shapes[depth].clone());
    let is_leaf = depth + 1 == shapes.len();
    let mut i = 0usize;
    while i < items.len() {
        let c = items[i].0[depth].clone();
        let mut j = i;
        while j < items.len() && items[j].0[depth] == c {
            j += 1;
        }
        let payload = if is_leaf {
            Payload::Val(items[j - 1].1)
        } else {
            Payload::Fiber(build_fiber(&items[i..j], depth + 1, shapes))
        };
        fiber
            .append(c, payload)
            .expect("grouped coordinates are strictly increasing");
        i = j;
    }
    fiber
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{fig1_matrix_a, TensorBuilder};

    #[test]
    fn swizzle_transposes_fig1_matrix() {
        // Fig. 4: A is swizzled offline to [K, M] for the outer-product
        // multiply phase.
        let a = fig1_matrix_a();
        let at = a.swizzle(&["K", "M"]).unwrap();
        assert_eq!(at.rank_ids(), &["K".to_string(), "M".to_string()]);
        // K fiber now has coordinates {0, 1, 2}.
        let root = at.root_fiber().unwrap();
        let ks: Vec<u64> = root.iter().map(|e| e.coord.as_point().unwrap()).collect();
        assert_eq!(ks, vec![0, 1, 2]);
        assert_eq!(at.get(&[2, 0]), Some(3.0));
        assert_eq!(at.get(&[0, 2]), Some(9.0));
    }

    #[test]
    fn swizzle_is_content_preserving() {
        let a = fig1_matrix_a();
        let back = a
            .swizzle(&["K", "M"])
            .unwrap()
            .swizzle(&["M", "K"])
            .unwrap();
        assert_eq!(back.max_abs_diff(&a), 0.0);
        assert_eq!(back.rank_shapes(), a.rank_shapes());
    }

    #[test]
    fn identity_swizzle_is_cheap_clone() {
        let a = fig1_matrix_a();
        let same = a.swizzle(&["M", "K"]).unwrap();
        assert_eq!(same, a);
    }

    #[test]
    fn bad_permutations_are_rejected() {
        let a = fig1_matrix_a();
        assert!(a.swizzle(&["M"]).is_err());
        assert!(a.swizzle(&["M", "M"]).is_err());
        assert!(a.swizzle(&["M", "Q"]).is_err());
    }

    #[test]
    fn three_rank_swizzle_permutes_points() {
        let t = TensorBuilder::new("T", &["M", "K", "N"], &[4, 4, 4])
            .entry(&[1, 2, 3], 5.0)
            .entry(&[0, 1, 2], 7.0)
            .build()
            .unwrap();
        let s = t.swizzle(&["N", "M", "K"]).unwrap();
        assert_eq!(s.get(&[3, 1, 2]), Some(5.0));
        assert_eq!(s.get(&[2, 0, 1]), Some(7.0));
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn from_coord_entries_builds_sorted_tree() {
        let t = from_coord_entries(
            "X",
            vec!["I".into(), "J".into()],
            vec![Shape::Interval(4), Shape::Interval(4)],
            vec![
                (vec![Coord::Point(3), Coord::Point(0)], 1.0),
                (vec![Coord::Point(0), Coord::Point(2)], 2.0),
                (vec![Coord::Point(0), Coord::Point(1)], 3.0),
            ],
        );
        assert_eq!(t.get(&[0, 1]), Some(3.0));
        assert_eq!(t.get(&[0, 2]), Some(2.0));
        assert_eq!(t.get(&[3, 0]), Some(1.0));
    }
}
