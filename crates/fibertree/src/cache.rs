//! Content-addressed cache of transformed tensor views.
//!
//! The simulator's engine runs a per-tensor transform chain (offline
//! swizzle, then partition/flatten/swizzle steps) before every loop-nest
//! walk. Within a mapping search or a batch of evaluation requests the
//! same `(tensor, chain)` pair recurs constantly — every engine-verified
//! candidate re-transforms the same inputs. A [`TransformCache`] keys the
//! finished view by a caller-computed content hash
//! ([`TensorData::content_hash`] combined with a canonical description of
//! the chain) and hands back shared [`Arc`] views, so a warm cache
//! performs **zero** redundant transforms
//! ([`telemetry::transform_exec_count`] stays flat).
//!
//! A transform chain is not a pure tensor→tensor function: online
//! swizzles record merge work and occupancy-split leaders publish
//! partition boundaries for their followers. A [`TransformedView`]
//! therefore carries those side effects as data ([`MergeRecord`],
//! [`BoundaryRecord`]); on a cache hit the engine *replays* them, keeping
//! instruments and boundary caches bit-identical to a cold run.
//!
//! Thread safety: the map sits behind a [`Mutex`]; two threads racing the
//! same cold key may both build (both count as misses) and the first
//! insert wins — correctness never depends on single-build, because every
//! build of the same key produces the same view.
//!
//! # Bounded residency
//!
//! Long-running processes (batch evaluation, the future `teaal serve`
//! daemon) cannot let content-addressed caches grow without bound. The
//! generic [`ByteLru`] store underneath [`TransformCache`] byte-accounts
//! every resident artifact and evicts least-recently-used entries once a
//! configured capacity is exceeded ([`TransformCache::set_capacity_bytes`]).
//! Eviction never changes results — keys are content hashes, so a
//! re-miss rebuilds the exact same artifact (pinned bit-identical by the
//! robustness suite) — it only trades recompute time for memory.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::coord::Coord;
use crate::telemetry;
use crate::telemetry::CacheStats;
use crate::view::TensorData;

/// A thread-safe, byte-accounted LRU map from 64-bit content hashes to
/// shared [`Arc`] values.
///
/// Unbounded by default (`capacity = u64::MAX`); give it a budget with
/// [`ByteLru::set_capacity_bytes`] and it evicts least-recently-used
/// entries until resident bytes fit. Lookups refresh recency. Sizes are
/// caller-supplied estimates, so an entry larger than the whole
/// capacity is admitted and then evicted on the next insert — callers
/// always get their `Arc` back regardless.
///
/// Optionally wired to a process-wide [`CacheStats`] registry entry so
/// evictions show up in `--cache-stats`; hit/miss telemetry stays with
/// the caller, which knows build cost.
#[derive(Debug)]
pub struct ByteLru<V> {
    inner: Mutex<LruInner<V>>,
    evictions: AtomicU64,
    stats: Option<&'static CacheStats>,
}

#[derive(Debug)]
struct LruInner<V> {
    /// `key → (value, recency stamp, byte estimate)`.
    map: HashMap<u64, (Arc<V>, u64, u64)>,
    /// `recency stamp → key`, oldest first.
    order: BTreeMap<u64, u64>,
    clock: u64,
    resident: u64,
    capacity: u64,
}

impl<V> Default for ByteLru<V> {
    fn default() -> Self {
        ByteLru::new()
    }
}

impl<V> ByteLru<V> {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        ByteLru {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                resident: 0,
                capacity: u64::MAX,
            }),
            evictions: AtomicU64::new(0),
            stats: None,
        }
    }

    /// Same, but evictions are also recorded in the given process-wide
    /// registry entry (which must outlive the store — use the
    /// [`telemetry`] statics).
    pub fn with_stats(stats: &'static CacheStats) -> Self {
        ByteLru {
            stats: Some(stats),
            ..ByteLru::new()
        }
    }

    /// Sets the resident-byte budget, evicting immediately if the store
    /// is already over it. `u64::MAX` (the default) means unbounded.
    pub fn set_capacity_bytes(&self, capacity: u64) {
        let mut inner = self.inner.lock().expect("lru poisoned");
        inner.capacity = capacity;
        self.evict_to_fit(&mut inner);
    }

    /// The current resident-byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.lock().expect("lru poisoned").capacity
    }

    /// Returns the value for `key`, refreshing its recency.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("lru poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        let (value, old_stamp) = {
            let (value, entry_stamp, _) = inner.map.get_mut(&key)?;
            let value = Arc::clone(value);
            let old = *entry_stamp;
            *entry_stamp = stamp;
            (value, old)
        };
        inner.order.remove(&old_stamp);
        inner.order.insert(stamp, key);
        Some(value)
    }

    /// Inserts `value` under `key` with the given byte estimate, then
    /// evicts LRU entries until resident bytes fit the capacity.
    ///
    /// If `key` is already present the existing value wins (first-insert
    /// semantics for racing builders) and is returned with refreshed
    /// recency; otherwise the inserted `value` is returned. The returned
    /// `Arc` stays valid even if the entry itself was immediately
    /// evicted for being larger than the whole budget.
    pub fn insert(&self, key: u64, value: Arc<V>, bytes: u64) -> Arc<V> {
        let mut inner = self.inner.lock().expect("lru poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if inner.map.contains_key(&key) {
            let (existing, old_stamp) = {
                let (v, entry_stamp, _) = inner.map.get_mut(&key).expect("key just checked");
                let v = Arc::clone(v);
                let old = *entry_stamp;
                *entry_stamp = stamp;
                (v, old)
            };
            inner.order.remove(&old_stamp);
            inner.order.insert(stamp, key);
            return existing;
        }
        inner.map.insert(key, (Arc::clone(&value), stamp, bytes));
        inner.order.insert(stamp, key);
        inner.resident += bytes;
        self.evict_to_fit(&mut inner);
        value
    }

    fn evict_to_fit(&self, inner: &mut LruInner<V>) {
        while inner.resident > inner.capacity {
            let Some((&stamp, &key)) = inner.order.iter().next() else {
                break;
            };
            inner.order.remove(&stamp);
            let (_, _, bytes) = inner.map.remove(&key).expect("order and map agree");
            inner.resident = inner.resident.saturating_sub(bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(stats) = self.stats {
                stats.eviction(bytes);
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("lru poisoned").map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("lru poisoned").resident
    }

    /// Entries evicted by this instance so far (monotonic).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// One merge-group side effect of an online swizzle, replayed into the
/// simulator's instruments on a cache hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeRecord {
    /// Tensor being reordered.
    pub tensor: String,
    /// Elements flowing through the merger.
    pub elems: u64,
    /// Number of sorted lists merged together (fan-in).
    pub ways: u64,
}

/// One boundary publication of an occupancy-split leader, replayed into
/// the engine's boundary cache on a hit so follower tensors transformed
/// later still resolve their leader's splits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryRecord {
    /// The partitioned rank.
    pub rank: String,
    /// The leader tensor's name.
    pub leader: String,
    /// Per-path split boundaries, exactly as the leader computed them.
    pub bounds: BTreeMap<Vec<Coord>, Vec<Coord>>,
}

/// A fully transformed input view: the tensor after its whole chain ran,
/// plus the chain's replayable side effects in execution order.
#[derive(Clone, Debug)]
pub struct TransformedView {
    /// The transformed tensor (owned or compressed, whatever the chain
    /// produced).
    pub tensor: TensorData,
    /// Merge groups recorded while the chain ran.
    pub merges: Vec<MergeRecord>,
    /// Boundary lists published while the chain ran.
    pub boundaries: Vec<BoundaryRecord>,
}

impl TransformedView {
    /// Rough resident size: CSF-ish accounting of the tensor (one value
    /// plus one coordinate word per rank per leaf) — good enough for the
    /// telemetry byte counters, not allocator-exact.
    pub fn approx_bytes(&self) -> u64 {
        let t = &self.tensor;
        (t.nnz() as u64) * (8 + 8 * t.order() as u64)
    }
}

/// Content-addressed store of [`TransformedView`]s behind shared
/// [`Arc`]s.
///
/// Keys are caller-computed 64-bit content hashes (tensor content +
/// canonical chain description); the cache itself is key-agnostic.
/// Instance counters ([`TransformCache::hits`] /
/// [`TransformCache::misses`]) serve per-context assertions that are
/// immune to unrelated concurrent work, while every lookup also feeds
/// the process-wide [`telemetry::transform_cache_stats`] registry.
#[derive(Debug)]
pub struct TransformCache {
    inner: ByteLru<TransformedView>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for TransformCache {
    fn default() -> Self {
        TransformCache::new()
    }
}

impl TransformCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        TransformCache {
            inner: ByteLru::with_stats(telemetry::transform_cache_stats()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Bounds resident view bytes; least-recently-used views are
    /// evicted to fit. Eviction only trades recompute for memory — a
    /// later lookup of an evicted key rebuilds the identical view.
    pub fn set_capacity_bytes(&self, capacity: u64) {
        self.inner.set_capacity_bytes(capacity);
    }

    /// Views evicted under the capacity bound so far (monotonic).
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Estimated bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    /// Returns the view for `key`, building and inserting it on a miss.
    ///
    /// The builder runs outside the lock (transforms are the expensive
    /// part); a concurrent builder of the same key may win the insert, in
    /// which case the already-inserted view is returned and this build's
    /// result dropped — both are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; nothing is inserted or counted as
    /// a miss-with-bytes beyond the attempt.
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<TransformedView, E>,
    ) -> Result<Arc<TransformedView>, E> {
        if let Some(hit) = self.inner.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::transform_cache_stats().hit();
            return Ok(hit);
        }
        let view = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = view.approx_bytes();
        telemetry::transform_cache_stats().miss(bytes);
        Ok(self.inner.insert(key, view, bytes))
    }

    /// Number of distinct transformed views resident.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups this instance answered from cache (monotonic).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups this instance had to build (monotonic). A warm run's
    /// delta of zero is the "no redundant transforms" proof local to one
    /// evaluation context.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorBuilder;

    fn view(tag: f64) -> TransformedView {
        let t = TensorBuilder::new("T", &["I"], &[8])
            .entry(&[1], tag)
            .build()
            .unwrap();
        TransformedView {
            tensor: TensorData::Owned(t),
            merges: vec![MergeRecord {
                tensor: "T".into(),
                elems: 4,
                ways: 2,
            }],
            boundaries: Vec::new(),
        }
    }

    #[test]
    fn second_lookup_shares_the_first_build() {
        let cache = TransformCache::new();
        let a = cache.get_or_build::<()>(42, || Ok(view(1.0))).unwrap();
        let b = cache
            .get_or_build::<()>(42, || panic!("warm key must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(b.merges[0].ways, 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TransformCache::new();
        let a = cache.get_or_build::<()>(1, || Ok(view(1.0))).unwrap();
        let b = cache.get_or_build::<()>(2, || Ok(view(2.0))).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn builder_errors_propagate_and_insert_nothing() {
        let cache = TransformCache::new();
        let err = cache.get_or_build(7, || Err::<TransformedView, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        // The key stays buildable afterwards.
        assert!(cache.get_or_build::<()>(7, || Ok(view(3.0))).is_ok());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let lru: ByteLru<u64> = ByteLru::new();
        lru.set_capacity_bytes(30);
        lru.insert(1, Arc::new(10), 10);
        lru.insert(2, Arc::new(20), 10);
        lru.insert(3, Arc::new(30), 10);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(*lru.get(1).unwrap(), 10);
        lru.insert(4, Arc::new(40), 10);
        assert_eq!(lru.get(2), None, "LRU entry evicted");
        assert!(lru.get(1).is_some() && lru.get(3).is_some() && lru.get(4).is_some());
        assert_eq!((lru.evictions(), lru.resident_bytes()), (1, 30));
    }

    #[test]
    fn lru_admits_and_returns_oversized_entries() {
        let lru: ByteLru<&str> = ByteLru::new();
        lru.set_capacity_bytes(5);
        let v = lru.insert(7, Arc::new("big"), 100);
        assert_eq!(*v, "big", "caller still gets the Arc back");
        assert!(lru.is_empty(), "oversized entry evicted immediately");
        assert_eq!(lru.resident_bytes(), 0);
    }

    #[test]
    fn lru_shrinking_capacity_evicts_immediately() {
        let lru: ByteLru<u64> = ByteLru::new();
        lru.insert(1, Arc::new(1), 40);
        lru.insert(2, Arc::new(2), 40);
        assert_eq!(lru.resident_bytes(), 80);
        lru.set_capacity_bytes(50);
        assert_eq!(lru.len(), 1);
        assert!(lru.get(2).is_some(), "most recent entry survives");
    }

    #[test]
    fn lru_racing_insert_keeps_first_value() {
        let lru: ByteLru<u64> = ByteLru::new();
        let a = lru.insert(9, Arc::new(1), 8);
        let b = lru.insert(9, Arc::new(2), 8);
        assert!(Arc::ptr_eq(&a, &b), "first insert wins");
        assert_eq!(lru.resident_bytes(), 8, "loser's bytes not double-counted");
    }

    #[test]
    fn bounded_transform_cache_rebuilds_evicted_views_identically() {
        let cache = TransformCache::new();
        // Each view is 1 nnz × 1 rank ⇒ 16 bytes; cap fits one.
        cache.set_capacity_bytes(30);
        let a = cache.get_or_build::<()>(1, || Ok(view(1.0))).unwrap();
        let _ = cache.get_or_build::<()>(2, || Ok(view(2.0))).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        // Key 1 was evicted: rebuilding yields a bit-identical view.
        let rebuilt = cache.get_or_build::<()>(1, || Ok(view(1.0))).unwrap();
        assert!(!Arc::ptr_eq(&a, &rebuilt));
        assert_eq!(a.tensor.content_hash(), rebuilt.tensor.content_hash());
        assert_eq!(a.merges, rebuilt.merges);
        assert_eq!(cache.misses(), 3, "eviction re-miss is counted");
    }

    #[test]
    fn executed_transform_counter_is_caller_driven() {
        // The cache itself never bumps the execution counter — only the
        // engine does, and only when a chain really runs.
        let before = telemetry::transform_exec_count();
        let cache = TransformCache::new();
        let _ = cache.get_or_build::<()>(9, || Ok(view(1.0)));
        let _ = cache.get_or_build::<()>(9, || Ok(view(1.0)));
        assert_eq!(telemetry::transform_exec_count(), before);
    }
}
