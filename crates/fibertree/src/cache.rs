//! Content-addressed cache of transformed tensor views.
//!
//! The simulator's engine runs a per-tensor transform chain (offline
//! swizzle, then partition/flatten/swizzle steps) before every loop-nest
//! walk. Within a mapping search or a batch of evaluation requests the
//! same `(tensor, chain)` pair recurs constantly — every engine-verified
//! candidate re-transforms the same inputs. A [`TransformCache`] keys the
//! finished view by a caller-computed content hash
//! ([`TensorData::content_hash`] combined with a canonical description of
//! the chain) and hands back shared [`Arc`] views, so a warm cache
//! performs **zero** redundant transforms
//! ([`telemetry::transform_exec_count`] stays flat).
//!
//! A transform chain is not a pure tensor→tensor function: online
//! swizzles record merge work and occupancy-split leaders publish
//! partition boundaries for their followers. A [`TransformedView`]
//! therefore carries those side effects as data ([`MergeRecord`],
//! [`BoundaryRecord`]); on a cache hit the engine *replays* them, keeping
//! instruments and boundary caches bit-identical to a cold run.
//!
//! Thread safety: the map sits behind a [`Mutex`]; two threads racing the
//! same cold key may both build (both count as misses) and the first
//! insert wins — correctness never depends on single-build, because every
//! build of the same key produces the same view.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::coord::Coord;
use crate::telemetry;
use crate::view::TensorData;

/// One merge-group side effect of an online swizzle, replayed into the
/// simulator's instruments on a cache hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeRecord {
    /// Tensor being reordered.
    pub tensor: String,
    /// Elements flowing through the merger.
    pub elems: u64,
    /// Number of sorted lists merged together (fan-in).
    pub ways: u64,
}

/// One boundary publication of an occupancy-split leader, replayed into
/// the engine's boundary cache on a hit so follower tensors transformed
/// later still resolve their leader's splits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryRecord {
    /// The partitioned rank.
    pub rank: String,
    /// The leader tensor's name.
    pub leader: String,
    /// Per-path split boundaries, exactly as the leader computed them.
    pub bounds: BTreeMap<Vec<Coord>, Vec<Coord>>,
}

/// A fully transformed input view: the tensor after its whole chain ran,
/// plus the chain's replayable side effects in execution order.
#[derive(Clone, Debug)]
pub struct TransformedView {
    /// The transformed tensor (owned or compressed, whatever the chain
    /// produced).
    pub tensor: TensorData,
    /// Merge groups recorded while the chain ran.
    pub merges: Vec<MergeRecord>,
    /// Boundary lists published while the chain ran.
    pub boundaries: Vec<BoundaryRecord>,
}

impl TransformedView {
    /// Rough resident size: CSF-ish accounting of the tensor (one value
    /// plus one coordinate word per rank per leaf) — good enough for the
    /// telemetry byte counters, not allocator-exact.
    pub fn approx_bytes(&self) -> u64 {
        let t = &self.tensor;
        (t.nnz() as u64) * (8 + 8 * t.order() as u64)
    }
}

/// Content-addressed store of [`TransformedView`]s behind shared
/// [`Arc`]s.
///
/// Keys are caller-computed 64-bit content hashes (tensor content +
/// canonical chain description); the cache itself is key-agnostic.
/// Instance counters ([`TransformCache::hits`] /
/// [`TransformCache::misses`]) serve per-context assertions that are
/// immune to unrelated concurrent work, while every lookup also feeds
/// the process-wide [`telemetry::transform_cache_stats`] registry.
#[derive(Debug, Default)]
pub struct TransformCache {
    inner: Mutex<HashMap<u64, Arc<TransformedView>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TransformCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TransformCache::default()
    }

    /// Returns the view for `key`, building and inserting it on a miss.
    ///
    /// The builder runs outside the lock (transforms are the expensive
    /// part); a concurrent builder of the same key may win the insert, in
    /// which case the already-inserted view is returned and this build's
    /// result dropped — both are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; nothing is inserted or counted as
    /// a miss-with-bytes beyond the attempt.
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<TransformedView, E>,
    ) -> Result<Arc<TransformedView>, E> {
        if let Some(hit) = self
            .inner
            .lock()
            .expect("transform cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::transform_cache_stats().hit();
            return Ok(Arc::clone(hit));
        }
        let view = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::transform_cache_stats().miss(view.approx_bytes());
        Ok(self
            .inner
            .lock()
            .expect("transform cache poisoned")
            .entry(key)
            .or_insert(view)
            .clone())
    }

    /// Number of distinct transformed views cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("transform cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups this instance answered from cache (monotonic).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups this instance had to build (monotonic). A warm run's
    /// delta of zero is the "no redundant transforms" proof local to one
    /// evaluation context.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorBuilder;

    fn view(tag: f64) -> TransformedView {
        let t = TensorBuilder::new("T", &["I"], &[8])
            .entry(&[1], tag)
            .build()
            .unwrap();
        TransformedView {
            tensor: TensorData::Owned(t),
            merges: vec![MergeRecord {
                tensor: "T".into(),
                elems: 4,
                ways: 2,
            }],
            boundaries: Vec::new(),
        }
    }

    #[test]
    fn second_lookup_shares_the_first_build() {
        let cache = TransformCache::new();
        let a = cache.get_or_build::<()>(42, || Ok(view(1.0))).unwrap();
        let b = cache
            .get_or_build::<()>(42, || panic!("warm key must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(b.merges[0].ways, 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TransformCache::new();
        let a = cache.get_or_build::<()>(1, || Ok(view(1.0))).unwrap();
        let b = cache.get_or_build::<()>(2, || Ok(view(2.0))).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn builder_errors_propagate_and_insert_nothing() {
        let cache = TransformCache::new();
        let err = cache.get_or_build(7, || Err::<TransformedView, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        // The key stays buildable afterwards.
        assert!(cache.get_or_build::<()>(7, || Ok(view(3.0))).is_ok());
    }

    #[test]
    fn executed_transform_counter_is_caller_driven() {
        // The cache itself never bumps the execution counter — only the
        // engine does, and only when a chain really runs.
        let before = telemetry::transform_exec_count();
        let cache = TransformCache::new();
        let _ = cache.get_or_build::<()>(9, || Ok(view(1.0)));
        let _ = cache.get_or_build::<()>(9, || Ok(view(1.0)));
        assert_eq!(telemetry::transform_exec_count(), before);
    }
}
