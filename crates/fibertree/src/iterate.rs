//! Co-iteration over fibers: streaming intersection, union, and
//! projection lookup.
//!
//! Sparse accelerators "sparsify" the iteration space (paper §2.4) by
//! co-iterating the operands of each loop rank. Multiplicative operands are
//! *intersected* (a point contributes only when all operands are present);
//! additive operands are *unioned*. The hardware that performs intersection
//! varies across designs, so the [`IntersectPolicy`] models the three unit
//! types of Table 3 — two-finger, leader-follower, and skip-ahead — and
//! reports the number of coordinate comparisons ("work") each would spend.
//!
//! Co-iteration is a *streaming dataflow of coordinate cursors* (in the
//! spirit of the Sparse Abstract Machine): [`intersect2_stream`],
//! [`intersect_stream`], and [`union_stream`] are lazy iterators over
//! [`FiberView`] cursors that emit one match at a time, never
//! materializing a match list. The matching eager functions
//! ([`intersect2`], [`intersect_many`], [`union_many`]) are thin wrappers
//! that drain a stream into a `Vec` — convenient for tests and small
//! fibers, while the simulator's engine consumes the streams directly.
//! Both report identical [`CoIterStats`].

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::fiber::Fiber;
use crate::view::{CoordKey, FiberView, PayloadView};

/// The intersection unit type (Table 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum IntersectPolicy {
    /// Classic merge: two pointers advance one coordinate at a time.
    #[default]
    TwoFinger,
    /// The leader's coordinates are looked up in the followers; work is
    /// proportional to the leader's occupancy. `leader` is the operand
    /// index.
    LeaderFollower {
        /// Index of the leading operand.
        leader: usize,
    },
    /// Galloping/skip-ahead: pointers advance by exponentially probing,
    /// modelling ExTensor-style skip-ahead intersection.
    SkipAhead,
}

/// Result of co-iterating fibers: the work metric charged to the
/// intersection unit plus the number of emitted coordinates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoIterStats {
    /// Number of coordinate comparisons performed by the modelled unit.
    pub comparisons: u64,
    /// Number of coordinates emitted (i.e. matches for intersection).
    pub matches: u64,
}

// ---------------------------------------------------------------------------
// Two-input intersection.
// ---------------------------------------------------------------------------

/// Lazy two-input intersection over fiber cursors.
///
/// Yields `(coord, position in a, position in b)` one match at a time.
/// Comparisons accrue as the stream advances; [`Intersect2Stream::stats`]
/// is complete once the stream is drained.
#[derive(Clone, Debug)]
pub struct Intersect2Stream<'a> {
    a: FiberView<'a>,
    b: FiberView<'a>,
    i: usize,
    j: usize,
    policy: IntersectPolicy,
    stats: CoIterStats,
}

/// Starts a lazy intersection of two fiber cursors under `policy`.
///
/// Comparison charging per policy:
///
/// - two-finger: one comparison per pointer advance (≈ `|a| + |b|` worst
///   case, less when one side exhausts early),
/// - leader-follower: one probe per leader element,
/// - skip-ahead: galloping probes, `O(matches · log(skip))`.
pub fn intersect2_stream<'a>(
    a: FiberView<'a>,
    b: FiberView<'a>,
    policy: IntersectPolicy,
) -> Intersect2Stream<'a> {
    Intersect2Stream {
        a,
        b,
        i: 0,
        j: 0,
        policy,
        stats: CoIterStats::default(),
    }
}

impl Intersect2Stream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        self.stats.clone()
    }
}

impl Iterator for Intersect2Stream<'_> {
    type Item = (Coord, usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        match self.policy {
            IntersectPolicy::TwoFinger => self.next_two_finger(),
            IntersectPolicy::LeaderFollower { leader } => self.next_leader(leader == 1),
            IntersectPolicy::SkipAhead => self.next_skip_ahead(),
        }
    }
}

impl Intersect2Stream<'_> {
    fn next_two_finger(&mut self) -> Option<(Coord, usize, usize)> {
        while self.i < self.a.occupancy() && self.j < self.b.occupancy() {
            self.stats.comparisons += 1;
            let ka = self.a.coord_key_at(self.i);
            match ka.cmp_key(&self.b.coord_key_at(self.j)) {
                std::cmp::Ordering::Equal => {
                    let out = (ka.to_coord(), self.i, self.j);
                    self.stats.matches += 1;
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
            }
        }
        None
    }

    /// Leader-follower: the stream walks the leader (`a` unless `swap`)
    /// and probes the follower, charging one comparison per leader
    /// element. Output positions stay `(pos in a, pos in b)`.
    fn next_leader(&mut self, swap: bool) -> Option<(Coord, usize, usize)> {
        let (lead, follow) = if swap {
            (self.b, self.a)
        } else {
            (self.a, self.b)
        };
        while self.i < lead.occupancy() {
            self.stats.comparisons += 1;
            let key = lead.coord_key_at(self.i);
            let pl = self.i;
            self.i += 1;
            if let Some(pf) = follow.position_of_key(&key) {
                self.stats.matches += 1;
                let out = if swap { (pf, pl) } else { (pl, pf) };
                return Some((key.to_coord(), out.0, out.1));
            }
        }
        None
    }

    fn next_skip_ahead(&mut self) -> Option<(Coord, usize, usize)> {
        while self.i < self.a.occupancy() && self.j < self.b.occupancy() {
            self.stats.comparisons += 1;
            let ka = self.a.coord_key_at(self.i);
            let kb = self.b.coord_key_at(self.j);
            match ka.cmp_key(&kb) {
                std::cmp::Ordering::Equal => {
                    let out = (ka.to_coord(), self.i, self.j);
                    self.stats.matches += 1;
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
                std::cmp::Ordering::Less => {
                    let hint = skew_step(self.a.occupancy() - self.i, self.b.occupancy() - self.j);
                    let (ni, probes) = gallop(&self.a, self.i, &kb, hint);
                    self.stats.comparisons += probes;
                    self.i = ni;
                }
                std::cmp::Ordering::Greater => {
                    let hint = skew_step(self.b.occupancy() - self.j, self.a.occupancy() - self.i);
                    let (nj, probes) = gallop(&self.b, self.j, &ka, hint);
                    self.stats.comparisons += probes;
                    self.j = nj;
                }
            }
        }
        None
    }
}

/// The adaptive gallop seed: when the advancing side has `rem_self`
/// elements left against `rem_other` on the other side, the expected
/// skip distance is their ratio. Balanced inputs degrade to the classic
/// step of 1.
fn skew_step(rem_self: usize, rem_other: usize) -> usize {
    (rem_self / rem_other.max(1)).max(1)
}

/// Intersects two fibers eagerly, returning the positions of each match.
///
/// Each output tuple is `(coord, position in a, position in b)`. This is
/// [`intersect2_stream`] drained into a `Vec`.
pub fn intersect2(
    a: &Fiber,
    b: &Fiber,
    policy: IntersectPolicy,
) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    let mut s = intersect2_stream(FiberView::Owned(a), FiberView::Owned(b), policy);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

/// Gallops forward from `start` to the first position whose coordinate is
/// `>= target`, returning `(position, probes spent)`.
///
/// `first_step` seeds the exponential probe. A skip-ahead unit facing a
/// heavily skewed pair (a long fiber chasing a short one) expects jumps
/// around `|long| / |short|`, so seeding with that ratio reaches the
/// target in `O(log)` probes instead of warming up from 1 every time;
/// `first_step = 1` reproduces the classic gallop.
fn gallop(
    fiber: &FiberView<'_>,
    start: usize,
    target: &CoordKey<'_>,
    first_step: usize,
) -> (usize, u64) {
    let len = fiber.occupancy();
    let mut probes = 0u64;
    let mut step = first_step.max(1);
    let mut lo = start;
    let mut hi = start;
    // Exponential probe.
    while hi < len && fiber.coord_key_at(hi).cmp_key(target).is_lt() {
        probes += 1;
        lo = hi;
        hi = (hi + step).min(len);
        step *= 2;
    }
    // Binary search within (lo, hi].
    let mut left = lo;
    let mut right = hi;
    while left < right {
        probes += 1;
        let mid = (left + right) / 2;
        if fiber.coord_key_at(mid).cmp_key(target).is_lt() {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    (left, probes)
}

// ---------------------------------------------------------------------------
// Multi-input intersection: a lazy cascade of two-input stages.
// ---------------------------------------------------------------------------

/// Lazy multi-input intersection: yields, per matching coordinate, the
/// per-fiber positions.
///
/// Structured as a cascade of two-input stages — fiber 0 feeds stage 1,
/// whose output feeds stage 2, and so on — which is how multi-way
/// intersections are built from two-input units in hardware, and is also
/// exactly how comparisons are charged: each stage counts as if it merged
/// the *complete* output of the previous stage, so the totals equal the
/// eager pairwise composition even though nothing is materialized. (A
/// stage whose own fiber exhausts silently drains its upstream to keep
/// that equivalence.)
#[derive(Debug)]
pub struct IntersectStream<'a> {
    top: ManyNode<'a>,
    matches: u64,
}

#[derive(Debug)]
enum ManyNode<'a> {
    /// Fiber 0: emits every element with its position, charging nothing.
    /// With a `limit`, emission stops (uncharged) at the first coordinate
    /// `>= Point(limit)` — the shard boundary of a bounded stream.
    Source {
        fiber: FiberView<'a>,
        pos: usize,
        limit: Option<u64>,
    },
    /// One two-input unit merging the upstream match stream with a fiber.
    Stage(Box<ManyStage<'a>>),
}

#[derive(Debug)]
struct ManyStage<'a> {
    upstream: ManyNode<'a>,
    fiber: FiberView<'a>,
    j: usize,
    /// Leader-follower mode: probe instead of merge.
    probe: bool,
    comparisons: u64,
    left: Option<(Coord, Vec<usize>)>,
    primed: bool,
    done: bool,
}

impl<'a> ManyNode<'a> {
    fn next(&mut self) -> Option<(Coord, Vec<usize>)> {
        match self {
            ManyNode::Source { fiber, pos, limit } => {
                if *pos >= fiber.occupancy() {
                    return None;
                }
                let key = fiber.coord_key_at(*pos);
                if let Some(h) = limit {
                    if !key.cmp_key(&CoordKey::Point(*h)).is_lt() {
                        return None;
                    }
                }
                let item = (key.to_coord(), vec![*pos]);
                *pos += 1;
                Some(item)
            }
            ManyNode::Stage(s) => s.next(),
        }
    }

    fn comparisons(&self) -> u64 {
        match self {
            ManyNode::Source { .. } => 0,
            ManyNode::Stage(s) => s.comparisons + s.upstream.comparisons(),
        }
    }
}

impl ManyStage<'_> {
    fn next(&mut self) -> Option<(Coord, Vec<usize>)> {
        if self.done {
            return None;
        }
        if !self.primed {
            self.left = self.upstream.next();
            self.primed = true;
        }
        if self.probe {
            // Leader-follower: every upstream match costs one probe of
            // this fiber, whether or not it hits.
            while let Some((c, mut ps)) = self.left.take() {
                self.comparisons += 1;
                let hit = self.fiber.position(&c);
                self.left = self.upstream.next();
                if let Some(pf) = hit {
                    ps.push(pf);
                    return Some((c, ps));
                }
            }
            self.done = true;
            return None;
        }
        // Two-finger merge of the upstream stream against this fiber.
        loop {
            if self.left.is_none() {
                // Upstream exhausted (and, by induction, fully drained).
                self.done = true;
                return None;
            }
            if self.j >= self.fiber.occupancy() {
                // This fiber exhausted: the eager pairwise composition
                // still materializes the full upstream match list, so
                // drain it (charging its comparisons) without emitting.
                while self.upstream.next().is_some() {}
                self.left = None;
                self.done = true;
                return None;
            }
            self.comparisons += 1;
            let cmp = {
                let (c, _) = self.left.as_ref().expect("checked above");
                self.fiber.coord_key_at(self.j).cmp_coord(c).reverse()
            };
            match cmp {
                std::cmp::Ordering::Equal => {
                    let (c, mut ps) = self.left.take().expect("checked above");
                    ps.push(self.j);
                    self.j += 1;
                    self.left = self.upstream.next();
                    return Some((c, ps));
                }
                std::cmp::Ordering::Less => self.left = self.upstream.next(),
                std::cmp::Ordering::Greater => self.j += 1,
            }
        }
    }
}

/// Starts a lazy multi-input intersection of `fibers` under `policy`.
///
/// # Panics
///
/// Panics when `fibers` is empty.
pub fn intersect_stream<'a>(
    fibers: &[FiberView<'a>],
    policy: IntersectPolicy,
) -> IntersectStream<'a> {
    assert!(
        !fibers.is_empty(),
        "intersect_stream needs at least one fiber"
    );
    let mut top = ManyNode::Source {
        fiber: fibers[0],
        pos: 0,
        limit: None,
    };
    for &f in &fibers[1..] {
        top = ManyNode::Stage(Box::new(ManyStage {
            upstream: top,
            fiber: f,
            j: 0,
            probe: matches!(policy, IntersectPolicy::LeaderFollower { .. }),
            comparisons: 0,
            left: None,
            primed: false,
            done: false,
        }));
    }
    IntersectStream { top, matches: 0 }
}

/// Binary search for the first position in `fiber` whose coordinate is
/// `>= Point(c)` (the whole fiber must hold point coordinates).
fn lower_bound_point(fiber: &FiberView<'_>, c: u64) -> usize {
    let target = CoordKey::Point(c);
    let (mut lo, mut hi) = (0usize, fiber.occupancy());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fiber.coord_key_at(mid).cmp_key(&target).is_lt() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Starts a *bounded* lazy intersection emitting only matches whose
/// coordinate lies in `[lo, hi)` — one shard of a partitioned
/// co-iteration.
///
/// Positions stay absolute (identical to the unbounded stream), and the
/// comparison charging is **shard-exact**: running the same intersection
/// over a partition of `[0, ∞)` into consecutive `[lo, hi)` windows and
/// summing the per-shard [`CoIterStats`] reproduces the unbounded totals
/// bit for bit. That holds because the leader starts at the first
/// coordinate `>= lo` and stops uncharged at the first `>= hi`, while the
/// follower cursor is pre-positioned exactly where the sequential merge
/// would have left it after consuming every leader element below `lo`.
///
/// Fibers must hold point coordinates.
///
/// # Panics
///
/// Panics unless `fibers` holds one or two fibers: deeper cascades drain
/// exhausted stages past the window boundary, which would break the
/// charge-partition guarantee.
pub fn intersect_stream_bounded<'a>(
    fibers: &[FiberView<'a>],
    policy: IntersectPolicy,
    lo: u64,
    hi: u64,
) -> IntersectStream<'a> {
    assert!(
        (1..=2).contains(&fibers.len()),
        "bounded intersection is shard-exact for one or two fibers only"
    );
    let start = lower_bound_point(&fibers[0], lo);
    let mut top = ManyNode::Source {
        fiber: fibers[0],
        pos: start,
        limit: Some(hi),
    };
    if let Some(&f) = fibers.get(1) {
        // Where the sequential two-finger merge leaves the follower after
        // consuming every leader element below `lo`: one past the last
        // follower coordinate `<=` the previous leader coordinate.
        let j = if start > 0 {
            let prev = fibers[0]
                .coord_key_at(start - 1)
                .to_coord()
                .as_point()
                .expect("bounded intersection requires point coordinates");
            lower_bound_point(&f, prev.saturating_add(1))
        } else {
            0
        };
        top = ManyNode::Stage(Box::new(ManyStage {
            upstream: top,
            fiber: f,
            j,
            probe: matches!(policy, IntersectPolicy::LeaderFollower { .. }),
            comparisons: 0,
            left: None,
            primed: false,
            done: false,
        }));
    }
    IntersectStream { top, matches: 0 }
}

impl IntersectStream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        CoIterStats {
            comparisons: self.top.comparisons(),
            matches: self.matches,
        }
    }
}

impl Iterator for IntersectStream<'_> {
    type Item = (Coord, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.top.next();
        if item.is_some() {
            self.matches += 1;
        }
        item
    }
}

/// Intersects any number of fibers eagerly, returning for each matching
/// coordinate the per-fiber positions. This is [`intersect_stream`]
/// drained into a `Vec`.
///
/// # Panics
///
/// Panics when `fibers` is empty.
pub fn intersect_many(
    fibers: &[&Fiber],
    policy: IntersectPolicy,
) -> (Vec<(Coord, Vec<usize>)>, CoIterStats) {
    let views: Vec<FiberView<'_>> = fibers.iter().map(|f| FiberView::Owned(f)).collect();
    let mut s = intersect_stream(&views, policy);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

// ---------------------------------------------------------------------------
// Union.
// ---------------------------------------------------------------------------

/// One union result row: a coordinate plus, per input fiber, the position
/// of that coordinate when the fiber holds it.
pub type UnionMatch = (Coord, Vec<Option<usize>>);

/// Lazy multi-input union over fiber cursors: yields every coordinate
/// present in at least one fiber, with the per-fiber position when
/// present. One comparison is charged per live fiber per emitted
/// coordinate (the min-finding work of the merging sequencer).
#[derive(Clone, Debug)]
pub struct UnionStream<'a> {
    fibers: Vec<FiberView<'a>>,
    cursors: Vec<usize>,
    stats: CoIterStats,
    limit: Option<u64>,
}

/// Starts a lazy union of `fibers`.
pub fn union_stream<'a>(fibers: &[FiberView<'a>]) -> UnionStream<'a> {
    UnionStream {
        cursors: vec![0; fibers.len()],
        fibers: fibers.to_vec(),
        stats: CoIterStats::default(),
        limit: None,
    }
}

/// Starts a *bounded* lazy union emitting only coordinates in `[lo, hi)`
/// — one shard of a partitioned co-iteration. Positions stay absolute,
/// and charging is **shard-exact** for any number of fibers: each
/// cursor starts at its fiber's first coordinate `>= lo`, and the
/// min-scan that would emit a coordinate `>= hi` charges nothing (the
/// next shard performs — and pays for — that scan itself). Fibers must
/// hold point coordinates.
pub fn union_stream_bounded<'a>(fibers: &[FiberView<'a>], lo: u64, hi: u64) -> UnionStream<'a> {
    UnionStream {
        cursors: fibers.iter().map(|f| lower_bound_point(f, lo)).collect(),
        fibers: fibers.to_vec(),
        stats: CoIterStats::default(),
        limit: Some(hi),
    }
}

impl UnionStream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        self.stats.clone()
    }
}

impl Iterator for UnionStream<'_> {
    type Item = UnionMatch;

    fn next(&mut self) -> Option<Self::Item> {
        // Find the minimum current coordinate across all fibers. Scan
        // charges are tallied locally and only committed on emission:
        // a bounded stream's final scan — the one that discovers the
        // boundary coordinate — is performed again (and paid for) by
        // the shard that owns that coordinate, so per-shard stats sum
        // exactly to the sequential stream's.
        let mut min: Option<CoordKey<'_>> = None;
        let mut scanned = 0u64;
        for (f, &cur) in self.fibers.iter().zip(&self.cursors) {
            if cur < f.occupancy() {
                scanned += 1;
                let key = f.coord_key_at(cur);
                match &min {
                    None => min = Some(key),
                    Some(m) if key.cmp_key(m).is_lt() => min = Some(key),
                    _ => {}
                }
            }
        }
        let min = min?;
        if let Some(h) = self.limit {
            if !min.cmp_key(&CoordKey::Point(h)).is_lt() {
                return None;
            }
        }
        self.stats.comparisons += scanned;
        let m = min.to_coord();
        let mut row: Vec<Option<usize>> = Vec::with_capacity(self.fibers.len());
        for (idx, f) in self.fibers.iter().enumerate() {
            let cur = self.cursors[idx];
            if cur < f.occupancy() && f.coord_key_at(cur).cmp_coord(&m).is_eq() {
                row.push(Some(cur));
                self.cursors[idx] += 1;
            } else {
                row.push(None);
            }
        }
        self.stats.matches += 1;
        Some((m, row))
    }
}

/// Unions any number of fibers eagerly. This is [`union_stream`] drained
/// into a `Vec`.
pub fn union_many(fibers: &[&Fiber]) -> (Vec<UnionMatch>, CoIterStats) {
    let views: Vec<FiberView<'_>> = fibers.iter().map(|f| FiberView::Owned(f)).collect();
    let mut s = union_stream(&views);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

// ---------------------------------------------------------------------------
// Projection.
// ---------------------------------------------------------------------------

/// Looks up a coordinate in a fiber by *projection*: used when a loop rank
/// covers several root ranks (after flattening) but a tensor only carries a
/// subset of them, so the relevant tuple component is extracted and probed.
pub fn project_lookup<'f>(
    fiber: &FiberView<'f>,
    coord: &Coord,
    component: usize,
) -> Option<PayloadView<'f>> {
    let c = match coord {
        Coord::Point(_) => {
            debug_assert_eq!(component, 0, "points have a single component");
            coord.clone()
        }
        Coord::Tuple(cs) => cs.get(component)?.clone(),
    };
    fiber.get(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;
    use crate::coord::Shape;
    use crate::view::TensorData;

    fn fib(coords: &[u64]) -> Fiber {
        Fiber::from_pairs(
            Shape::Interval(1000),
            coords.iter().map(|&c| (c, c as f64 + 1.0)),
        )
        .expect("test fiber is valid")
    }

    fn compressed(coords: &[u64]) -> CompressedTensor {
        CompressedTensor::from_entries(
            "F",
            &["K"],
            &[1000],
            coords.iter().map(|&c| (vec![c], c as f64 + 1.0)).collect(),
        )
        .expect("test fiber is valid")
    }

    #[test]
    fn two_finger_finds_all_matches() {
        let a = fib(&[1, 3, 5, 7]);
        let b = fib(&[2, 3, 7, 9]);
        let (m, s) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let coords: Vec<u64> = m.iter().map(|(c, _, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![3, 7]);
        assert_eq!(s.matches, 2);
        assert!(s.comparisons >= 2 && s.comparisons <= 8);
    }

    #[test]
    fn all_policies_agree_on_matches() {
        let a = fib(&[0, 2, 4, 6, 8, 10, 50, 51, 52]);
        let b = fib(&[4, 5, 6, 52, 99]);
        let (m0, _) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let (m1, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 0 });
        let (m2, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 1 });
        let (m3, _) = intersect2(&a, &b, IntersectPolicy::SkipAhead);
        assert_eq!(m0, m1);
        assert_eq!(m0, m2);
        assert_eq!(m0, m3);
    }

    #[test]
    fn leader_follower_work_tracks_leader_occupancy() {
        let small = fib(&[100, 200]);
        let big = fib(&(0..500).collect::<Vec<u64>>());
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 0 });
        assert_eq!(s.comparisons, 2);
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 1 });
        assert_eq!(s.comparisons, 500);
    }

    #[test]
    fn skip_ahead_beats_two_finger_on_skewed_inputs() {
        let sparse = fib(&[999]);
        let dense = fib(&(0..1000).collect::<Vec<u64>>());
        let (_, tf) = intersect2(&sparse, &dense, IntersectPolicy::TwoFinger);
        let (_, sa) = intersect2(&sparse, &dense, IntersectPolicy::SkipAhead);
        assert!(
            sa.comparisons < tf.comparisons / 10,
            "skip-ahead {} should be far below two-finger {}",
            sa.comparisons,
            tf.comparisons
        );
    }

    #[test]
    fn intersect_many_matches_pairwise_composition() {
        let a = fib(&[1, 2, 3, 4, 5]);
        let b = fib(&[2, 4, 6]);
        let c = fib(&[4, 5, 6]);
        let (m, _) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, Coord::Point(4));
        assert_eq!(m[0].1, vec![3, 1, 0]);
    }

    #[test]
    fn streams_are_lazy_but_stats_complete_on_drain() {
        let a = fib(&[1, 3, 5, 7]);
        let b = fib(&[3, 7]);
        let mut s = intersect2_stream(
            FiberView::Owned(&a),
            FiberView::Owned(&b),
            IntersectPolicy::TwoFinger,
        );
        let first = s.next().unwrap();
        assert_eq!(first.0, Coord::Point(3));
        let partial = s.stats();
        assert_eq!(partial.matches, 1);
        let rest: Vec<_> = s.by_ref().collect();
        assert_eq!(rest.len(), 1);
        assert!(s.stats().comparisons > partial.comparisons);
    }

    #[test]
    fn streams_agree_across_representations() {
        let coords_a: Vec<u64> = vec![0, 2, 4, 6, 8, 10, 50, 51, 52];
        let coords_b: Vec<u64> = vec![4, 5, 6, 52, 99];
        let (oa, ob) = (fib(&coords_a), fib(&coords_b));
        let (ca, cb) = (compressed(&coords_a), compressed(&coords_b));
        let (da, db) = (TensorData::Compressed(ca), TensorData::Compressed(cb));
        for policy in [
            IntersectPolicy::TwoFinger,
            IntersectPolicy::LeaderFollower { leader: 0 },
            IntersectPolicy::LeaderFollower { leader: 1 },
            IntersectPolicy::SkipAhead,
        ] {
            let (mo, so) = intersect2(&oa, &ob, policy);
            let mut s = intersect2_stream(
                da.root_fiber_view().unwrap(),
                db.root_fiber_view().unwrap(),
                policy,
            );
            let mc: Vec<_> = s.by_ref().collect();
            assert_eq!(mo, mc, "{policy:?}");
            assert_eq!(so, s.stats(), "{policy:?}");
        }
        let (uo, suo) = union_many(&[&oa, &ob]);
        let mut us = union_stream(&[da.root_fiber_view().unwrap(), db.root_fiber_view().unwrap()]);
        let uc: Vec<_> = us.by_ref().collect();
        assert_eq!(uo, uc);
        assert_eq!(suo, us.stats());
    }

    #[test]
    fn cascade_drains_upstream_when_a_stage_exhausts() {
        // b exhausts immediately, but the a→b stage must still charge the
        // comparisons the eager composition would (full |a| materialized,
        // then the a∩b merge, then nothing at the c stage).
        let a = fib(&[1, 2, 3, 4, 5]);
        let b = fib(&[1]);
        let c = fib(&[9]);
        let (me, se) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        assert!(me.is_empty());
        let views = [&a, &b, &c].map(FiberView::Owned);
        let mut s = intersect_stream(&views, IntersectPolicy::TwoFinger);
        assert!(s.by_ref().next().is_none());
        assert_eq!(s.stats(), se);
    }

    #[test]
    fn union_yields_every_coordinate_once() {
        let a = fib(&[1, 3]);
        let b = fib(&[2, 3, 5]);
        let (u, s) = union_many(&[&a, &b]);
        let coords: Vec<u64> = u.iter().map(|(c, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![1, 2, 3, 5]);
        assert_eq!(u[2].1, vec![Some(1), Some(1)]);
        assert_eq!(u[0].1, vec![Some(0), None]);
        assert_eq!(s.matches, 4);
    }

    #[test]
    fn union_of_empty_fibers_is_empty() {
        let a = Fiber::new(Shape::Interval(5));
        let b = Fiber::new(Shape::Interval(5));
        let (u, _) = union_many(&[&a, &b]);
        assert!(u.is_empty());
    }

    /// Shard-exactness: for every split of the coordinate space into
    /// `[0,b)` and `[b,1000)`, the bounded streams' emissions concatenate
    /// to the unbounded stream's and their stats sum to its stats exactly.
    #[test]
    fn bounded_intersect_shards_partition_sequential_exactly() {
        let coords_a: Vec<u64> = vec![0, 2, 4, 6, 8, 10, 50, 51, 52, 400, 401, 700];
        let coords_b: Vec<u64> = vec![4, 5, 6, 52, 99, 400, 700, 999];
        // Both representations: the engine shards owned and compressed
        // inputs alike, and their coordinate keys differ (Borrowed vs
        // inline Point).
        let (ca, cb) = (compressed(&coords_a), compressed(&coords_b));
        let (da, db) = (TensorData::Compressed(ca), TensorData::Compressed(cb));
        let (fa, fb) = (fib(&coords_a), fib(&coords_b));
        let view_sets: [[FiberView<'_>; 2]; 2] = [
            [da.root_fiber_view().unwrap(), db.root_fiber_view().unwrap()],
            [FiberView::Owned(&fa), FiberView::Owned(&fb)],
        ];
        for pair in &view_sets {
            for policy in [
                IntersectPolicy::TwoFinger,
                IntersectPolicy::LeaderFollower { leader: 0 },
                IntersectPolicy::LeaderFollower { leader: 1 },
                IntersectPolicy::SkipAhead,
            ] {
                for nf in [1usize, 2] {
                    let views: Vec<FiberView<'_>> = pair[..nf].to_vec();
                    let mut whole = intersect_stream(&views, policy);
                    let seq: Vec<_> = whole.by_ref().collect();
                    let seq_stats = whole.stats();
                    for split in [0u64, 1, 5, 52, 53, 399, 500, 999, 1000] {
                        let mut merged = Vec::new();
                        let mut comparisons = 0;
                        let mut matches = 0;
                        for (lo, hi) in [(0, split), (split, 1000)] {
                            let mut s = intersect_stream_bounded(&views, policy, lo, hi);
                            merged.extend(s.by_ref());
                            comparisons += s.stats().comparisons;
                            matches += s.stats().matches;
                        }
                        assert_eq!(seq, merged, "{policy:?} nf={nf} split={split}");
                        assert_eq!(
                            (seq_stats.comparisons, seq_stats.matches),
                            (comparisons, matches),
                            "{policy:?} nf={nf} split={split}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_union_shards_partition_sequential_exactly() {
        let coords_a: Vec<u64> = vec![1, 3, 40, 41, 800];
        let coords_b: Vec<u64> = vec![2, 3, 5, 41, 999];
        let coords_c: Vec<u64> = vec![0, 40, 900, 999];
        let tensors: Vec<TensorData> = [&coords_a, &coords_b, &coords_c]
            .iter()
            .map(|c| TensorData::Compressed(compressed(c)))
            .collect();
        let fibers: Vec<Fiber> = [&coords_a, &coords_b, &coords_c]
            .iter()
            .map(|c| fib(c))
            .collect();
        let view_sets: [Vec<FiberView<'_>>; 2] = [
            tensors
                .iter()
                .map(|t| t.root_fiber_view().unwrap())
                .collect(),
            fibers.iter().map(FiberView::Owned).collect(),
        ];
        for views in &view_sets {
            let mut whole = union_stream(views);
            let seq: Vec<_> = whole.by_ref().collect();
            let seq_stats = whole.stats();
            for splits in [vec![500], vec![0, 41], vec![3, 40, 900], vec![1000]] {
                let mut bounds = vec![0u64];
                bounds.extend(&splits);
                bounds.push(1000);
                let mut merged = Vec::new();
                let mut comparisons = 0;
                let mut matches = 0;
                for w in bounds.windows(2) {
                    let mut s = union_stream_bounded(views, w[0], w[1]);
                    merged.extend(s.by_ref());
                    comparisons += s.stats().comparisons;
                    matches += s.stats().matches;
                }
                assert_eq!(seq, merged, "splits={splits:?}");
                assert_eq!(
                    (seq_stats.comparisons, seq_stats.matches),
                    (comparisons, matches),
                    "splits={splits:?}"
                );
            }
        }
    }

    #[test]
    fn project_lookup_extracts_tuple_components() {
        let f = fib(&[7]);
        let v = FiberView::Owned(&f);
        let tuple = Coord::pair(7, 3);
        assert!(project_lookup(&v, &tuple, 0).is_some());
        assert!(project_lookup(&v, &tuple, 1).is_none());
        assert!(project_lookup(&v, &Coord::Point(7), 0).is_some());
    }
}
