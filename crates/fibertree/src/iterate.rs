//! Co-iteration over fibers: streaming intersection, union, and
//! projection lookup.
//!
//! Sparse accelerators "sparsify" the iteration space (paper §2.4) by
//! co-iterating the operands of each loop rank. Multiplicative operands are
//! *intersected* (a point contributes only when all operands are present);
//! additive operands are *unioned*. The hardware that performs intersection
//! varies across designs, so the [`IntersectPolicy`] models the three unit
//! types of Table 3 — two-finger, leader-follower, and skip-ahead — and
//! reports the number of coordinate comparisons ("work") each would spend.
//!
//! Co-iteration is a *streaming dataflow of coordinate cursors* (in the
//! spirit of the Sparse Abstract Machine): [`intersect2_stream`],
//! [`intersect_stream`], and [`union_stream`] are lazy iterators over
//! [`FiberView`] cursors that emit one match at a time, never
//! materializing a match list. The matching eager functions
//! ([`intersect2`], [`intersect_many`], [`union_many`]) are thin wrappers
//! that drain a stream into a `Vec` — convenient for tests and small
//! fibers, while the simulator's engine consumes the streams directly.
//! Both report identical [`CoIterStats`].

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::fiber::Fiber;
use crate::view::{CoordKey, FiberView, PayloadView};

/// The intersection unit type (Table 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum IntersectPolicy {
    /// Classic merge: two pointers advance one coordinate at a time.
    #[default]
    TwoFinger,
    /// The leader's coordinates are looked up in the followers; work is
    /// proportional to the leader's occupancy. `leader` is the operand
    /// index.
    LeaderFollower {
        /// Index of the leading operand.
        leader: usize,
    },
    /// Galloping/skip-ahead: pointers advance by exponentially probing,
    /// modelling ExTensor-style skip-ahead intersection.
    SkipAhead,
}

/// Result of co-iterating fibers: the work metric charged to the
/// intersection unit plus the number of emitted coordinates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoIterStats {
    /// Number of coordinate comparisons performed by the modelled unit.
    pub comparisons: u64,
    /// Number of coordinates emitted (i.e. matches for intersection).
    pub matches: u64,
}

// ---------------------------------------------------------------------------
// Two-input intersection.
// ---------------------------------------------------------------------------

/// Lazy two-input intersection over fiber cursors.
///
/// Yields `(coord, position in a, position in b)` one match at a time.
/// Comparisons accrue as the stream advances; [`Intersect2Stream::stats`]
/// is complete once the stream is drained.
#[derive(Clone, Debug)]
pub struct Intersect2Stream<'a> {
    a: FiberView<'a>,
    b: FiberView<'a>,
    i: usize,
    j: usize,
    policy: IntersectPolicy,
    stats: CoIterStats,
}

/// Starts a lazy intersection of two fiber cursors under `policy`.
///
/// Comparison charging per policy:
///
/// - two-finger: one comparison per pointer advance (≈ `|a| + |b|` worst
///   case, less when one side exhausts early),
/// - leader-follower: one probe per leader element,
/// - skip-ahead: galloping probes, `O(matches · log(skip))`.
pub fn intersect2_stream<'a>(
    a: FiberView<'a>,
    b: FiberView<'a>,
    policy: IntersectPolicy,
) -> Intersect2Stream<'a> {
    Intersect2Stream {
        a,
        b,
        i: 0,
        j: 0,
        policy,
        stats: CoIterStats::default(),
    }
}

impl Intersect2Stream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        self.stats.clone()
    }
}

impl Iterator for Intersect2Stream<'_> {
    type Item = (Coord, usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        match self.policy {
            IntersectPolicy::TwoFinger => self.next_two_finger(),
            IntersectPolicy::LeaderFollower { leader } => self.next_leader(leader == 1),
            IntersectPolicy::SkipAhead => self.next_skip_ahead(),
        }
    }
}

impl Intersect2Stream<'_> {
    fn next_two_finger(&mut self) -> Option<(Coord, usize, usize)> {
        while self.i < self.a.occupancy() && self.j < self.b.occupancy() {
            self.stats.comparisons += 1;
            let ka = self.a.coord_key_at(self.i);
            match ka.cmp_key(&self.b.coord_key_at(self.j)) {
                std::cmp::Ordering::Equal => {
                    let out = (ka.to_coord(), self.i, self.j);
                    self.stats.matches += 1;
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
            }
        }
        None
    }

    /// Leader-follower: the stream walks the leader (`a` unless `swap`)
    /// and probes the follower, charging one comparison per leader
    /// element. Output positions stay `(pos in a, pos in b)`.
    fn next_leader(&mut self, swap: bool) -> Option<(Coord, usize, usize)> {
        let (lead, follow) = if swap {
            (self.b, self.a)
        } else {
            (self.a, self.b)
        };
        while self.i < lead.occupancy() {
            self.stats.comparisons += 1;
            let key = lead.coord_key_at(self.i);
            let pl = self.i;
            self.i += 1;
            if let Some(pf) = follow.position_of_key(&key) {
                self.stats.matches += 1;
                let out = if swap { (pf, pl) } else { (pl, pf) };
                return Some((key.to_coord(), out.0, out.1));
            }
        }
        None
    }

    fn next_skip_ahead(&mut self) -> Option<(Coord, usize, usize)> {
        while self.i < self.a.occupancy() && self.j < self.b.occupancy() {
            self.stats.comparisons += 1;
            let ka = self.a.coord_key_at(self.i);
            let kb = self.b.coord_key_at(self.j);
            match ka.cmp_key(&kb) {
                std::cmp::Ordering::Equal => {
                    let out = (ka.to_coord(), self.i, self.j);
                    self.stats.matches += 1;
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
                std::cmp::Ordering::Less => {
                    let (ni, probes) = gallop(&self.a, self.i, &kb);
                    self.stats.comparisons += probes;
                    self.i = ni;
                }
                std::cmp::Ordering::Greater => {
                    let (nj, probes) = gallop(&self.b, self.j, &ka);
                    self.stats.comparisons += probes;
                    self.j = nj;
                }
            }
        }
        None
    }
}

/// Intersects two fibers eagerly, returning the positions of each match.
///
/// Each output tuple is `(coord, position in a, position in b)`. This is
/// [`intersect2_stream`] drained into a `Vec`.
pub fn intersect2(
    a: &Fiber,
    b: &Fiber,
    policy: IntersectPolicy,
) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    let mut s = intersect2_stream(FiberView::Owned(a), FiberView::Owned(b), policy);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

/// Gallops forward from `start` to the first position whose coordinate is
/// `>= target`, returning `(position, probes spent)`.
fn gallop(fiber: &FiberView<'_>, start: usize, target: &CoordKey<'_>) -> (usize, u64) {
    let len = fiber.occupancy();
    let mut probes = 0u64;
    let mut step = 1usize;
    let mut lo = start;
    let mut hi = start;
    // Exponential probe.
    while hi < len && fiber.coord_key_at(hi).cmp_key(target).is_lt() {
        probes += 1;
        lo = hi;
        hi = (hi + step).min(len);
        step *= 2;
    }
    // Binary search within (lo, hi].
    let mut left = lo;
    let mut right = hi;
    while left < right {
        probes += 1;
        let mid = (left + right) / 2;
        if fiber.coord_key_at(mid).cmp_key(target).is_lt() {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    (left, probes)
}

// ---------------------------------------------------------------------------
// Multi-input intersection: a lazy cascade of two-input stages.
// ---------------------------------------------------------------------------

/// Lazy multi-input intersection: yields, per matching coordinate, the
/// per-fiber positions.
///
/// Structured as a cascade of two-input stages — fiber 0 feeds stage 1,
/// whose output feeds stage 2, and so on — which is how multi-way
/// intersections are built from two-input units in hardware, and is also
/// exactly how comparisons are charged: each stage counts as if it merged
/// the *complete* output of the previous stage, so the totals equal the
/// eager pairwise composition even though nothing is materialized. (A
/// stage whose own fiber exhausts silently drains its upstream to keep
/// that equivalence.)
#[derive(Debug)]
pub struct IntersectStream<'a> {
    top: ManyNode<'a>,
    matches: u64,
}

#[derive(Debug)]
enum ManyNode<'a> {
    /// Fiber 0: emits every element with its position, charging nothing.
    Source { fiber: FiberView<'a>, pos: usize },
    /// One two-input unit merging the upstream match stream with a fiber.
    Stage(Box<ManyStage<'a>>),
}

#[derive(Debug)]
struct ManyStage<'a> {
    upstream: ManyNode<'a>,
    fiber: FiberView<'a>,
    j: usize,
    /// Leader-follower mode: probe instead of merge.
    probe: bool,
    comparisons: u64,
    left: Option<(Coord, Vec<usize>)>,
    primed: bool,
    done: bool,
}

impl<'a> ManyNode<'a> {
    fn next(&mut self) -> Option<(Coord, Vec<usize>)> {
        match self {
            ManyNode::Source { fiber, pos } => {
                if *pos >= fiber.occupancy() {
                    return None;
                }
                let item = (fiber.coord_at(*pos), vec![*pos]);
                *pos += 1;
                Some(item)
            }
            ManyNode::Stage(s) => s.next(),
        }
    }

    fn comparisons(&self) -> u64 {
        match self {
            ManyNode::Source { .. } => 0,
            ManyNode::Stage(s) => s.comparisons + s.upstream.comparisons(),
        }
    }
}

impl ManyStage<'_> {
    fn next(&mut self) -> Option<(Coord, Vec<usize>)> {
        if self.done {
            return None;
        }
        if !self.primed {
            self.left = self.upstream.next();
            self.primed = true;
        }
        if self.probe {
            // Leader-follower: every upstream match costs one probe of
            // this fiber, whether or not it hits.
            while let Some((c, mut ps)) = self.left.take() {
                self.comparisons += 1;
                let hit = self.fiber.position(&c);
                self.left = self.upstream.next();
                if let Some(pf) = hit {
                    ps.push(pf);
                    return Some((c, ps));
                }
            }
            self.done = true;
            return None;
        }
        // Two-finger merge of the upstream stream against this fiber.
        loop {
            if self.left.is_none() {
                // Upstream exhausted (and, by induction, fully drained).
                self.done = true;
                return None;
            }
            if self.j >= self.fiber.occupancy() {
                // This fiber exhausted: the eager pairwise composition
                // still materializes the full upstream match list, so
                // drain it (charging its comparisons) without emitting.
                while self.upstream.next().is_some() {}
                self.left = None;
                self.done = true;
                return None;
            }
            self.comparisons += 1;
            let cmp = {
                let (c, _) = self.left.as_ref().expect("checked above");
                self.fiber.coord_key_at(self.j).cmp_coord(c).reverse()
            };
            match cmp {
                std::cmp::Ordering::Equal => {
                    let (c, mut ps) = self.left.take().expect("checked above");
                    ps.push(self.j);
                    self.j += 1;
                    self.left = self.upstream.next();
                    return Some((c, ps));
                }
                std::cmp::Ordering::Less => self.left = self.upstream.next(),
                std::cmp::Ordering::Greater => self.j += 1,
            }
        }
    }
}

/// Starts a lazy multi-input intersection of `fibers` under `policy`.
///
/// # Panics
///
/// Panics when `fibers` is empty.
pub fn intersect_stream<'a>(
    fibers: &[FiberView<'a>],
    policy: IntersectPolicy,
) -> IntersectStream<'a> {
    assert!(
        !fibers.is_empty(),
        "intersect_stream needs at least one fiber"
    );
    let mut top = ManyNode::Source {
        fiber: fibers[0],
        pos: 0,
    };
    for &f in &fibers[1..] {
        top = ManyNode::Stage(Box::new(ManyStage {
            upstream: top,
            fiber: f,
            j: 0,
            probe: matches!(policy, IntersectPolicy::LeaderFollower { .. }),
            comparisons: 0,
            left: None,
            primed: false,
            done: false,
        }));
    }
    IntersectStream { top, matches: 0 }
}

impl IntersectStream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        CoIterStats {
            comparisons: self.top.comparisons(),
            matches: self.matches,
        }
    }
}

impl Iterator for IntersectStream<'_> {
    type Item = (Coord, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.top.next();
        if item.is_some() {
            self.matches += 1;
        }
        item
    }
}

/// Intersects any number of fibers eagerly, returning for each matching
/// coordinate the per-fiber positions. This is [`intersect_stream`]
/// drained into a `Vec`.
///
/// # Panics
///
/// Panics when `fibers` is empty.
pub fn intersect_many(
    fibers: &[&Fiber],
    policy: IntersectPolicy,
) -> (Vec<(Coord, Vec<usize>)>, CoIterStats) {
    let views: Vec<FiberView<'_>> = fibers.iter().map(|f| FiberView::Owned(f)).collect();
    let mut s = intersect_stream(&views, policy);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

// ---------------------------------------------------------------------------
// Union.
// ---------------------------------------------------------------------------

/// One union result row: a coordinate plus, per input fiber, the position
/// of that coordinate when the fiber holds it.
pub type UnionMatch = (Coord, Vec<Option<usize>>);

/// Lazy multi-input union over fiber cursors: yields every coordinate
/// present in at least one fiber, with the per-fiber position when
/// present. One comparison is charged per live fiber per emitted
/// coordinate (the min-finding work of the merging sequencer).
#[derive(Clone, Debug)]
pub struct UnionStream<'a> {
    fibers: Vec<FiberView<'a>>,
    cursors: Vec<usize>,
    stats: CoIterStats,
}

/// Starts a lazy union of `fibers`.
pub fn union_stream<'a>(fibers: &[FiberView<'a>]) -> UnionStream<'a> {
    UnionStream {
        cursors: vec![0; fibers.len()],
        fibers: fibers.to_vec(),
        stats: CoIterStats::default(),
    }
}

impl UnionStream<'_> {
    /// The statistics accrued so far (complete after draining).
    pub fn stats(&self) -> CoIterStats {
        self.stats.clone()
    }
}

impl Iterator for UnionStream<'_> {
    type Item = UnionMatch;

    fn next(&mut self) -> Option<Self::Item> {
        // Find the minimum current coordinate across all fibers.
        let mut min: Option<CoordKey<'_>> = None;
        for (f, &cur) in self.fibers.iter().zip(&self.cursors) {
            if cur < f.occupancy() {
                self.stats.comparisons += 1;
                let key = f.coord_key_at(cur);
                match &min {
                    None => min = Some(key),
                    Some(m) if key.cmp_key(m).is_lt() => min = Some(key),
                    _ => {}
                }
            }
        }
        let m = min?.to_coord();
        let mut row: Vec<Option<usize>> = Vec::with_capacity(self.fibers.len());
        for (idx, f) in self.fibers.iter().enumerate() {
            let cur = self.cursors[idx];
            if cur < f.occupancy() && f.coord_key_at(cur).cmp_coord(&m).is_eq() {
                row.push(Some(cur));
                self.cursors[idx] += 1;
            } else {
                row.push(None);
            }
        }
        self.stats.matches += 1;
        Some((m, row))
    }
}

/// Unions any number of fibers eagerly. This is [`union_stream`] drained
/// into a `Vec`.
pub fn union_many(fibers: &[&Fiber]) -> (Vec<UnionMatch>, CoIterStats) {
    let views: Vec<FiberView<'_>> = fibers.iter().map(|f| FiberView::Owned(f)).collect();
    let mut s = union_stream(&views);
    let out: Vec<_> = s.by_ref().collect();
    (out, s.stats())
}

// ---------------------------------------------------------------------------
// Projection.
// ---------------------------------------------------------------------------

/// Looks up a coordinate in a fiber by *projection*: used when a loop rank
/// covers several root ranks (after flattening) but a tensor only carries a
/// subset of them, so the relevant tuple component is extracted and probed.
pub fn project_lookup<'f>(
    fiber: &FiberView<'f>,
    coord: &Coord,
    component: usize,
) -> Option<PayloadView<'f>> {
    let c = match coord {
        Coord::Point(_) => {
            debug_assert_eq!(component, 0, "points have a single component");
            coord.clone()
        }
        Coord::Tuple(cs) => cs.get(component)?.clone(),
    };
    fiber.get(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::CompressedTensor;
    use crate::coord::Shape;
    use crate::view::TensorData;

    fn fib(coords: &[u64]) -> Fiber {
        Fiber::from_pairs(
            Shape::Interval(1000),
            coords.iter().map(|&c| (c, c as f64 + 1.0)),
        )
        .expect("test fiber is valid")
    }

    fn compressed(coords: &[u64]) -> CompressedTensor {
        CompressedTensor::from_entries(
            "F",
            &["K"],
            &[1000],
            coords.iter().map(|&c| (vec![c], c as f64 + 1.0)).collect(),
        )
        .expect("test fiber is valid")
    }

    #[test]
    fn two_finger_finds_all_matches() {
        let a = fib(&[1, 3, 5, 7]);
        let b = fib(&[2, 3, 7, 9]);
        let (m, s) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let coords: Vec<u64> = m.iter().map(|(c, _, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![3, 7]);
        assert_eq!(s.matches, 2);
        assert!(s.comparisons >= 2 && s.comparisons <= 8);
    }

    #[test]
    fn all_policies_agree_on_matches() {
        let a = fib(&[0, 2, 4, 6, 8, 10, 50, 51, 52]);
        let b = fib(&[4, 5, 6, 52, 99]);
        let (m0, _) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let (m1, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 0 });
        let (m2, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 1 });
        let (m3, _) = intersect2(&a, &b, IntersectPolicy::SkipAhead);
        assert_eq!(m0, m1);
        assert_eq!(m0, m2);
        assert_eq!(m0, m3);
    }

    #[test]
    fn leader_follower_work_tracks_leader_occupancy() {
        let small = fib(&[100, 200]);
        let big = fib(&(0..500).collect::<Vec<u64>>());
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 0 });
        assert_eq!(s.comparisons, 2);
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 1 });
        assert_eq!(s.comparisons, 500);
    }

    #[test]
    fn skip_ahead_beats_two_finger_on_skewed_inputs() {
        let sparse = fib(&[999]);
        let dense = fib(&(0..1000).collect::<Vec<u64>>());
        let (_, tf) = intersect2(&sparse, &dense, IntersectPolicy::TwoFinger);
        let (_, sa) = intersect2(&sparse, &dense, IntersectPolicy::SkipAhead);
        assert!(
            sa.comparisons < tf.comparisons / 10,
            "skip-ahead {} should be far below two-finger {}",
            sa.comparisons,
            tf.comparisons
        );
    }

    #[test]
    fn intersect_many_matches_pairwise_composition() {
        let a = fib(&[1, 2, 3, 4, 5]);
        let b = fib(&[2, 4, 6]);
        let c = fib(&[4, 5, 6]);
        let (m, _) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, Coord::Point(4));
        assert_eq!(m[0].1, vec![3, 1, 0]);
    }

    #[test]
    fn streams_are_lazy_but_stats_complete_on_drain() {
        let a = fib(&[1, 3, 5, 7]);
        let b = fib(&[3, 7]);
        let mut s = intersect2_stream(
            FiberView::Owned(&a),
            FiberView::Owned(&b),
            IntersectPolicy::TwoFinger,
        );
        let first = s.next().unwrap();
        assert_eq!(first.0, Coord::Point(3));
        let partial = s.stats();
        assert_eq!(partial.matches, 1);
        let rest: Vec<_> = s.by_ref().collect();
        assert_eq!(rest.len(), 1);
        assert!(s.stats().comparisons > partial.comparisons);
    }

    #[test]
    fn streams_agree_across_representations() {
        let coords_a: Vec<u64> = vec![0, 2, 4, 6, 8, 10, 50, 51, 52];
        let coords_b: Vec<u64> = vec![4, 5, 6, 52, 99];
        let (oa, ob) = (fib(&coords_a), fib(&coords_b));
        let (ca, cb) = (compressed(&coords_a), compressed(&coords_b));
        let (da, db) = (TensorData::Compressed(ca), TensorData::Compressed(cb));
        for policy in [
            IntersectPolicy::TwoFinger,
            IntersectPolicy::LeaderFollower { leader: 0 },
            IntersectPolicy::LeaderFollower { leader: 1 },
            IntersectPolicy::SkipAhead,
        ] {
            let (mo, so) = intersect2(&oa, &ob, policy);
            let mut s = intersect2_stream(
                da.root_fiber_view().unwrap(),
                db.root_fiber_view().unwrap(),
                policy,
            );
            let mc: Vec<_> = s.by_ref().collect();
            assert_eq!(mo, mc, "{policy:?}");
            assert_eq!(so, s.stats(), "{policy:?}");
        }
        let (uo, suo) = union_many(&[&oa, &ob]);
        let mut us = union_stream(&[da.root_fiber_view().unwrap(), db.root_fiber_view().unwrap()]);
        let uc: Vec<_> = us.by_ref().collect();
        assert_eq!(uo, uc);
        assert_eq!(suo, us.stats());
    }

    #[test]
    fn cascade_drains_upstream_when_a_stage_exhausts() {
        // b exhausts immediately, but the a→b stage must still charge the
        // comparisons the eager composition would (full |a| materialized,
        // then the a∩b merge, then nothing at the c stage).
        let a = fib(&[1, 2, 3, 4, 5]);
        let b = fib(&[1]);
        let c = fib(&[9]);
        let (me, se) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        assert!(me.is_empty());
        let views = [&a, &b, &c].map(FiberView::Owned);
        let mut s = intersect_stream(&views, IntersectPolicy::TwoFinger);
        assert!(s.by_ref().next().is_none());
        assert_eq!(s.stats(), se);
    }

    #[test]
    fn union_yields_every_coordinate_once() {
        let a = fib(&[1, 3]);
        let b = fib(&[2, 3, 5]);
        let (u, s) = union_many(&[&a, &b]);
        let coords: Vec<u64> = u.iter().map(|(c, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![1, 2, 3, 5]);
        assert_eq!(u[2].1, vec![Some(1), Some(1)]);
        assert_eq!(u[0].1, vec![Some(0), None]);
        assert_eq!(s.matches, 4);
    }

    #[test]
    fn union_of_empty_fibers_is_empty() {
        let a = Fiber::new(Shape::Interval(5));
        let b = Fiber::new(Shape::Interval(5));
        let (u, _) = union_many(&[&a, &b]);
        assert!(u.is_empty());
    }

    #[test]
    fn project_lookup_extracts_tuple_components() {
        let f = fib(&[7]);
        let v = FiberView::Owned(&f);
        let tuple = Coord::pair(7, 3);
        assert!(project_lookup(&v, &tuple, 0).is_some());
        assert!(project_lookup(&v, &tuple, 1).is_none());
        assert!(project_lookup(&v, &Coord::Point(7), 0).is_some());
    }
}
