//! Co-iteration over fibers: intersection, union, and projection lookup.
//!
//! Sparse accelerators "sparsify" the iteration space (paper §2.4) by
//! co-iterating the operands of each loop rank. Multiplicative operands are
//! *intersected* (a point contributes only when all operands are present);
//! additive operands are *unioned*. The hardware that performs intersection
//! varies across designs, so the [`IntersectPolicy`] models the three unit
//! types of Table 3 — two-finger, leader-follower, and skip-ahead — and
//! reports the number of coordinate comparisons ("work") each would spend.

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::fiber::{Fiber, Payload};

/// The intersection unit type (Table 3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum IntersectPolicy {
    /// Classic merge: two pointers advance one coordinate at a time.
    #[default]
    TwoFinger,
    /// The leader's coordinates are looked up in the followers; work is
    /// proportional to the leader's occupancy. `leader` is the operand
    /// index.
    LeaderFollower {
        /// Index of the leading operand.
        leader: usize,
    },
    /// Galloping/skip-ahead: pointers advance by exponentially probing,
    /// modelling ExTensor-style skip-ahead intersection.
    SkipAhead,
}

/// Result of co-iterating fibers: the matching coordinates plus the work
/// metric charged to the intersection unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoIterStats {
    /// Number of coordinate comparisons performed by the modelled unit.
    pub comparisons: u64,
    /// Number of coordinates emitted (i.e. matches for intersection).
    pub matches: u64,
}

/// Intersects two fibers, returning the positions of each match.
///
/// Each output tuple is `(coord, position in a, position in b)`. The
/// returned [`CoIterStats`] charges comparisons per `policy`:
///
/// - two-finger: one comparison per pointer advance (≈ `|a| + |b|` worst
///   case, less when one side exhausts early),
/// - leader-follower: one probe per leader element,
/// - skip-ahead: galloping probes, `O(matches · log(skip))`.
pub fn intersect2(
    a: &Fiber,
    b: &Fiber,
    policy: IntersectPolicy,
) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    match policy {
        IntersectPolicy::TwoFinger => intersect_two_finger(a, b),
        IntersectPolicy::LeaderFollower { leader } => {
            let swap = leader == 1;
            let (lead, follow) = if swap { (b, a) } else { (a, b) };
            let (matches, stats) = intersect_leader(lead, follow);
            let matches = matches
                .into_iter()
                .map(|(c, pl, pf)| if swap { (c, pf, pl) } else { (c, pl, pf) })
                .collect();
            (matches, stats)
        }
        IntersectPolicy::SkipAhead => intersect_skip_ahead(a, b),
    }
}

fn intersect_two_finger(a: &Fiber, b: &Fiber) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    let (ae, be) = (a.elements(), b.elements());
    let mut out = Vec::new();
    let mut stats = CoIterStats::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ae.len() && j < be.len() {
        stats.comparisons += 1;
        match ae[i].coord.cmp(&be[j].coord) {
            std::cmp::Ordering::Equal => {
                out.push((ae[i].coord.clone(), i, j));
                stats.matches += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    (out, stats)
}

fn intersect_leader(lead: &Fiber, follow: &Fiber) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    let mut out = Vec::new();
    let mut stats = CoIterStats::default();
    for (pl, e) in lead.iter().enumerate() {
        stats.comparisons += 1; // one probe per leader element
        if let Some(pf) = follow.position(&e.coord) {
            out.push((e.coord.clone(), pl, pf));
            stats.matches += 1;
        }
    }
    (out, stats)
}

fn intersect_skip_ahead(a: &Fiber, b: &Fiber) -> (Vec<(Coord, usize, usize)>, CoIterStats) {
    let (ae, be) = (a.elements(), b.elements());
    let mut out = Vec::new();
    let mut stats = CoIterStats::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ae.len() && j < be.len() {
        stats.comparisons += 1;
        match ae[i].coord.cmp(&be[j].coord) {
            std::cmp::Ordering::Equal => {
                out.push((ae[i].coord.clone(), i, j));
                stats.matches += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                let (ni, probes) = gallop(ae, i, &be[j].coord);
                stats.comparisons += probes;
                i = ni;
            }
            std::cmp::Ordering::Greater => {
                let (nj, probes) = gallop(be, j, &ae[i].coord);
                stats.comparisons += probes;
                j = nj;
            }
        }
    }
    (out, stats)
}

/// Gallops forward from `start` to the first position whose coordinate is
/// `>= target`, returning `(position, probes spent)`.
fn gallop(elems: &[crate::fiber::Element], start: usize, target: &Coord) -> (usize, u64) {
    let mut probes = 0u64;
    let mut step = 1usize;
    let mut lo = start;
    let mut hi = start;
    // Exponential probe.
    while hi < elems.len() && elems[hi].coord < *target {
        probes += 1;
        lo = hi;
        hi = (hi + step).min(elems.len());
        step *= 2;
    }
    // Binary search within (lo, hi].
    let mut left = lo;
    let mut right = hi;
    while left < right {
        probes += 1;
        let mid = (left + right) / 2;
        if elems[mid].coord < *target {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    (left, probes)
}

/// Intersects any number of fibers with a two-finger cascade, returning for
/// each matching coordinate the per-fiber positions.
///
/// Comparisons are accumulated as if the fibers were intersected pairwise
/// left to right, which is how multi-way intersections are built from
/// two-input units in hardware.
pub fn intersect_many(
    fibers: &[&Fiber],
    policy: IntersectPolicy,
) -> (Vec<(Coord, Vec<usize>)>, CoIterStats) {
    assert!(
        !fibers.is_empty(),
        "intersect_many needs at least one fiber"
    );
    let mut stats = CoIterStats::default();
    let mut acc: Vec<(Coord, Vec<usize>)> = fibers[0]
        .iter()
        .enumerate()
        .map(|(i, e)| (e.coord.clone(), vec![i]))
        .collect();
    for f in &fibers[1..] {
        let (matched, s) = intersect_positions(&acc, f, policy);
        stats.comparisons += s.comparisons;
        acc = matched;
    }
    stats.matches = acc.len() as u64;
    (acc, stats)
}

fn intersect_positions(
    acc: &[(Coord, Vec<usize>)],
    f: &Fiber,
    policy: IntersectPolicy,
) -> (Vec<(Coord, Vec<usize>)>, CoIterStats) {
    let mut out = Vec::new();
    let mut stats = CoIterStats::default();
    match policy {
        IntersectPolicy::LeaderFollower { .. } => {
            for (c, ps) in acc {
                stats.comparisons += 1;
                if let Some(pf) = f.position(c) {
                    let mut ps = ps.clone();
                    ps.push(pf);
                    out.push((c.clone(), ps));
                }
            }
        }
        _ => {
            let fe = f.elements();
            let (mut i, mut j) = (0usize, 0usize);
            while i < acc.len() && j < fe.len() {
                stats.comparisons += 1;
                match acc[i].0.cmp(&fe[j].coord) {
                    std::cmp::Ordering::Equal => {
                        let mut ps = acc[i].1.clone();
                        ps.push(j);
                        out.push((acc[i].0.clone(), ps));
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
        }
    }
    stats.matches = out.len() as u64;
    (out, stats)
}

/// One union result row: a coordinate plus, per input fiber, the position
/// of that coordinate when the fiber holds it.
pub type UnionMatch = (Coord, Vec<Option<usize>>);

/// Unions any number of fibers: yields every coordinate present in at least
/// one fiber, with the per-fiber position when present.
pub fn union_many(fibers: &[&Fiber]) -> (Vec<UnionMatch>, CoIterStats) {
    let n = fibers.len();
    let mut cursors = vec![0usize; n];
    let mut out: Vec<UnionMatch> = Vec::new();
    let mut stats = CoIterStats::default();
    loop {
        // Find the minimum current coordinate across all fibers.
        let mut min: Option<Coord> = None;
        for (f, &cur) in fibers.iter().zip(&cursors) {
            if let Some(e) = f.elements().get(cur) {
                stats.comparisons += 1;
                match &min {
                    None => min = Some(e.coord.clone()),
                    Some(m) if e.coord < *m => min = Some(e.coord.clone()),
                    _ => {}
                }
            }
        }
        let Some(m) = min else { break };
        let mut row: Vec<Option<usize>> = Vec::with_capacity(n);
        for (idx, f) in fibers.iter().enumerate() {
            let cur = cursors[idx];
            match f.elements().get(cur) {
                Some(e) if e.coord == m => {
                    row.push(Some(cur));
                    cursors[idx] += 1;
                }
                _ => row.push(None),
            }
        }
        out.push((m, row));
        stats.matches += 1;
    }
    (out, stats)
}

/// Looks up a coordinate in a fiber by *projection*: used when a loop rank
/// covers several root ranks (after flattening) but a tensor only carries a
/// subset of them, so the relevant tuple component is extracted and probed.
pub fn project_lookup<'f>(
    fiber: &'f Fiber,
    coord: &Coord,
    component: usize,
) -> Option<&'f Payload> {
    let c = match coord {
        Coord::Point(_) => {
            debug_assert_eq!(component, 0, "points have a single component");
            coord.clone()
        }
        Coord::Tuple(cs) => cs.get(component)?.clone(),
    };
    fiber.get(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Shape;

    fn fib(coords: &[u64]) -> Fiber {
        Fiber::from_pairs(
            Shape::Interval(1000),
            coords.iter().map(|&c| (c, c as f64 + 1.0)),
        )
        .expect("test fiber is valid")
    }

    #[test]
    fn two_finger_finds_all_matches() {
        let a = fib(&[1, 3, 5, 7]);
        let b = fib(&[2, 3, 7, 9]);
        let (m, s) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let coords: Vec<u64> = m.iter().map(|(c, _, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![3, 7]);
        assert_eq!(s.matches, 2);
        assert!(s.comparisons >= 2 && s.comparisons <= 8);
    }

    #[test]
    fn all_policies_agree_on_matches() {
        let a = fib(&[0, 2, 4, 6, 8, 10, 50, 51, 52]);
        let b = fib(&[4, 5, 6, 52, 99]);
        let (m0, _) = intersect2(&a, &b, IntersectPolicy::TwoFinger);
        let (m1, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 0 });
        let (m2, _) = intersect2(&a, &b, IntersectPolicy::LeaderFollower { leader: 1 });
        let (m3, _) = intersect2(&a, &b, IntersectPolicy::SkipAhead);
        assert_eq!(m0, m1);
        assert_eq!(m0, m2);
        assert_eq!(m0, m3);
    }

    #[test]
    fn leader_follower_work_tracks_leader_occupancy() {
        let small = fib(&[100, 200]);
        let big = fib(&(0..500).collect::<Vec<u64>>());
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 0 });
        assert_eq!(s.comparisons, 2);
        let (_, s) = intersect2(&small, &big, IntersectPolicy::LeaderFollower { leader: 1 });
        assert_eq!(s.comparisons, 500);
    }

    #[test]
    fn skip_ahead_beats_two_finger_on_skewed_inputs() {
        let sparse = fib(&[999]);
        let dense = fib(&(0..1000).collect::<Vec<u64>>());
        let (_, tf) = intersect2(&sparse, &dense, IntersectPolicy::TwoFinger);
        let (_, sa) = intersect2(&sparse, &dense, IntersectPolicy::SkipAhead);
        assert!(
            sa.comparisons < tf.comparisons / 10,
            "skip-ahead {} should be far below two-finger {}",
            sa.comparisons,
            tf.comparisons
        );
    }

    #[test]
    fn intersect_many_matches_pairwise_composition() {
        let a = fib(&[1, 2, 3, 4, 5]);
        let b = fib(&[2, 4, 6]);
        let c = fib(&[4, 5, 6]);
        let (m, _) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, Coord::Point(4));
        assert_eq!(m[0].1, vec![3, 1, 0]);
    }

    #[test]
    fn union_yields_every_coordinate_once() {
        let a = fib(&[1, 3]);
        let b = fib(&[2, 3, 5]);
        let (u, s) = union_many(&[&a, &b]);
        let coords: Vec<u64> = u.iter().map(|(c, _)| c.as_point().unwrap()).collect();
        assert_eq!(coords, vec![1, 2, 3, 5]);
        assert_eq!(u[2].1, vec![Some(1), Some(1)]);
        assert_eq!(u[0].1, vec![Some(0), None]);
        assert_eq!(s.matches, 4);
    }

    #[test]
    fn union_of_empty_fibers_is_empty() {
        let a = Fiber::new(Shape::Interval(5));
        let b = Fiber::new(Shape::Interval(5));
        let (u, _) = union_many(&[&a, &b]);
        assert!(u.is_empty());
    }

    #[test]
    fn project_lookup_extracts_tuple_components() {
        let f = fib(&[7]);
        let tuple = Coord::pair(7, 3);
        assert!(project_lookup(&f, &tuple, 0).is_some());
        assert!(project_lookup(&f, &tuple, 1).is_none());
        assert!(project_lookup(&f, &Coord::Point(7), 0).is_some());
    }
}
