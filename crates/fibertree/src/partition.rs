//! Rank partitioning: shape-based and occupancy-based splitting (§3.2.1).
//!
//! Partitioning separates one rank into two: an upper rank whose coordinates
//! denote the first legal coordinate of the fiber below, and a lower rank
//! holding the original elements. Shape-based (dense-style) partitioning
//! splits at fixed coordinate boundaries; occupancy-based partitioning —
//! the paper's sparsity-aware strategy — splits so each partition holds the
//! same number of elements, using a leader tensor's boundaries so that
//! co-iterated followers stay aligned.

use crate::compressed::{CompressedTensor, Level};
use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;

/// Splits `fiber` at fixed coordinate boundaries of width `chunk`.
///
/// The result is a fiber-of-fibers; empty partitions are omitted (sparse
/// convention). Upper coordinates are the first legal coordinate of each
/// partition (`i * chunk`).
///
/// # Errors
///
/// Returns [`FibertreeError::ZeroPartition`] when `chunk == 0` and
/// [`FibertreeError::NotAnInterval`] when the fiber's coordinates are
/// tuples (shape-based splitting needs an interval coordinate space).
pub fn split_uniform_shape(fiber: &Fiber, chunk: u64) -> Result<Fiber, FibertreeError> {
    if chunk == 0 {
        return Err(FibertreeError::ZeroPartition);
    }
    let extent = fiber
        .shape()
        .as_interval()
        .ok_or_else(|| FibertreeError::NotAnInterval {
            rank: fiber.shape().to_string(),
        })?;
    let mut out = Fiber::new(Shape::Interval(extent));
    let mut current: Option<(u64, Fiber)> = None;
    for e in fiber.iter() {
        let p = e
            .coord
            .as_point()
            .ok_or_else(|| FibertreeError::NotAnInterval {
                rank: fiber.shape().to_string(),
            })?;
        let base = (p / chunk) * chunk;
        let flush = matches!(&current, Some((b, _)) if *b != base);
        if flush {
            let (b, f) = current.take().expect("flush implies a current partition");
            out.append(b, f).expect("bases strictly increase");
        }
        let (_, part) = current.get_or_insert_with(|| {
            let end = (base + chunk).min(extent);
            (base, Fiber::new(Shape::Interval(end)))
        });
        part.append(e.coord.clone(), e.payload.clone())
            .expect("source fiber is sorted");
    }
    if let Some((b, f)) = current {
        out.append(b, f).expect("last base exceeds all previous");
    }
    Ok(out)
}

/// Computes occupancy-based partition boundaries for `fiber`: the starting
/// coordinate of each group of `size` consecutive elements.
///
/// This is the *leader* side of the leader-follower paradigm: the returned
/// boundaries can be applied to follower fibers with
/// [`split_by_boundaries`] so that partitions of co-iterated tensors have
/// matching coordinate ranges.
///
/// # Errors
///
/// Returns [`FibertreeError::ZeroPartition`] when `size == 0`.
pub fn occupancy_boundaries(fiber: &Fiber, size: usize) -> Result<Vec<Coord>, FibertreeError> {
    if size == 0 {
        return Err(FibertreeError::ZeroPartition);
    }
    Ok(fiber
        .elements()
        .chunks(size)
        .map(|chunk| chunk[0].coord.clone())
        .collect())
}

/// Splits `fiber` at the given boundary coordinates.
///
/// Partition `i` holds elements with coordinates in
/// `[bounds[i], bounds[i+1])`; elements before `bounds[0]` are grouped into
/// a leading partition (only possible for followers whose coordinates
/// precede the leader's first). Empty partitions are omitted.
pub fn split_by_boundaries(fiber: &Fiber, bounds: &[Coord]) -> Fiber {
    let mut out = Fiber::new(fiber.shape().clone());
    if fiber.is_empty() {
        return out;
    }
    let mut bi = 0usize;
    let mut current: Option<(Coord, Fiber)> = None;
    for e in fiber.iter() {
        // Advance to the boundary segment containing this coordinate.
        while bi < bounds.len() && bounds[bi] <= e.coord {
            bi += 1;
        }
        let base = if bi == 0 {
            e.coord.clone() // precedes every boundary: open leading group
        } else {
            bounds[bi - 1].clone()
        };
        let flush = matches!(&current, Some((b, _)) if *b != base);
        if flush {
            let (b, f) = current.take().expect("flush implies a current partition");
            out.append(b, f).expect("bases strictly increase");
        }
        if current.is_none() {
            current = Some((base, Fiber::new(fiber.shape().clone())));
        }
        current
            .as_mut()
            .expect("current was just ensured")
            .1
            .append(e.coord.clone(), e.payload.clone())
            .expect("source fiber is sorted");
    }
    if let Some((b, f)) = current {
        out.append(b, f).expect("last base exceeds all previous");
    }
    out
}

/// Convenience: occupancy-partitions a fiber against itself as leader.
///
/// # Errors
///
/// Returns [`FibertreeError::ZeroPartition`] when `size == 0`.
pub fn split_uniform_occupancy(fiber: &Fiber, size: usize) -> Result<Fiber, FibertreeError> {
    let bounds = occupancy_boundaries(fiber, size)?;
    Ok(split_by_boundaries(fiber, &bounds))
}

/// How a tensor-level partition step splits each fiber of the target rank.
#[derive(Clone, Debug, PartialEq)]
pub enum SplitKind {
    /// Fixed coordinate chunks of the given width.
    UniformShape(u64),
    /// Equal-occupancy groups of the given size, boundaries computed on the
    /// fiber itself (the tensor is its own leader).
    UniformOccupancy(usize),
    /// Boundaries supplied externally (follower side of leader-follower);
    /// one boundary list per fiber at the target depth, in depth-first
    /// traversal order. A single list is broadcast to all fibers.
    Boundaries(Vec<Vec<Coord>>),
    /// Boundaries keyed by the coordinate path above the target rank, so
    /// followers stay aligned with the leader even when one of them is
    /// missing entire fibers.
    BoundariesByPath(std::collections::BTreeMap<Vec<Coord>, Vec<Coord>>),
}

impl Tensor {
    /// Partitions rank `rank` into two ranks `[upper_name, lower_name]`.
    ///
    /// Every fiber at that rank is split per `kind`. The rest of the tree is
    /// untouched, making this a content-preserving transform.
    ///
    /// # Errors
    ///
    /// Returns an error if the rank is unknown, the split size is zero, or
    /// shape-based splitting hits a tuple-coordinate rank.
    ///
    /// # Examples
    ///
    /// ```
    /// use teaal_fibertree::tensor::fig1_matrix_a;
    /// use teaal_fibertree::partition::SplitKind;
    /// let a = fig1_matrix_a(); // [M, K] with M fibers {0, 2}
    /// let p = a.partition_rank("K", SplitKind::UniformShape(2), "K1", "K0").unwrap();
    /// assert_eq!(p.rank_ids(), &["M".to_string(), "K1".to_string(), "K0".to_string()]);
    /// assert_eq!(p.nnz(), a.nnz());
    /// ```
    pub fn partition_rank(
        &self,
        rank: &str,
        kind: SplitKind,
        upper_name: &str,
        lower_name: &str,
    ) -> Result<Tensor, FibertreeError> {
        let d = self.rank_index(rank)?;
        let mut rank_ids = self.rank_ids().to_vec();
        let mut shapes = self.rank_shapes().to_vec();
        let rank_shape = shapes[d].clone();
        rank_ids.splice(d..=d, [upper_name.to_string(), lower_name.to_string()]);
        shapes.splice(d..=d, [rank_shape.clone(), rank_shape]);

        let mut fiber_index = 0usize;
        let mut path = Vec::new();
        let root = match self.root() {
            Payload::Val(v) => Payload::Val(*v),
            Payload::Fiber(f) => {
                Payload::Fiber(partition_at(f, d, &kind, &mut fiber_index, &mut path)?)
            }
        };
        Ok(Tensor::from_parts(self.name(), rank_ids, shapes, root))
    }

    /// Computes per-fiber occupancy boundaries at the given rank, in
    /// depth-first traversal order — the leader side of leader-follower
    /// partitioning across tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if the rank is unknown or `size == 0`.
    pub fn occupancy_boundaries_at(
        &self,
        rank: &str,
        size: usize,
    ) -> Result<Vec<Vec<Coord>>, FibertreeError> {
        let d = self.rank_index(rank)?;
        let mut out = Vec::new();
        if let Payload::Fiber(f) = self.root() {
            collect_boundaries(f, d, size, &mut out)?;
        }
        Ok(out)
    }

    /// Like [`Tensor::occupancy_boundaries_at`], but keyed by the
    /// coordinate path above the target rank so followers can align with a
    /// leader that is missing some fibers.
    ///
    /// # Errors
    ///
    /// Returns an error if the rank is unknown or `size == 0`.
    pub fn occupancy_boundaries_by_path(
        &self,
        rank: &str,
        size: usize,
    ) -> Result<std::collections::BTreeMap<Vec<Coord>, Vec<Coord>>, FibertreeError> {
        let d = self.rank_index(rank)?;
        let mut out = std::collections::BTreeMap::new();
        if let Payload::Fiber(f) = self.root() {
            let mut path = Vec::new();
            collect_boundaries_by_path(f, d, size, &mut path, &mut out)?;
        }
        Ok(out)
    }
}

impl CompressedTensor {
    /// Partitions rank `rank` into two ranks `[upper_name, lower_name]` —
    /// the compressed-native counterpart of [`Tensor::partition_rank`],
    /// bit-identical to compressing its result.
    ///
    /// Runs as a pure segment-array split: the target level's coordinate
    /// array is scanned once per fiber to find partition boundaries, a new
    /// upper level of partition bases is emitted, and the lower level
    /// reuses the original coordinate store (element order never changes).
    /// Ranks above and below — and the value arena — are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the rank is unknown, the split size is zero,
    /// shape-based splitting hits a pair-coordinate rank, or externally
    /// supplied boundaries are not representable at the rank's arity.
    pub fn partition_rank(
        &self,
        rank: &str,
        kind: SplitKind,
        upper_name: &str,
        lower_name: &str,
    ) -> Result<CompressedTensor, FibertreeError> {
        let d = self.rank_index(rank)?;
        match &kind {
            SplitKind::UniformShape(0) | SplitKind::UniformOccupancy(0) => {
                return Err(FibertreeError::ZeroPartition)
            }
            _ => {}
        }
        let mut rank_ids = self.rank_ids().to_vec();
        let mut shapes = self.rank_shapes().to_vec();
        let rank_shape = shapes[d].clone();
        rank_ids.splice(d..=d, [upper_name.to_string(), lower_name.to_string()]);
        shapes.splice(d..=d, [rank_shape.clone(), rank_shape.clone()]);

        let old = &self.levels[d];
        let arity = old.arity();
        if matches!(kind, SplitKind::UniformShape(_)) && arity != 1 {
            return Err(FibertreeError::NotAnInterval {
                rank: rank_shape.to_string(),
            });
        }
        let mut upper_level = old.new_like();
        let mut lower_segs: Vec<usize> = vec![0];

        self.walk_fibers(d, &mut |idx, path: &[Coord], s, e| {
            let by_path_bounds;
            let bounds: Option<&[Coord]> = match &kind {
                SplitKind::Boundaries(per_fiber) => Some(if per_fiber.len() == 1 {
                    &per_fiber[0]
                } else {
                    per_fiber.get(idx).ok_or(FibertreeError::ZeroPartition)?
                }),
                SplitKind::BoundariesByPath(by_path) => {
                    // The leader has no fiber here: every element opens its
                    // own group at its first coordinate (an empty boundary
                    // list), exactly like the owned follower path.
                    by_path_bounds = by_path.get(path);
                    Some(by_path_bounds.map(Vec::as_slice).unwrap_or(&[]))
                }
                _ => None,
            };
            let mut current: Option<(u64, u64)> = None;
            let mut bi = 0usize;
            for p in s..e {
                let base: (u64, u64) = match &kind {
                    SplitKind::UniformShape(chunk) => {
                        let c = self.raw_at(d, p).0;
                        ((c / chunk) * chunk, 0)
                    }
                    SplitKind::UniformOccupancy(size) => {
                        if (p - s) % size == 0 {
                            self.raw_at(d, p)
                        } else {
                            current.expect("a chunk is open after its first element")
                        }
                    }
                    SplitKind::Boundaries(_) | SplitKind::BoundariesByPath(_) => {
                        let bounds = bounds.expect("boundary kinds carry bounds");
                        let key = self.coord_key(d, p);
                        while bi < bounds.len() && !key.cmp_coord(&bounds[bi]).is_lt() {
                            bi += 1;
                        }
                        if bi == 0 {
                            // Precedes every boundary: open leading group.
                            self.raw_at(d, p)
                        } else {
                            raw_of_coord(&bounds[bi - 1], arity)?
                        }
                    }
                };
                if current != Some(base) {
                    if current.is_some() {
                        lower_segs.push(p);
                    }
                    upper_level.push_raw(base);
                    current = Some(base);
                }
            }
            if current.is_some() {
                lower_segs.push(e);
            }
            let end = upper_level.coords.len();
            upper_level.segs.push(end);
            Ok(())
        })?;

        let lower_level = Level {
            segs: lower_segs,
            upper: old.upper.clone(),
            coords: old.coords.clone(),
        };
        let mut levels = self.levels.clone();
        levels.splice(d..=d, [upper_level, lower_level]);
        Ok(CompressedTensor {
            name: self.name.clone(),
            rank_ids,
            rank_shapes: shapes,
            levels,
            values: self.values.clone(),
        })
    }

    /// Computes per-fiber occupancy boundaries at the given rank, keyed by
    /// the coordinate path above it — the compressed-native counterpart of
    /// [`Tensor::occupancy_boundaries_by_path`], producing an identical
    /// map (leaders and followers interoperate across representations).
    ///
    /// # Errors
    ///
    /// Returns an error if the rank is unknown or `size == 0`.
    pub fn occupancy_boundaries_by_path(
        &self,
        rank: &str,
        size: usize,
    ) -> Result<std::collections::BTreeMap<Vec<Coord>, Vec<Coord>>, FibertreeError> {
        if size == 0 {
            return Err(FibertreeError::ZeroPartition);
        }
        let d = self.rank_index(rank)?;
        let mut out = std::collections::BTreeMap::new();
        self.walk_fibers(d, &mut |_, path, s, e| {
            let bounds: Vec<Coord> = (s..e)
                .step_by(size)
                .map(|p| self.coord_at_level(d, p))
                .collect();
            out.insert(path.to_vec(), bounds);
            Ok(())
        })?;
        Ok(out)
    }

    /// Visits every fiber at `level` in depth-first order with its index,
    /// ancestor coordinate path, and element range.
    pub(crate) fn walk_fibers(
        &self,
        level: usize,
        visit: &mut impl FnMut(usize, &[Coord], usize, usize) -> Result<(), FibertreeError>,
    ) -> Result<(), FibertreeError> {
        #[allow(clippy::too_many_arguments)] // internal recursion carrying cursors
        fn rec(
            c: &CompressedTensor,
            cur: usize,
            s: usize,
            e: usize,
            target: usize,
            path: &mut Vec<Coord>,
            idx: &mut usize,
            visit: &mut impl FnMut(usize, &[Coord], usize, usize) -> Result<(), FibertreeError>,
        ) -> Result<(), FibertreeError> {
            if cur == target {
                let i = *idx;
                *idx += 1;
                return visit(i, path, s, e);
            }
            for p in s..e {
                path.push(c.coord_at_level(cur, p));
                let (cs, ce) = c.child_range(cur, p);
                rec(c, cur + 1, cs, ce, target, path, idx, visit)?;
                path.pop();
            }
            Ok(())
        }
        if self.order() == 0 {
            return Ok(());
        }
        let mut path = Vec::new();
        let mut idx = 0usize;
        rec(
            self,
            0,
            0,
            self.level_len(0),
            level,
            &mut path,
            &mut idx,
            visit,
        )
    }
}

/// Converts a boundary coordinate to a raw key at the given level arity.
fn raw_of_coord(c: &Coord, arity: usize) -> Result<(u64, u64), FibertreeError> {
    match (c, arity) {
        (Coord::Point(p), 1) => Ok((*p, 0)),
        (Coord::Tuple(cs), 2) => match cs.as_slice() {
            [Coord::Point(a), Coord::Point(b)] => Ok((*a, *b)),
            _ => Err(FibertreeError::NotCompressible {
                reason: format!("boundary coordinate {c} is not a pair of points"),
            }),
        },
        _ => Err(FibertreeError::NotCompressible {
            reason: format!("boundary coordinate {c} does not match the rank's arity {arity}"),
        }),
    }
}

fn collect_boundaries_by_path(
    f: &Fiber,
    depth: usize,
    size: usize,
    path: &mut Vec<Coord>,
    out: &mut std::collections::BTreeMap<Vec<Coord>, Vec<Coord>>,
) -> Result<(), FibertreeError> {
    if depth == 0 {
        out.insert(path.clone(), occupancy_boundaries(f, size)?);
        return Ok(());
    }
    for e in f.iter() {
        if let Payload::Fiber(child) = &e.payload {
            path.push(e.coord.clone());
            collect_boundaries_by_path(child, depth - 1, size, path, out)?;
            path.pop();
        }
    }
    Ok(())
}

fn collect_boundaries(
    f: &Fiber,
    depth: usize,
    size: usize,
    out: &mut Vec<Vec<Coord>>,
) -> Result<(), FibertreeError> {
    if depth == 0 {
        out.push(occupancy_boundaries(f, size)?);
        return Ok(());
    }
    for e in f.iter() {
        if let Payload::Fiber(child) = &e.payload {
            collect_boundaries(child, depth - 1, size, out)?;
        }
    }
    Ok(())
}

fn partition_at(
    f: &Fiber,
    depth: usize,
    kind: &SplitKind,
    fiber_index: &mut usize,
    path: &mut Vec<Coord>,
) -> Result<Fiber, FibertreeError> {
    if depth == 0 {
        let idx = *fiber_index;
        *fiber_index += 1;
        return match kind {
            SplitKind::UniformShape(chunk) => split_uniform_shape(f, *chunk),
            SplitKind::UniformOccupancy(size) => split_uniform_occupancy(f, *size),
            SplitKind::Boundaries(per_fiber) => {
                let bounds = if per_fiber.len() == 1 {
                    &per_fiber[0]
                } else {
                    per_fiber.get(idx).ok_or(FibertreeError::ZeroPartition)?
                };
                Ok(split_by_boundaries(f, bounds))
            }
            SplitKind::BoundariesByPath(by_path) => match by_path.get(path.as_slice()) {
                Some(bounds) => Ok(split_by_boundaries(f, bounds)),
                // The leader has no fiber here: keep everything in one
                // partition starting at the first present coordinate.
                None => Ok(split_by_boundaries(f, &[])),
            },
        };
    }
    let mut out = Fiber::new(f.shape().clone());
    for e in f.iter() {
        let child = e.payload.as_fiber().expect("interior payloads are fibers");
        path.push(e.coord.clone());
        let part = partition_at(child, depth - 1, kind, fiber_index, path)?;
        path.pop();
        out.append(e.coord.clone(), part)
            .expect("coordinate order unchanged above the partitioned rank");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::fig1_matrix_a;

    fn fib(coords: &[u64]) -> Fiber {
        Fiber::from_pairs(Shape::Interval(100), coords.iter().map(|&c| (c, 1.0)))
            .expect("test fiber is valid")
    }

    #[test]
    fn uniform_shape_splits_at_fixed_boundaries() {
        let f = fib(&[0, 1, 5, 6, 20]);
        let parts = split_uniform_shape(&f, 4).unwrap();
        let bases: Vec<u64> = parts.iter().map(|e| e.coord.as_point().unwrap()).collect();
        assert_eq!(bases, vec![0, 4, 20]);
        let occ: Vec<usize> = parts
            .iter()
            .map(|e| e.payload.as_fiber().unwrap().occupancy())
            .collect();
        assert_eq!(occ, vec![2, 2, 1]);
    }

    #[test]
    fn uniform_shape_omits_empty_partitions() {
        let f = fib(&[0, 99]);
        let parts = split_uniform_shape(&f, 10).unwrap();
        assert_eq!(parts.occupancy(), 2);
    }

    #[test]
    fn uniform_occupancy_balances_elements() {
        let f = fib(&[1, 2, 3, 50, 51, 52, 53]);
        let parts = split_uniform_occupancy(&f, 3).unwrap();
        let occ: Vec<usize> = parts
            .iter()
            .map(|e| e.payload.as_fiber().unwrap().occupancy())
            .collect();
        assert_eq!(occ, vec![3, 3, 1]); // equal modulo remainder
        let bases: Vec<u64> = parts.iter().map(|e| e.coord.as_point().unwrap()).collect();
        assert_eq!(bases, vec![1, 50, 53]);
    }

    #[test]
    fn boundaries_align_followers_to_leader() {
        let leader = fib(&[10, 20, 30, 40]);
        let bounds = occupancy_boundaries(&leader, 2).unwrap();
        assert_eq!(bounds, vec![Coord::Point(10), Coord::Point(30)]);
        let follower = fib(&[5, 15, 25, 35, 45]);
        let parts = split_by_boundaries(&follower, &bounds);
        // 5 precedes the leader's range → leading group; 15/25 fall in
        // [10,30); 35/45 in [30,∞).
        let occ: Vec<usize> = parts
            .iter()
            .map(|e| e.payload.as_fiber().unwrap().occupancy())
            .collect();
        assert_eq!(occ, vec![1, 2, 2]);
    }

    #[test]
    fn zero_partition_size_is_rejected() {
        let f = fib(&[1]);
        assert!(split_uniform_shape(&f, 0).is_err());
        assert!(occupancy_boundaries(&f, 0).is_err());
    }

    #[test]
    fn tensor_partition_preserves_content() {
        let a = fig1_matrix_a();
        let p = a
            .partition_rank("K", SplitKind::UniformShape(2), "K1", "K0")
            .unwrap();
        assert_eq!(p.order(), 3);
        assert_eq!(p.nnz(), a.nnz());
        // Leaf values survive in order.
        let vals: Vec<f64> = p.leaves().into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![3.0, 9.0, 4.0, 5.0]);
    }

    #[test]
    fn flatten_then_occupancy_partition_balances_globally() {
        // Fig. 2 end-to-end: flatten [M, K] then split into groups of 2.
        let a = fig1_matrix_a();
        let flat = a.flatten_rank("M", "MK").unwrap();
        let parts = flat
            .partition_rank("MK", SplitKind::UniformOccupancy(2), "MK1", "MK0")
            .unwrap();
        let root = parts.root_fiber().unwrap();
        let occ: Vec<usize> = root
            .iter()
            .map(|e| e.payload.as_fiber().unwrap().occupancy())
            .collect();
        assert_eq!(occ, vec![2, 2]);
    }

    #[test]
    fn partition_below_top_rank_splits_each_fiber() {
        let a = fig1_matrix_a(); // two K fibers with occupancies 1 and 3
        let p = a
            .partition_rank("K", SplitKind::UniformOccupancy(2), "K1", "K0")
            .unwrap();
        // m=0 row has 1 element → 1 partition; m=2 row has 3 → 2 partitions.
        let root = p.root_fiber().unwrap();
        let parts_per_row: Vec<usize> = root
            .iter()
            .map(|e| e.payload.as_fiber().unwrap().occupancy())
            .collect();
        assert_eq!(parts_per_row, vec![1, 2]);
    }

    #[test]
    fn tensor_boundaries_traversal_order() {
        let a = fig1_matrix_a();
        let bounds = a.occupancy_boundaries_at("K", 2).unwrap();
        assert_eq!(bounds.len(), 2); // one list per K fiber
        assert_eq!(bounds[0], vec![Coord::Point(2)]);
        assert_eq!(bounds[1], vec![Coord::Point(0), Coord::Point(2)]);
    }
}
