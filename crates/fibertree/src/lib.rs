//! # teaal-fibertree
//!
//! The *fibertree* tensor abstraction (Sze et al.; TeAAL §2.1): tensors as
//! trees of coordinate/payload fibers, uniformly covering dense and sparse
//! data, plus the content-preserving transforms — partitioning, flattening,
//! and swizzling — that the TeAAL paper shows capture sparse accelerator
//! data-orchestration idioms (§3.2).
//!
//! This crate is the substrate of the `teaal-rs` workspace: the language
//! and IR (`teaal-core`) lower mapped Einsums onto these structures, and
//! the simulator (`teaal-sim`) executes them on real tensors.
//!
//! ## Quick tour
//!
//! ```
//! use teaal_fibertree::{Tensor, partition::SplitKind, IntersectPolicy, iterate};
//!
//! // Build the sparse matrix from Fig. 1 of the paper.
//! let a = teaal_fibertree::tensor::fig1_matrix_a();
//!
//! // Content-preserving transforms compose:
//! let flat = a.flatten_rank("M", "MK")?;                       // Fig. 2, step 1
//! let parts = flat.partition_rank(
//!     "MK", partition::SplitKind::UniformOccupancy(2), "MK1", "MK0")?; // Fig. 2, step 2
//! assert_eq!(parts.nnz(), a.nnz());
//!
//! // Co-iteration with an explicit intersection-unit policy:
//! let at = a.swizzle(&["K", "M"])?;
//! let b = teaal_fibertree::tensor::fig1_vector_b();
//! let (matches, stats) = iterate::intersect2(
//!     at.root_fiber().unwrap(),
//!     b.root_fiber().unwrap(),
//!     IntersectPolicy::TwoFinger,
//! );
//! assert_eq!(matches.len(), 2); // k = 1, 2 present in both
//! assert!(stats.comparisons >= 2);
//! # use teaal_fibertree::partition;
//! # Ok::<(), teaal_fibertree::FibertreeError>(())
//! ```

#![warn(missing_docs)]

pub mod coord;
pub mod error;
pub mod fiber;
pub mod flatten;
pub mod iterate;
pub mod partition;
pub mod semiring;
pub mod swizzle;
pub mod tensor;

pub use coord::{Coord, Shape};
pub use error::FibertreeError;
pub use fiber::{Element, Fiber, Payload};
pub use iterate::{CoIterStats, IntersectPolicy};
pub use semiring::Semiring;
pub use tensor::{Tensor, TensorBuilder};
