//! # teaal-fibertree
//!
//! The *fibertree* tensor abstraction (Sze et al.; TeAAL §2.1): tensors as
//! trees of coordinate/payload fibers, uniformly covering dense and sparse
//! data, plus the content-preserving transforms — partitioning, flattening,
//! and swizzling — that the TeAAL paper shows capture sparse accelerator
//! data-orchestration idioms (§3.2).
//!
//! This crate is the substrate of the `teaal-rs` workspace: the language
//! and IR (`teaal-core`) lower mapped Einsums onto these structures, and
//! the simulator (`teaal-sim`) executes them on real tensors.
//!
//! ## Choosing a representation
//!
//! Tensor content has two storage representations behind one cursor
//! interface:
//!
//! - [`Tensor`] — the *owned* fibertree: every fiber is its own
//!   allocation, payloads nest recursively. Supports in-place writes
//!   ([`Tensor::set`], [`fiber::Fiber::get_or_insert_with`]) and
//!   arbitrary-depth flattening into tuple coordinates. Use it for small
//!   workloads, in-place construction, and as the oracle the compressed
//!   path is tested against.
//! - [`CompressedTensor`] — *compressed sparse fiber* (CSF) storage: two
//!   flat arrays per rank (coordinates narrowed to `u32` when the rank
//!   extent fits) plus one leaf value arena, built in one pass from COO
//!   entries ([`CompressedTensor::from_entries`]), streamed through a
//!   [`CompressedBuilder`], or converted from an owned tree
//!   ([`CompressedTensor::from_tensor`]). Iteration touches contiguous
//!   memory and cloning is a flat copy, so multi-million-entry inputs
//!   (graph adjacencies, SuiteSparse-scale matrices) co-iterate without
//!   pointer-chasing. Use it for every large tensor.
//!
//! The content-preserving transforms run natively on both
//! representations, bit-identically: [`CompressedTensor::swizzle`] is a
//! key-permutation re-sort (no tree build),
//! [`CompressedTensor::partition_rank`] a pure segment-array split, and
//! [`CompressedTensor::flatten_rank`] a segment fusion producing
//! pair-coordinate levels (one flatten; deeper tuples stay owned). Every
//! decompression ([`CompressedTensor::to_tensor`]) is counted by
//! [`telemetry::decompress_count`], so a pipeline that claims to be
//! compressed-native can prove it.
//!
//! [`TensorData`] erases the choice, and [`FiberView`] /
//! [`PayloadView`] cursors iterate both identically — the streaming
//! co-iteration in [`iterate`] and the simulator engine are written
//! against the cursors, never against a concrete representation. A
//! round-trip (`from_entries → compress → iterate`) yields the same
//! entries, matches, and [`CoIterStats`] either way; property tests pin
//! that equivalence, and `proptest_compressed_transforms` pins the
//! transform primitives bit-identical to the owned oracle.
//!
//! ## Quick tour
//!
//! ```
//! use teaal_fibertree::{Tensor, partition::SplitKind, IntersectPolicy, iterate};
//!
//! // Build the sparse matrix from Fig. 1 of the paper.
//! let a = teaal_fibertree::tensor::fig1_matrix_a();
//!
//! // Content-preserving transforms compose:
//! let flat = a.flatten_rank("M", "MK")?;                       // Fig. 2, step 1
//! let parts = flat.partition_rank(
//!     "MK", partition::SplitKind::UniformOccupancy(2), "MK1", "MK0")?; // Fig. 2, step 2
//! assert_eq!(parts.nnz(), a.nnz());
//!
//! // Co-iteration with an explicit intersection-unit policy:
//! let at = a.swizzle(&["K", "M"])?;
//! let b = teaal_fibertree::tensor::fig1_vector_b();
//! let (matches, stats) = iterate::intersect2(
//!     at.root_fiber().unwrap(),
//!     b.root_fiber().unwrap(),
//!     IntersectPolicy::TwoFinger,
//! );
//! assert_eq!(matches.len(), 2); // k = 1, 2 present in both
//! assert!(stats.comparisons >= 2);
//! # use teaal_fibertree::partition;
//! # Ok::<(), teaal_fibertree::FibertreeError>(())
//! ```
//!
//! The same co-iteration as a lazy stream over compressed storage:
//!
//! ```
//! use teaal_fibertree::{CompressedTensor, IntersectPolicy, TensorData};
//! use teaal_fibertree::iterate::intersect2_stream;
//!
//! let a = CompressedTensor::from_entries(
//!     "A", &["K"], &[8], vec![(vec![1], 2.0), (vec![5], 3.0)])?;
//! let b = CompressedTensor::from_entries(
//!     "B", &["K"], &[8], vec![(vec![5], 4.0), (vec![7], 1.0)])?;
//! let (da, db) = (TensorData::from(a), TensorData::from(b));
//! let mut stream = intersect2_stream(
//!     da.root_fiber_view().unwrap(),
//!     db.root_fiber_view().unwrap(),
//!     IntersectPolicy::TwoFinger,
//! );
//! let m = stream.next().unwrap();
//! assert_eq!(m.0.as_point(), Some(5));
//! assert!(stream.next().is_none());
//! assert_eq!(stream.stats().matches, 1);
//! # Ok::<(), teaal_fibertree::FibertreeError>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod compressed;
pub mod coord;
pub mod error;
pub mod fiber;
pub mod flatten;
pub mod iterate;
pub mod partition;
pub mod semiring;
pub mod stats;
pub mod swizzle;
pub mod telemetry;
pub mod tensor;
pub mod view;

pub use builder::CompressedBuilder;
pub use cache::{BoundaryRecord, ByteLru, MergeRecord, TransformCache, TransformedView};
pub use compressed::CompressedTensor;
pub use coord::{Coord, Shape};
pub use error::FibertreeError;
pub use fiber::{Element, Fiber, Payload};
pub use iterate::{CoIterStats, IntersectPolicy};
pub use semiring::Semiring;
pub use stats::{RankStats, StatsCache, TensorStats};
pub use tensor::{Tensor, TensorBuilder};
pub use view::{CoordKey, FiberView, PayloadView, TensorData};
