//! Compressed (CSF-style) fibertree storage: per-rank flat coordinate and
//! segment arrays plus a leaf value arena.
//!
//! The owned [`Tensor`](crate::Tensor) stores each fiber as its own
//! `Vec<Element>` with boxed recursive payloads — flexible (it supports
//! tuple coordinates and in-place mutation) but pointer-chasing and
//! allocation-heavy at scale. [`CompressedTensor`] is the read-optimized
//! complement: the classic *compressed sparse fiber* layout (Smith &
//! Karypis; the per-rank `C` format of the paper's format specification,
//! §4.2) where rank `d` is two flat arrays
//!
//! - `coords[d]` — the coordinates of every element at that rank, fiber by
//!   fiber, and
//! - `segs[d]` — fiber boundaries: fiber `f` of rank `d` spans
//!   `coords[d][segs[d][f] .. segs[d][f+1]]`,
//!
//! and all leaf values live in one arena indexed by bottom-rank position.
//! Element `p` of rank `d` owns child fiber `p` of rank `d + 1`, so a
//! whole multi-million-entry tensor is `2·N + 1` allocations instead of
//! one per fiber. Iteration never chases pointers and cloning is a flat
//! `memcpy`, which is what makes large-workload co-iteration (graph
//! adjacencies, SuiteSparse-scale matrices) tractable.
//!
//! Compressed tensors are read-only and hold point coordinates only; the
//! content-preserving transforms (partition / flatten / swizzle) operate
//! on owned trees. [`CompressedTensor::to_tensor`] and
//! [`CompressedTensor::from_tensor`] convert losslessly between the two,
//! and [`FiberView`](crate::view::FiberView) cursors iterate both behind
//! one interface.

use std::collections::BTreeMap;
use std::fmt;

use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;

/// One compressed rank: flat coordinates plus fiber segment boundaries.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Level {
    /// Fiber `f` spans `coords[segs[f]..segs[f+1]]`; there is always one
    /// trailing entry equal to `coords.len()`.
    pub(crate) segs: Vec<usize>,
    /// Coordinates of every element at this rank, fiber-concatenated,
    /// strictly increasing within each fiber.
    pub(crate) coords: Vec<u64>,
}

/// An `N`-tensor in compressed sparse fiber (CSF) form.
///
/// Content-equivalent to an owned [`Tensor`] with the same entries: the
/// same rank ids, shapes, and `(point, value)` leaves, stored as flat
/// per-rank arrays instead of a recursive tree. Build one directly from
/// COO entries ([`CompressedTensor::from_entries`]) or from an existing
/// tree ([`CompressedTensor::from_tensor`]).
///
/// # Examples
///
/// ```
/// use teaal_fibertree::CompressedTensor;
/// let c = CompressedTensor::from_entries(
///     "A",
///     &["M", "K"],
///     &[4, 3],
///     vec![(vec![0, 2], 3.0), (vec![2, 0], 9.0), (vec![2, 1], 4.0)],
/// ).unwrap();
/// assert_eq!(c.nnz(), 3);
/// assert_eq!(c.to_tensor().get(&[2, 1]), Some(4.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedTensor {
    name: String,
    rank_ids: Vec<String>,
    rank_shapes: Vec<Shape>,
    levels: Vec<Level>,
    /// Leaf value arena: `values[p]` is the payload of bottom-rank
    /// element `p`. For a 0-tensor this holds the single scalar.
    values: Vec<f64>,
}

impl CompressedTensor {
    /// Builds a compressed tensor directly from `(point, value)` COO
    /// entries, without materializing an owned tree.
    ///
    /// Semantics match [`Tensor::from_entries`]: entries are sorted,
    /// duplicate points are summed, and zero values are dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if an entry's arity differs from the rank count
    /// or a coordinate falls outside the shape.
    pub fn from_entries(
        name: impl Into<String>,
        rank_ids: &[&str],
        shape: &[u64],
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, FibertreeError> {
        assert_eq!(rank_ids.len(), shape.len(), "one shape per rank");
        let n = rank_ids.len();
        let rank_shapes: Vec<Shape> = shape.iter().map(|&s| Shape::Interval(s)).collect();
        let mut dedup: BTreeMap<Vec<u64>, f64> = BTreeMap::new();
        for (point, v) in entries {
            if point.len() != n {
                return Err(FibertreeError::ArityMismatch {
                    expected: n,
                    got: point.len(),
                });
            }
            for (d, &c) in point.iter().enumerate() {
                if c >= shape[d] {
                    return Err(FibertreeError::OutOfShape {
                        coord: Coord::Point(c),
                        shape: rank_shapes[d].clone(),
                    });
                }
            }
            *dedup.entry(point).or_insert(0.0) += v;
        }
        if n == 0 {
            let v = dedup.values().next().copied().unwrap_or(0.0);
            return Ok(CompressedTensor {
                name: name.into(),
                rank_ids: Vec::new(),
                rank_shapes,
                levels: Vec::new(),
                values: vec![v],
            });
        }
        let sorted = dedup.into_iter().filter(|(_, v)| *v != 0.0);
        Ok(Self::from_sorted_unique(
            name,
            rank_ids.iter().map(|s| s.to_string()).collect(),
            rank_shapes,
            sorted,
        ))
    }

    /// Core builder: `entries` must be lexicographically sorted with
    /// unique points of arity `rank_shapes.len() ≥ 1`.
    fn from_sorted_unique(
        name: impl Into<String>,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
        entries: impl IntoIterator<Item = (Vec<u64>, f64)>,
    ) -> Self {
        let n = rank_ids.len();
        let mut levels: Vec<Level> = (0..n)
            .map(|_| Level {
                segs: vec![0],
                coords: Vec::new(),
            })
            .collect();
        let mut values = Vec::new();
        let mut prev: Option<Vec<u64>> = None;
        for (point, v) in entries {
            // First rank where this point diverges from the previous one:
            // every rank from there down gains an element, and every rank
            // strictly below gains a fresh fiber.
            let diff = match &prev {
                None => 0,
                Some(p) => p
                    .iter()
                    .zip(&point)
                    .position(|(a, b)| a != b)
                    .expect("points are unique"),
            };
            for d in diff..n {
                if d > diff && !levels[d].coords.is_empty() {
                    let end = levels[d].coords.len();
                    levels[d].segs.push(end);
                }
                levels[d].coords.push(point[d]);
            }
            values.push(v);
            prev = Some(point);
        }
        // Close the trailing fiber of each rank. A rank below an empty
        // parent has no fibers at all (mirroring the owned tree, where
        // only the root fiber exists in an empty tensor), so its segment
        // list stays `[0]`.
        for d in 0..n {
            let parents = if d == 0 {
                1
            } else {
                levels[d - 1].coords.len()
            };
            if parents > 0 {
                let end = levels[d].coords.len();
                levels[d].segs.push(end);
            }
        }
        CompressedTensor {
            name: name.into(),
            rank_ids,
            rank_shapes,
            levels,
            values,
        }
    }

    /// Compresses an owned tensor, preserving every stored leaf
    /// (including explicit zeros).
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::NotCompressible`] if the tensor carries
    /// tuple coordinates (flattened ranks): transform pipelines operate
    /// on owned trees, so compress before — not after — flattening.
    pub fn from_tensor(t: &Tensor) -> Result<Self, FibertreeError> {
        let n = t.order();
        if n == 0 {
            return Ok(CompressedTensor {
                name: t.name().to_string(),
                rank_ids: Vec::new(),
                rank_shapes: Vec::new(),
                levels: Vec::new(),
                values: vec![t.get(&[]).unwrap_or(0.0)],
            });
        }
        let mut levels: Vec<Level> = (0..n)
            .map(|_| Level {
                segs: vec![0],
                coords: Vec::new(),
            })
            .collect();
        let mut values = Vec::new();
        fn walk(
            f: &Fiber,
            depth: usize,
            levels: &mut Vec<Level>,
            values: &mut Vec<f64>,
        ) -> Result<(), FibertreeError> {
            for e in f.iter() {
                let Some(c) = e.coord.as_point() else {
                    return Err(FibertreeError::NotCompressible {
                        reason: format!(
                            "rank {depth} holds tuple coordinate {}; compressed storage \
                             is point-coordinate only",
                            e.coord
                        ),
                    });
                };
                levels[depth].coords.push(c);
                match &e.payload {
                    Payload::Val(v) => values.push(*v),
                    Payload::Fiber(child) => {
                        walk(child, depth + 1, levels, values)?;
                        let end = levels[depth + 1].coords.len();
                        levels[depth + 1].segs.push(end);
                    }
                }
            }
            Ok(())
        }
        if let Some(root) = t.root_fiber() {
            walk(root, 0, &mut levels, &mut values)?;
        }
        let root_end = levels[0].coords.len();
        levels[0].segs.push(root_end);
        Ok(CompressedTensor {
            name: t.name().to_string(),
            rank_ids: t.rank_ids().to_vec(),
            rank_shapes: t.rank_shapes().to_vec(),
            levels,
            values,
        })
    }

    /// Decompresses into an owned fibertree. Lossless: the result
    /// compares equal to the tensor this was built from (or that
    /// [`Tensor::from_entries`] builds from the same entries).
    pub fn to_tensor(&self) -> Tensor {
        if self.order() == 0 {
            return Tensor::scalar(&self.name, self.values[0]);
        }
        let root = self.build_fiber(0, 0, self.levels[0].coords.len());
        Tensor::from_parts(
            &self.name,
            self.rank_ids.clone(),
            self.rank_shapes.clone(),
            Payload::Fiber(root),
        )
    }

    fn build_fiber(&self, level: usize, start: usize, end: usize) -> Fiber {
        let mut f = Fiber::new(self.rank_shapes[level].clone());
        let leaf = level + 1 == self.order();
        for p in start..end {
            let payload = if leaf {
                Payload::Val(self.values[p])
            } else {
                let (cs, ce) = self.child_range(level, p);
                Payload::Fiber(self.build_fiber(level + 1, cs, ce))
            };
            f.append(self.levels[level].coords[p], payload)
                .expect("compressed coordinates are sorted and in shape");
        }
        f
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the tensor.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The labelled ranks, top-to-bottom.
    pub fn rank_ids(&self) -> &[String] {
        &self.rank_ids
    }

    /// The per-rank shapes, in rank order.
    pub fn rank_shapes(&self) -> &[Shape] {
        &self.rank_shapes
    }

    /// Number of ranks (`N` for an `N`-tensor).
    pub fn order(&self) -> usize {
        self.rank_ids.len()
    }

    /// Number of stored leaves (matches [`Tensor::nnz`] for the same
    /// content).
    pub fn nnz(&self) -> usize {
        if self.order() == 0 {
            usize::from(self.values[0] != 0.0)
        } else {
            self.values.len()
        }
    }

    /// The leaf value arena.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Per-rank `(fiber count, total occupancy)` statistics, matching
    /// [`Tensor::rank_stats`] on equivalent content (ranks below the
    /// deepest existing fiber are omitted, as in the owned walk).
    pub fn rank_stats(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for l in &self.levels {
            let fibers = l.segs.len().saturating_sub(1);
            if fibers == 0 {
                break;
            }
            out.push((fibers, l.coords.len()));
        }
        out
    }

    /// Enumerates `(point, value)` for every nonzero leaf, in
    /// lexicographic order (matches [`Tensor::entries`]).
    pub fn entries(&self) -> Vec<(Vec<u64>, f64)> {
        let mut out = Vec::with_capacity(self.values.len());
        if self.order() == 0 {
            if self.values[0] != 0.0 {
                out.push((Vec::new(), self.values[0]));
            }
            return out;
        }
        let mut path = vec![0u64; self.order()];
        self.collect_entries(0, 0, self.levels[0].coords.len(), &mut path, &mut out);
        out
    }

    fn collect_entries(
        &self,
        level: usize,
        start: usize,
        end: usize,
        path: &mut Vec<u64>,
        out: &mut Vec<(Vec<u64>, f64)>,
    ) {
        let leaf = level + 1 == self.order();
        for p in start..end {
            path[level] = self.levels[level].coords[p];
            if leaf {
                if self.values[p] != 0.0 {
                    out.push((path.clone(), self.values[p]));
                }
            } else {
                let (cs, ce) = self.child_range(level, p);
                self.collect_entries(level + 1, cs, ce, path, out);
            }
        }
    }

    /// The coordinate array of one rank (crate-internal cursor access).
    pub(crate) fn level_coords(&self, level: usize) -> &[u64] {
        &self.levels[level].coords
    }

    /// The `[start, end)` range of element `p`'s child fiber one rank
    /// below `level`.
    pub(crate) fn child_range(&self, level: usize, p: usize) -> (usize, usize) {
        let segs = &self.levels[level + 1].segs;
        (segs[p], segs[p + 1])
    }

    /// The leaf value at bottom-rank position `p`.
    pub(crate) fn value_at(&self, p: usize) -> f64 {
        self.values[p]
    }

    /// Leaves beneath the element range `[start, end)` of `level`, in
    /// `O(depth)`: the children of a *range* are themselves a contiguous
    /// range, so each rank is one pair of segment lookups.
    pub(crate) fn leaf_count_in(&self, level: usize, start: usize, end: usize) -> usize {
        let (mut s, mut e) = (start, end);
        for d in level..self.order().saturating_sub(1) {
            let segs = &self.levels[d + 1].segs;
            s = segs[s];
            e = segs[e];
        }
        e - s
    }
}

impl fmt::Display for CompressedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] (csf, {} nnz)",
            self.name,
            self.rank_ids.join(", "),
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::fig1_matrix_a;

    #[test]
    fn from_entries_matches_owned_construction() {
        let entries = vec![
            (vec![0, 2], 3.0),
            (vec![2, 0], 9.0),
            (vec![2, 1], 4.0),
            (vec![2, 2], 5.0),
        ];
        let c = CompressedTensor::from_entries("A", &["M", "K"], &[4, 3], entries.clone()).unwrap();
        let t = Tensor::from_entries("A", &["M", "K"], &[4, 3], entries).unwrap();
        assert_eq!(c.to_tensor(), t);
        assert_eq!(c.entries(), t.entries());
        assert_eq!(c.rank_stats(), t.rank_stats());
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn csf_arrays_have_the_fig1_layout() {
        let c = CompressedTensor::from_tensor(&fig1_matrix_a()).unwrap();
        // Rank M: one fiber holding m = 0, 2.
        assert_eq!(c.levels[0].coords, vec![0, 2]);
        assert_eq!(c.levels[0].segs, vec![0, 2]);
        // Rank K: two fibers [2] and [0, 1, 2].
        assert_eq!(c.levels[1].coords, vec![2, 0, 1, 2]);
        assert_eq!(c.levels[1].segs, vec![0, 1, 4]);
        assert_eq!(c.values, vec![3.0, 9.0, 4.0, 5.0]);
    }

    #[test]
    fn roundtrip_through_tensor_is_lossless() {
        let t = fig1_matrix_a();
        let c = CompressedTensor::from_tensor(&t).unwrap();
        assert_eq!(c.to_tensor(), t);
        let again = CompressedTensor::from_tensor(&c.to_tensor()).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn duplicate_entries_sum_and_zeros_drop() {
        let c = CompressedTensor::from_entries(
            "T",
            &["I"],
            &[4],
            vec![(vec![1], 2.0), (vec![1], 3.0), (vec![2], 0.0)],
        )
        .unwrap();
        assert_eq!(c.entries(), vec![(vec![1], 5.0)]);
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn explicit_zero_leaves_survive_from_tensor() {
        let mut t = Tensor::empty("P", &["V"], &[4]);
        t.set(&[0], 0.0); // a legitimate payload (e.g. the BFS root)
        t.set(&[2], 7.0);
        let c = CompressedTensor::from_tensor(&t).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_tensor(), t);
    }

    #[test]
    fn tuple_coordinates_are_rejected() {
        let t = fig1_matrix_a().flatten_rank("M", "MK").unwrap();
        let err = CompressedTensor::from_tensor(&t);
        assert!(matches!(err, Err(FibertreeError::NotCompressible { .. })));
    }

    #[test]
    fn scalars_and_empties_compress() {
        let s = CompressedTensor::from_entries("s", &[], &[], vec![(vec![], 3.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_tensor(), Tensor::scalar("s", 3.0));
        let e = CompressedTensor::from_entries("E", &["M", "K"], &[4, 4], vec![]).unwrap();
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.to_tensor(), Tensor::empty("E", &["M", "K"], &[4, 4]));
    }

    #[test]
    fn out_of_shape_and_arity_errors_match_owned() {
        let err = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![7], 1.0)]);
        assert!(matches!(err, Err(FibertreeError::OutOfShape { .. })));
        let err = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1, 2], 1.0)]);
        assert!(matches!(err, Err(FibertreeError::ArityMismatch { .. })));
    }
}
