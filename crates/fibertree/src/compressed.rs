//! Compressed (CSF-style) fibertree storage: per-rank flat coordinate and
//! segment arrays plus a leaf value arena.
//!
//! The owned [`Tensor`] stores each fiber as its own
//! `Vec<Element>` with boxed recursive payloads — flexible (it supports
//! tuple coordinates and in-place mutation) but pointer-chasing and
//! allocation-heavy at scale. [`CompressedTensor`] is the read-optimized
//! complement: the classic *compressed sparse fiber* layout (Smith &
//! Karypis; the per-rank `C` format of the paper's format specification,
//! §4.2) where rank `d` is two flat arrays
//!
//! - `coords[d]` — the coordinates of every element at that rank, fiber by
//!   fiber, and
//! - `segs[d]` — fiber boundaries: fiber `f` of rank `d` spans
//!   `coords[d][segs[d][f] .. segs[d][f+1]]`,
//!
//! and all leaf values live in one arena indexed by bottom-rank position.
//! Element `p` of rank `d` owns child fiber `p` of rank `d + 1`, so a
//! whole multi-million-entry tensor is `O(ranks)` allocations instead of
//! one per fiber. Iteration never chases pointers and cloning is a flat
//! `memcpy`, which is what makes large-workload co-iteration (graph
//! adjacencies, SuiteSparse-scale matrices) tractable.
//!
//! Each level's coordinate array is *narrowed* per rank: when the rank's
//! extent fits, coordinates are stored as `u32` instead of `u64`
//! (`CoordStore`), halving the footprint of typical matrices. Ranks
//! produced by flattening hold *pair* coordinates as two parallel stores
//! (one per tuple component); deeper tuples are not representable and
//! stay on the owned path.
//!
//! Compressed tensors are read-only, but the content-preserving
//! transforms (swizzle / partition / flatten) have compressed-native
//! implementations that produce a new `CompressedTensor` directly from
//! the flat arrays — see [`crate::swizzle`], [`crate::partition`], and
//! [`crate::flatten`]. Streaming construction goes through
//! [`CompressedBuilder`].
//! [`CompressedTensor::to_tensor`] and [`CompressedTensor::from_tensor`]
//! convert losslessly between the representations, and
//! [`FiberView`](crate::view::FiberView) cursors iterate both behind one
//! interface. Every `to_tensor` decompression is counted by
//! [`crate::telemetry`], which is how the simulator's tests prove the hot
//! path never leaves the compressed representation.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::builder::CompressedBuilder;
use crate::coord::{Coord, Shape};
use crate::error::FibertreeError;
use crate::fiber::{Fiber, Payload};
use crate::tensor::Tensor;
use crate::view::CoordKey;

/// One level's flat coordinate array, narrowed to `u32` when the rank
/// extent allows.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum CoordStore {
    /// Coordinates fit in 32 bits (rank extent ≤ 2³²).
    U32(Vec<u32>),
    /// Full-width coordinates.
    U64(Vec<u64>),
}

impl CoordStore {
    /// An empty store wide enough for coordinates in `[0, extent)`.
    pub(crate) fn for_extent(extent: u64) -> Self {
        if extent <= u64::from(u32::MAX) + 1 {
            CoordStore::U32(Vec::new())
        } else {
            CoordStore::U64(Vec::new())
        }
    }

    /// An empty store of the same width as `self`.
    pub(crate) fn new_like(&self) -> Self {
        match self {
            CoordStore::U32(_) => CoordStore::U32(Vec::new()),
            CoordStore::U64(_) => CoordStore::U64(Vec::new()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, c: u64) {
        match self {
            CoordStore::U32(v) => {
                debug_assert!(c <= u64::from(u32::MAX), "narrowed store overflow");
                v.push(c as u32);
            }
            CoordStore::U64(v) => v.push(c),
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> u64 {
        match self {
            CoordStore::U32(v) => u64::from(v[i]),
            CoordStore::U64(v) => v[i],
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            CoordStore::U32(v) => v.len(),
            CoordStore::U64(v) => v.len(),
        }
    }

    /// A stable address-based identity for element `i`, unique within the
    /// backing allocation for the lifetime of the borrow.
    #[inline]
    fn addr_key(&self, i: usize) -> usize {
        match self {
            CoordStore::U32(v) => v.as_ptr() as usize + i * std::mem::size_of::<u32>(),
            CoordStore::U64(v) => v.as_ptr() as usize + i * std::mem::size_of::<u64>(),
        }
    }

    /// Binary search for `target` within `[start, end)`.
    fn search(&self, start: usize, end: usize, target: u64) -> Result<usize, usize> {
        match self {
            CoordStore::U32(v) => {
                if target > u64::from(u32::MAX) {
                    return Err(end - start);
                }
                v[start..end].binary_search(&(target as u32))
            }
            CoordStore::U64(v) => v[start..end].binary_search(&target),
        }
    }
}

/// One compressed rank: flat coordinates plus fiber segment boundaries.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Level {
    /// Fiber `f` spans `coords[segs[f]..segs[f+1]]`; there is always one
    /// trailing entry equal to `coords.len()`.
    pub(crate) segs: Vec<usize>,
    /// Upper tuple components, present only on flattened (pair) ranks:
    /// element `i`'s coordinate is `(upper[i], coords[i])`.
    pub(crate) upper: Option<CoordStore>,
    /// Coordinates of every element at this rank, fiber-concatenated,
    /// strictly increasing within each fiber (lexicographically, for pair
    /// ranks).
    pub(crate) coords: CoordStore,
}

impl Level {
    /// An empty level sized for `shape`: point coordinates for intervals,
    /// pair coordinates for two-component tuple shapes.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::NotCompressible`] for tuple shapes of
    /// arity ≠ 2 or with non-interval components (flattening three or more
    /// ranks stays on the owned path).
    pub(crate) fn for_shape(shape: &Shape) -> Result<Self, FibertreeError> {
        match shape {
            Shape::Interval(n) => Ok(Level {
                segs: vec![0],
                upper: None,
                coords: CoordStore::for_extent(*n),
            }),
            Shape::Tuple(cs) => {
                let [a, b] = cs.as_slice() else {
                    return Err(FibertreeError::NotCompressible {
                        reason: format!(
                            "tuple shape {shape} has arity {}; compressed levels hold \
                             points or pairs only",
                            cs.len()
                        ),
                    });
                };
                let (Some(ea), Some(eb)) = (a.as_interval(), b.as_interval()) else {
                    return Err(FibertreeError::NotCompressible {
                        reason: format!("tuple shape {shape} has non-interval components"),
                    });
                };
                Ok(Level {
                    segs: vec![0],
                    upper: Some(CoordStore::for_extent(ea)),
                    coords: CoordStore::for_extent(eb),
                })
            }
        }
    }

    /// An empty level with the same coordinate widths as `self`.
    pub(crate) fn new_like(&self) -> Self {
        Level {
            segs: vec![0],
            upper: self.upper.as_ref().map(CoordStore::new_like),
            coords: self.coords.new_like(),
        }
    }

    /// 1 for point levels, 2 for pair (flattened) levels.
    #[inline]
    pub(crate) fn arity(&self) -> usize {
        if self.upper.is_some() {
            2
        } else {
            1
        }
    }

    /// The raw `(upper, lower)` key of element `i` (`(coord, 0)` on point
    /// levels).
    #[inline]
    pub(crate) fn raw(&self, i: usize) -> (u64, u64) {
        match &self.upper {
            Some(u) => (u.get(i), self.coords.get(i)),
            None => (self.coords.get(i), 0),
        }
    }

    /// Appends a raw `(upper, lower)` key.
    pub(crate) fn push_raw(&mut self, key: (u64, u64)) {
        match &mut self.upper {
            Some(u) => {
                u.push(key.0);
                self.coords.push(key.1);
            }
            None => self.coords.push(key.0),
        }
    }

    /// The materialized coordinate of element `i`.
    #[inline]
    pub(crate) fn coord(&self, i: usize) -> Coord {
        match &self.upper {
            Some(u) => Coord::pair(u.get(i), self.coords.get(i)),
            None => Coord::Point(self.coords.get(i)),
        }
    }

    /// The allocation-free comparison key of element `i`.
    #[inline]
    pub(crate) fn key(&self, i: usize) -> CoordKey<'static> {
        match &self.upper {
            Some(u) => CoordKey::Pair(u.get(i), self.coords.get(i)),
            None => CoordKey::Point(self.coords.get(i)),
        }
    }

    /// Binary search within elements `[start, end)` for the coordinate
    /// `key` addresses, when it is representable at this level.
    pub(crate) fn search_key(&self, start: usize, end: usize, key: &CoordKey<'_>) -> Option<usize> {
        match &self.upper {
            None => {
                let p = match key {
                    CoordKey::Point(p) => *p,
                    CoordKey::Pair(..) => return None,
                    CoordKey::Borrowed(c) => c.as_point()?,
                };
                self.coords.search(start, end, p).ok().map(|i| start + i)
            }
            Some(u) => {
                let (a, b) = match key {
                    CoordKey::Pair(a, b) => (*a, *b),
                    CoordKey::Point(_) => return None,
                    CoordKey::Borrowed(c) => match c {
                        Coord::Tuple(cs) if cs.len() == 2 => (cs[0].as_point()?, cs[1].as_point()?),
                        _ => return None,
                    },
                };
                let mut lo = start;
                let mut hi = end;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    match (u.get(mid), self.coords.get(mid)).cmp(&(a, b)) {
                        Ordering::Less => lo = mid + 1,
                        Ordering::Greater => hi = mid,
                        Ordering::Equal => return Some(mid),
                    }
                }
                None
            }
        }
    }
}

/// An `N`-tensor in compressed sparse fiber (CSF) form.
///
/// Content-equivalent to an owned [`Tensor`] with the same entries: the
/// same rank ids, shapes, and `(point, value)` leaves, stored as flat
/// per-rank arrays instead of a recursive tree. Build one directly from
/// COO entries ([`CompressedTensor::from_entries`]), from a sorted stream
/// ([`CompressedBuilder`]), or from an
/// existing tree ([`CompressedTensor::from_tensor`]).
///
/// # Examples
///
/// ```
/// use teaal_fibertree::CompressedTensor;
/// let c = CompressedTensor::from_entries(
///     "A",
///     &["M", "K"],
///     &[4, 3],
///     vec![(vec![0, 2], 3.0), (vec![2, 0], 9.0), (vec![2, 1], 4.0)],
/// ).unwrap();
/// assert_eq!(c.nnz(), 3);
/// assert_eq!(c.get(&[2, 1]), Some(4.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedTensor {
    pub(crate) name: String,
    pub(crate) rank_ids: Vec<String>,
    pub(crate) rank_shapes: Vec<Shape>,
    pub(crate) levels: Vec<Level>,
    /// Leaf value arena: `values[p]` is the payload of bottom-rank
    /// element `p`. For a 0-tensor this holds the single scalar.
    pub(crate) values: Vec<f64>,
}

impl CompressedTensor {
    /// Builds a compressed tensor directly from `(point, value)` COO
    /// entries, without materializing an owned tree.
    ///
    /// Semantics match [`Tensor::from_entries`]: entries are sorted,
    /// duplicate points are summed, and zero values are dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if an entry's arity differs from the rank count
    /// or a coordinate falls outside the shape.
    pub fn from_entries(
        name: impl Into<String>,
        rank_ids: &[&str],
        shape: &[u64],
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, FibertreeError> {
        assert_eq!(rank_ids.len(), shape.len(), "one shape per rank");
        let n = rank_ids.len();
        let rank_shapes: Vec<Shape> = shape.iter().map(|&s| Shape::Interval(s)).collect();
        let mut dedup: BTreeMap<Vec<u64>, f64> = BTreeMap::new();
        for (point, v) in entries {
            if point.len() != n {
                return Err(FibertreeError::ArityMismatch {
                    expected: n,
                    got: point.len(),
                });
            }
            for (d, &c) in point.iter().enumerate() {
                if c >= shape[d] {
                    return Err(FibertreeError::OutOfShape {
                        coord: Coord::Point(c),
                        shape: rank_shapes[d].clone(),
                    });
                }
            }
            *dedup.entry(point).or_insert(0.0) += v;
        }
        let mut b = CompressedBuilder::new(
            name,
            rank_ids.iter().map(|s| s.to_string()).collect(),
            rank_shapes,
        )?;
        for (point, v) in dedup {
            if n > 0 && v == 0.0 {
                continue;
            }
            b.push_point(&point, v)?;
        }
        Ok(b.finish())
    }

    /// Compresses an owned tensor, preserving every stored leaf
    /// (including explicit zeros).
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::NotCompressible`] if the tensor carries
    /// tuple coordinates of arity greater than two: compressed levels
    /// represent points and pairs (one flatten), nothing deeper.
    pub fn from_tensor(t: &Tensor) -> Result<Self, FibertreeError> {
        let mut b =
            CompressedBuilder::new(t.name(), t.rank_ids().to_vec(), t.rank_shapes().to_vec())?;
        if t.order() == 0 {
            if let Some(v) = t.get(&[]) {
                b.push(&[], v)?;
            }
            return Ok(b.finish());
        }
        fn walk(
            f: &Fiber,
            path: &mut Vec<Coord>,
            b: &mut CompressedBuilder,
        ) -> Result<(), FibertreeError> {
            for e in f.iter() {
                path.push(e.coord.clone());
                match &e.payload {
                    Payload::Val(v) => b.push(path, *v)?,
                    Payload::Fiber(child) => walk(child, path, b)?,
                }
                path.pop();
            }
            Ok(())
        }
        if let Some(root) = t.root_fiber() {
            let mut path = Vec::new();
            walk(root, &mut path, &mut b)?;
        }
        Ok(b.finish())
    }

    /// Decompresses into an owned fibertree. Lossless: the result
    /// compares equal to the tensor this was built from (or that
    /// [`Tensor::from_entries`] builds from the same entries).
    ///
    /// Every call is counted by [`crate::telemetry::decompress_count`] —
    /// the simulator's compressed fast path asserts it stays at zero.
    pub fn to_tensor(&self) -> Tensor {
        crate::telemetry::note_decompress();
        if self.order() == 0 {
            return Tensor::scalar(&self.name, self.values[0]);
        }
        let root = self.build_fiber(0, 0, self.levels[0].coords.len());
        Tensor::from_parts(
            &self.name,
            self.rank_ids.clone(),
            self.rank_shapes.clone(),
            Payload::Fiber(root),
        )
    }

    fn build_fiber(&self, level: usize, start: usize, end: usize) -> Fiber {
        let mut f = Fiber::new(self.rank_shapes[level].clone());
        let leaf = level + 1 == self.order();
        for p in start..end {
            let payload = if leaf {
                Payload::Val(self.values[p])
            } else {
                let (cs, ce) = self.child_range(level, p);
                Payload::Fiber(self.build_fiber(level + 1, cs, ce))
            };
            f.append(self.levels[level].coord(p), payload)
                .expect("compressed coordinates are sorted and in shape");
        }
        f
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the tensor.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The labelled ranks, top-to-bottom.
    pub fn rank_ids(&self) -> &[String] {
        &self.rank_ids
    }

    /// The per-rank shapes, in rank order.
    pub fn rank_shapes(&self) -> &[Shape] {
        &self.rank_shapes
    }

    /// Number of ranks (`N` for an `N`-tensor).
    pub fn order(&self) -> usize {
        self.rank_ids.len()
    }

    /// The index of the named rank.
    ///
    /// # Errors
    ///
    /// Returns [`FibertreeError::UnknownRank`] when absent.
    pub fn rank_index(&self, rank: &str) -> Result<usize, FibertreeError> {
        self.rank_ids
            .iter()
            .position(|r| r == rank)
            .ok_or_else(|| FibertreeError::UnknownRank {
                rank: rank.to_string(),
                have: self.rank_ids.clone(),
            })
    }

    /// Number of stored leaves (matches [`Tensor::nnz`] for the same
    /// content).
    pub fn nnz(&self) -> usize {
        if self.order() == 0 {
            usize::from(self.values[0] != 0.0)
        } else {
            self.values.len()
        }
    }

    /// The leaf value arena.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Looks up the value stored at `point` by binary-searching each
    /// level, `O(order · log nnz)`. Point-coordinate ranks only.
    pub fn get(&self, point: &[u64]) -> Option<f64> {
        if self.order() == 0 {
            return if point.is_empty() {
                Some(self.values[0])
            } else {
                None
            };
        }
        if point.len() != self.order() {
            return None;
        }
        let (mut s, mut e) = (0usize, self.levels[0].coords.len());
        let mut pos = 0usize;
        for (d, &c) in point.iter().enumerate() {
            pos = self.levels[d].search_key(s, e, &CoordKey::Point(c))?;
            if d + 1 < self.order() {
                let (cs, ce) = self.child_range(d, pos);
                s = cs;
                e = ce;
            }
        }
        Some(self.values[pos])
    }

    /// Per-rank `(fiber count, total occupancy)` statistics, matching
    /// [`Tensor::rank_stats`] on equivalent content (ranks below the
    /// deepest existing fiber are omitted, as in the owned walk).
    pub fn rank_stats(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for l in &self.levels {
            let fibers = l.segs.len().saturating_sub(1);
            if fibers == 0 {
                break;
            }
            out.push((fibers, l.coords.len()));
        }
        out
    }

    /// Enumerates `(path, value)` for every nonzero leaf in lexicographic
    /// order, one coordinate per rank (pairs on flattened ranks) —
    /// matches [`Tensor::leaves`].
    pub fn leaves(&self) -> Vec<(Vec<Coord>, f64)> {
        let mut out = Vec::with_capacity(self.values.len());
        if self.order() == 0 {
            if self.values[0] != 0.0 {
                out.push((Vec::new(), self.values[0]));
            }
            return out;
        }
        let mut path = vec![Coord::Point(0); self.order()];
        self.collect_leaves(0, 0, self.levels[0].coords.len(), &mut path, &mut out);
        out
    }

    fn collect_leaves(
        &self,
        level: usize,
        start: usize,
        end: usize,
        path: &mut Vec<Coord>,
        out: &mut Vec<(Vec<Coord>, f64)>,
    ) {
        let leaf = level + 1 == self.order();
        for p in start..end {
            path[level] = self.levels[level].coord(p);
            if leaf {
                if self.values[p] != 0.0 {
                    out.push((path.clone(), self.values[p]));
                }
            } else {
                let (cs, ce) = self.child_range(level, p);
                self.collect_leaves(level + 1, cs, ce, path, out);
            }
        }
    }

    /// Enumerates `(point, value)` for every nonzero leaf, in
    /// lexicographic order (matches [`Tensor::entries`]).
    ///
    /// # Panics
    ///
    /// Panics if a flattened (pair-coordinate) rank is encountered.
    pub fn entries(&self) -> Vec<(Vec<u64>, f64)> {
        self.leaves()
            .into_iter()
            .map(|(path, v)| {
                let pt = path
                    .iter()
                    .map(|c| c.as_point().expect("entries() requires point coordinates"))
                    .collect();
                (pt, v)
            })
            .collect()
    }

    /// The coordinate of element `p` of `level`, materialized.
    pub(crate) fn coord_at_level(&self, level: usize, p: usize) -> Coord {
        self.levels[level].coord(p)
    }

    /// The allocation-free comparison key of element `p` of `level`.
    #[inline]
    pub(crate) fn coord_key(&self, level: usize, p: usize) -> CoordKey<'static> {
        self.levels[level].key(p)
    }

    /// The raw `(upper, lower)` key of element `p` of `level`
    /// (`(coord, 0)` on point levels).
    #[inline]
    pub(crate) fn raw_at(&self, level: usize, p: usize) -> (u64, u64) {
        self.levels[level].raw(p)
    }

    /// Number of elements at `level`.
    #[inline]
    pub(crate) fn level_len(&self, level: usize) -> usize {
        self.levels[level].coords.len()
    }

    /// Binary search for `key` within elements `[start, end)` of `level`.
    pub(crate) fn position_in(
        &self,
        level: usize,
        start: usize,
        end: usize,
        key: &CoordKey<'_>,
    ) -> Option<usize> {
        self.levels[level].search_key(start, end, key)
    }

    /// A stable identity for element `p` of `level`, unique within this
    /// tensor for the lifetime of the borrow.
    #[inline]
    pub(crate) fn payload_key(&self, level: usize, p: usize) -> usize {
        self.levels[level].coords.addr_key(p)
    }

    /// The `[start, end)` range of element `p`'s child fiber one rank
    /// below `level`.
    #[inline]
    pub(crate) fn child_range(&self, level: usize, p: usize) -> (usize, usize) {
        let segs = &self.levels[level + 1].segs;
        (segs[p], segs[p + 1])
    }

    /// The leaf value at bottom-rank position `p`.
    #[inline]
    pub(crate) fn value_at(&self, p: usize) -> f64 {
        self.values[p]
    }

    /// Leaves beneath the element range `[start, end)` of `level`, in
    /// `O(depth)`: the children of a *range* are themselves a contiguous
    /// range, so each rank is one pair of segment lookups.
    pub(crate) fn leaf_count_in(&self, level: usize, start: usize, end: usize) -> usize {
        let (mut s, mut e) = (start, end);
        for d in level..self.order().saturating_sub(1) {
            let segs = &self.levels[d + 1].segs;
            s = segs[s];
            e = segs[e];
        }
        e - s
    }
}

impl fmt::Display for CompressedTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] (csf, {} nnz)",
            self.name,
            self.rank_ids.join(", "),
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::fig1_matrix_a;

    pub(crate) fn coords_u64(l: &Level) -> Vec<u64> {
        (0..l.coords.len()).map(|i| l.coords.get(i)).collect()
    }

    #[test]
    fn from_entries_matches_owned_construction() {
        let entries = vec![
            (vec![0, 2], 3.0),
            (vec![2, 0], 9.0),
            (vec![2, 1], 4.0),
            (vec![2, 2], 5.0),
        ];
        let c = CompressedTensor::from_entries("A", &["M", "K"], &[4, 3], entries.clone()).unwrap();
        let t = Tensor::from_entries("A", &["M", "K"], &[4, 3], entries).unwrap();
        assert_eq!(c.to_tensor(), t);
        assert_eq!(c.entries(), t.entries());
        assert_eq!(c.rank_stats(), t.rank_stats());
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn csf_arrays_have_the_fig1_layout() {
        let c = CompressedTensor::from_tensor(&fig1_matrix_a()).unwrap();
        // Rank M: one fiber holding m = 0, 2.
        assert_eq!(coords_u64(&c.levels[0]), vec![0, 2]);
        assert_eq!(c.levels[0].segs, vec![0, 2]);
        // Rank K: two fibers [2] and [0, 1, 2].
        assert_eq!(coords_u64(&c.levels[1]), vec![2, 0, 1, 2]);
        assert_eq!(c.levels[1].segs, vec![0, 1, 4]);
        assert_eq!(c.values, vec![3.0, 9.0, 4.0, 5.0]);
    }

    #[test]
    fn small_extents_narrow_to_u32_large_stay_u64() {
        let c = CompressedTensor::from_entries(
            "T",
            &["I", "J"],
            &[100, u64::MAX / 2],
            vec![(vec![1, 1 << 40], 1.0)],
        )
        .unwrap();
        assert!(matches!(c.levels[0].coords, CoordStore::U32(_)));
        assert!(matches!(c.levels[1].coords, CoordStore::U64(_)));
        assert_eq!(c.get(&[1, 1 << 40]), Some(1.0));
    }

    #[test]
    fn roundtrip_through_tensor_is_lossless() {
        let t = fig1_matrix_a();
        let c = CompressedTensor::from_tensor(&t).unwrap();
        assert_eq!(c.to_tensor(), t);
        let again = CompressedTensor::from_tensor(&c.to_tensor()).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn duplicate_entries_sum_and_zeros_drop() {
        let c = CompressedTensor::from_entries(
            "T",
            &["I"],
            &[4],
            vec![(vec![1], 2.0), (vec![1], 3.0), (vec![2], 0.0)],
        )
        .unwrap();
        assert_eq!(c.entries(), vec![(vec![1], 5.0)]);
        assert_eq!(c.nnz(), 1);
    }

    #[test]
    fn explicit_zero_leaves_survive_from_tensor() {
        let mut t = Tensor::empty("P", &["V"], &[4]);
        t.set(&[0], 0.0); // a legitimate payload (e.g. the BFS root)
        t.set(&[2], 7.0);
        let c = CompressedTensor::from_tensor(&t).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.to_tensor(), t);
    }

    #[test]
    fn pair_coordinates_compress_after_one_flatten() {
        let t = fig1_matrix_a().flatten_rank("M", "MK").unwrap();
        let c = CompressedTensor::from_tensor(&t).unwrap();
        assert_eq!(c.order(), 1);
        assert_eq!(c.levels[0].arity(), 2);
        assert_eq!(c.to_tensor(), t);
        assert_eq!(c.leaves(), t.leaves());
    }

    #[test]
    fn deep_tuple_coordinates_are_rejected() {
        let t = crate::tensor::TensorBuilder::new("T", &["A", "B", "C"], &[2, 2, 2])
            .entry(&[0, 1, 0], 1.0)
            .entry(&[1, 0, 1], 2.0)
            .build()
            .unwrap()
            .flatten_rank("A", "AB")
            .unwrap()
            .flatten_rank("AB", "ABC")
            .unwrap();
        let err = CompressedTensor::from_tensor(&t);
        assert!(matches!(err, Err(FibertreeError::NotCompressible { .. })));
    }

    #[test]
    fn scalars_and_empties_compress() {
        let s = CompressedTensor::from_entries("s", &[], &[], vec![(vec![], 3.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_tensor(), Tensor::scalar("s", 3.0));
        let e = CompressedTensor::from_entries("E", &["M", "K"], &[4, 4], vec![]).unwrap();
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.to_tensor(), Tensor::empty("E", &["M", "K"], &[4, 4]));
    }

    #[test]
    fn out_of_shape_and_arity_errors_match_owned() {
        let err = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![7], 1.0)]);
        assert!(matches!(err, Err(FibertreeError::OutOfShape { .. })));
        let err = CompressedTensor::from_entries("T", &["I"], &[4], vec![(vec![1, 2], 1.0)]);
        assert!(matches!(err, Err(FibertreeError::ArityMismatch { .. })));
    }

    #[test]
    fn get_binary_searches_each_level() {
        let c = CompressedTensor::from_tensor(&fig1_matrix_a()).unwrap();
        assert_eq!(c.get(&[0, 2]), Some(3.0));
        assert_eq!(c.get(&[2, 1]), Some(4.0));
        assert_eq!(c.get(&[1, 0]), None);
        assert_eq!(c.get(&[0]), None);
    }
}
