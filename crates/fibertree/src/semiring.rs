//! Semirings: the redefinable `×`/`+` operator pairs of extended Einsums.
//!
//! The paper (§8, Fig. 12) models graph algorithms by "redefining the ×
//! and + operators (e.g., for SSSP, to addition and minimum,
//! respectively)". A [`Semiring`] carries those two operators together with their
//! identities; the additive identity doubles as the *implicit value of
//! missing points* in a sparse fibertree.

use std::fmt;

/// A semiring `(⊕, ⊗, 0, 1)` over `f64`.
///
/// `zero` is the additive identity and the implicit value of absent
/// fibertree points; `one` is the multiplicative identity.
///
/// # Examples
///
/// ```
/// use teaal_fibertree::Semiring;
/// let s = Semiring::arithmetic();
/// assert_eq!(s.mul(2.0, 3.0), 6.0);
/// let t = Semiring::min_plus();
/// assert_eq!(t.mul(2.0, 3.0), 5.0); // path extension
/// assert_eq!(t.add(2.0, 3.0), 2.0); // best path
/// ```
#[derive(Clone, Copy)]
pub struct Semiring {
    name: &'static str,
    mul: fn(f64, f64) -> f64,
    add: fn(f64, f64) -> f64,
    zero: f64,
    one: f64,
}

impl Semiring {
    /// Standard arithmetic `(+, ×, 0, 1)` — tensor algebra proper.
    pub fn arithmetic() -> Self {
        Semiring {
            name: "arithmetic",
            mul: |a, b| a * b,
            add: |a, b| a + b,
            zero: 0.0,
            one: 1.0,
        }
    }

    /// Tropical min-plus `(min, +, +∞, 0)` — SSSP path relaxation.
    pub fn min_plus() -> Self {
        Semiring {
            name: "min-plus",
            mul: |a, b| a + b,
            add: f64::min,
            zero: f64::INFINITY,
            one: 0.0,
        }
    }

    /// Boolean or-and `(∨, ∧, 0, 1)` — reachability / structural kernels.
    pub fn or_and() -> Self {
        Semiring {
            name: "or-and",
            mul: |a, b| f64::from(a != 0.0 && b != 0.0),
            add: |a, b| f64::from(a != 0.0 || b != 0.0),
            zero: 0.0,
            one: 1.0,
        }
    }

    /// Max-plus `(max, +, −∞, 0)` — longest/critical path kernels.
    pub fn max_plus() -> Self {
        Semiring {
            name: "max-plus",
            mul: |a, b| a + b,
            add: f64::max,
            zero: f64::NEG_INFINITY,
            one: 0.0,
        }
    }

    /// A custom semiring from raw parts.
    pub fn custom(
        name: &'static str,
        mul: fn(f64, f64) -> f64,
        add: fn(f64, f64) -> f64,
        zero: f64,
        one: f64,
    ) -> Self {
        Semiring {
            name,
            mul,
            add,
            zero,
            one,
        }
    }

    /// The semiring's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Applies the multiplicative operator.
    pub fn mul(&self, a: f64, b: f64) -> f64 {
        (self.mul)(a, b)
    }

    /// Applies the additive (reduction) operator.
    pub fn add(&self, a: f64, b: f64) -> f64 {
        (self.add)(a, b)
    }

    /// The additive identity — also the implicit value of missing points.
    pub fn zero(&self) -> f64 {
        self.zero
    }

    /// The multiplicative identity.
    pub fn one(&self) -> f64 {
        self.one
    }

    /// Whether `v` equals the additive identity (treating NaN as nonzero).
    pub fn is_zero(&self, v: f64) -> bool {
        v == self.zero
    }
}

impl Default for Semiring {
    fn default() -> Self {
        Semiring::arithmetic()
    }
}

impl fmt::Debug for Semiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semiring")
            .field("name", &self.name)
            .field("zero", &self.zero)
            .field("one", &self.one)
            .finish()
    }
}

impl PartialEq for Semiring {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities_hold() {
        let s = Semiring::arithmetic();
        assert_eq!(s.add(5.0, s.zero()), 5.0);
        assert_eq!(s.mul(5.0, s.one()), 5.0);
        assert!(s.is_zero(0.0));
    }

    #[test]
    fn min_plus_models_relaxation() {
        let s = Semiring::min_plus();
        // dist 4 via edge of weight 2 = 6; min with current 5 keeps 5.
        let candidate = s.mul(4.0, 2.0);
        assert_eq!(s.add(candidate, 5.0), 5.0);
        assert_eq!(s.add(candidate, 7.0), 6.0);
        assert!(s.is_zero(f64::INFINITY));
        assert_eq!(s.mul(3.0, s.one()), 3.0);
    }

    #[test]
    fn or_and_is_boolean() {
        let s = Semiring::or_and();
        assert_eq!(s.mul(2.0, 3.0), 1.0);
        assert_eq!(s.mul(2.0, 0.0), 0.0);
        assert_eq!(s.add(0.0, 0.0), 0.0);
        assert_eq!(s.add(1.0, 0.0), 1.0);
    }

    #[test]
    fn max_plus_identities_hold() {
        let s = Semiring::max_plus();
        assert_eq!(s.add(3.0, s.zero()), 3.0);
        assert_eq!(s.mul(3.0, s.one()), 3.0);
    }

    #[test]
    fn default_is_arithmetic() {
        assert_eq!(Semiring::default(), Semiring::arithmetic());
        assert_eq!(Semiring::default().name(), "arithmetic");
    }
}
