//! Property-based tests for the dual storage representations: owned
//! fibertrees and compressed (CSF) storage must be observationally
//! identical — same entries after a round-trip, same match streams, and
//! the same [`CoIterStats`] under every intersection policy.

use std::collections::BTreeMap;

use proptest::prelude::*;
use teaal_fibertree::iterate::{
    intersect2, intersect2_stream, intersect_many, intersect_stream, union_many, union_stream,
};
use teaal_fibertree::{CompressedTensor, FiberView, IntersectPolicy, Tensor, TensorData};

/// Up to 50 entries in an 8×8×8 3-tensor, as raw COO.
fn arb_coo3() -> impl Strategy<Value = Vec<(Vec<u64>, f64)>> {
    proptest::collection::btree_map((0u64..8, 0u64..8, 0u64..8), 1.0f64..100.0, 0..50).prop_map(
        |m| {
            m.into_iter()
                .map(|((a, b, c), v)| (vec![a, b, c], v))
                .collect()
        },
    )
}

/// A sparse coordinate set for one fiber, as a 1-rank tensor in both
/// representations (same content, independent constructions).
fn arb_vector_pair() -> impl Strategy<Value = (Tensor, CompressedTensor)> {
    proptest::collection::btree_set(0u64..200, 0..50).prop_map(|coords| {
        let entries: Vec<(Vec<u64>, f64)> = coords
            .into_iter()
            .map(|c| (vec![c], c as f64 + 1.0))
            .collect();
        let t = Tensor::from_entries("F", &["K"], &[200], entries.clone()).expect("in shape");
        let c = CompressedTensor::from_entries("F", &["K"], &[200], entries).expect("in shape");
        (t, c)
    })
}

const POLICIES: [IntersectPolicy; 3] = [
    IntersectPolicy::TwoFinger,
    IntersectPolicy::LeaderFollower { leader: 0 },
    IntersectPolicy::SkipAhead,
];

proptest! {
    /// `from_entries → compress → iterate` returns the same entries as
    /// the owned construction, and decompression is lossless.
    #[test]
    fn owned_compressed_roundtrip_equality(entries in arb_coo3()) {
        let t = Tensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries.clone())
            .expect("in shape");
        let c = CompressedTensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries)
            .expect("in shape");
        prop_assert_eq!(c.entries(), t.entries());
        prop_assert_eq!(c.nnz(), t.nnz());
        prop_assert_eq!(c.rank_stats(), t.rank_stats());
        prop_assert_eq!(&c.to_tensor(), &t);
        // Compressing the owned tree lands on the identical arrays.
        prop_assert_eq!(&CompressedTensor::from_tensor(&t).expect("points only"), &c);
    }

    /// Two-input intersection: match stream and stats agree across
    /// representations (and mixed pairs) for every policy.
    #[test]
    fn intersect2_is_representation_independent(
        (oa, ca) in arb_vector_pair(),
        (ob, cb) in arb_vector_pair(),
    ) {
        let (da, db) = (TensorData::Compressed(ca), TensorData::Compressed(cb));
        let (va, vb) = (
            da.root_fiber_view().expect("1-tensor"),
            db.root_fiber_view().expect("1-tensor"),
        );
        for policy in POLICIES {
            let (mo, so) = intersect2(
                oa.root_fiber().expect("1-tensor"),
                ob.root_fiber().expect("1-tensor"),
                policy,
            );
            // Compressed × compressed.
            let mut s = intersect2_stream(va, vb, policy);
            let mc: Vec<_> = s.by_ref().collect();
            prop_assert_eq!(&mc, &mo, "{:?}", policy);
            prop_assert_eq!(s.stats(), so.clone(), "{:?}", policy);
            // Mixed: owned leader, compressed follower.
            let mut s = intersect2_stream(
                FiberView::Owned(oa.root_fiber().expect("1-tensor")),
                vb,
                policy,
            );
            let mm: Vec<_> = s.by_ref().collect();
            prop_assert_eq!(&mm, &mo, "mixed {:?}", policy);
            prop_assert_eq!(s.stats(), so, "mixed {:?}", policy);
        }
    }

    /// Multi-input intersection cascades charge identical stats lazily
    /// and eagerly, in both representations.
    #[test]
    fn intersect_many_is_representation_independent(
        (oa, ca) in arb_vector_pair(),
        (ob, cb) in arb_vector_pair(),
        (oc, cc) in arb_vector_pair(),
    ) {
        let datas = [
            TensorData::Compressed(ca),
            TensorData::Compressed(cb),
            TensorData::Compressed(cc),
        ];
        let views: Vec<FiberView<'_>> = datas
            .iter()
            .map(|d| d.root_fiber_view().expect("1-tensor"))
            .collect();
        for policy in POLICIES {
            let (mo, so) = intersect_many(
                &[
                    oa.root_fiber().expect("1-tensor"),
                    ob.root_fiber().expect("1-tensor"),
                    oc.root_fiber().expect("1-tensor"),
                ],
                policy,
            );
            let mut s = intersect_stream(&views, policy);
            let mc: Vec<_> = s.by_ref().collect();
            prop_assert_eq!(mc, mo, "{:?}", policy);
            prop_assert_eq!(s.stats(), so, "{:?}", policy);
        }
    }

    /// Union: rows and stats agree across representations.
    #[test]
    fn union_is_representation_independent(
        (oa, ca) in arb_vector_pair(),
        (ob, cb) in arb_vector_pair(),
    ) {
        let (uo, so) = union_many(&[
            oa.root_fiber().expect("1-tensor"),
            ob.root_fiber().expect("1-tensor"),
        ]);
        let (da, db) = (TensorData::Compressed(ca), TensorData::Compressed(cb));
        let mut s = union_stream(&[
            da.root_fiber_view().expect("1-tensor"),
            db.root_fiber_view().expect("1-tensor"),
        ]);
        let uc: Vec<_> = s.by_ref().collect();
        prop_assert_eq!(uc, uo);
        prop_assert_eq!(s.stats(), so);
    }

    /// Hierarchical cursors: walking a 3-tensor leaf-by-leaf through
    /// views visits identical coordinates and values either way.
    #[test]
    fn hierarchical_view_walks_agree(entries in arb_coo3()) {
        let t = Tensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries.clone())
            .expect("in shape");
        let c = CompressedTensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries)
            .expect("in shape");
        let (dt, dc) = (TensorData::Owned(t), TensorData::Compressed(c));
        fn leaves(d: &TensorData) -> BTreeMap<Vec<u64>, f64> {
            let mut out = BTreeMap::new();
            fn walk(v: FiberView<'_>, path: &mut Vec<u64>, out: &mut BTreeMap<Vec<u64>, f64>) {
                for pos in 0..v.occupancy() {
                    path.push(v.coord_at(pos).as_point().expect("points"));
                    match v.payload_at(pos) {
                        teaal_fibertree::PayloadView::Val(x) => {
                            out.insert(path.clone(), x);
                        }
                        teaal_fibertree::PayloadView::Fiber(child) => walk(child, path, out),
                    }
                    path.pop();
                }
            }
            if let Some(root) = d.root_fiber_view() {
                walk(root, &mut Vec::new(), &mut out);
            }
            out
        }
        prop_assert_eq!(leaves(&dt), leaves(&dc));
    }
}

/// The eager `LeaderFollower { leader: 1 }` variant has an asymmetric
/// swap path; pin it separately with plain cases (proptest above covers
/// leader 0 and the symmetric policies).
#[test]
fn leader_one_swaps_positions_identically() {
    let entries_a: Vec<(Vec<u64>, f64)> =
        [1u64, 4, 9, 30].iter().map(|&c| (vec![c], 1.0)).collect();
    let entries_b: Vec<(Vec<u64>, f64)> = [4u64, 9, 10].iter().map(|&c| (vec![c], 2.0)).collect();
    let oa = Tensor::from_entries("A", &["K"], &[64], entries_a.clone()).unwrap();
    let ob = Tensor::from_entries("B", &["K"], &[64], entries_b.clone()).unwrap();
    let ca = TensorData::Compressed(
        CompressedTensor::from_entries("A", &["K"], &[64], entries_a).unwrap(),
    );
    let cb = TensorData::Compressed(
        CompressedTensor::from_entries("B", &["K"], &[64], entries_b).unwrap(),
    );
    let policy = IntersectPolicy::LeaderFollower { leader: 1 };
    let (mo, so) = intersect2(oa.root_fiber().unwrap(), ob.root_fiber().unwrap(), policy);
    let mut s = intersect2_stream(
        ca.root_fiber_view().unwrap(),
        cb.root_fiber_view().unwrap(),
        policy,
    );
    let mc: Vec<_> = s.by_ref().collect();
    assert_eq!(mc, mo);
    assert_eq!(s.stats(), so);
}
