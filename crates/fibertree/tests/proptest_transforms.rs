//! Property-based tests: every fibertree transform must be
//! content-preserving (paper §3.2) and every co-iteration must agree with
//! a set-theoretic reference.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use teaal_fibertree::iterate::{intersect2, intersect_many, union_many};
use teaal_fibertree::partition::{occupancy_boundaries, split_by_boundaries, SplitKind};
use teaal_fibertree::{Fiber, IntersectPolicy, Shape, Tensor};

fn arb_matrix() -> impl Strategy<Value = Tensor> {
    // Up to 40 entries in a 16x12 matrix.
    proptest::collection::btree_map((0u64..16, 0u64..12), 1.0f64..100.0, 0..40).prop_map(|m| {
        let entries: Vec<(Vec<u64>, f64)> =
            m.into_iter().map(|((r, c), v)| (vec![r, c], v)).collect();
        Tensor::from_entries("A", &["M", "K"], &[16, 12], entries).expect("entries in shape")
    })
}

fn arb_3tensor() -> impl Strategy<Value = Tensor> {
    proptest::collection::btree_map((0u64..8, 0u64..8, 0u64..8), 1.0f64..100.0, 0..50).prop_map(
        |m| {
            let entries: Vec<(Vec<u64>, f64)> = m
                .into_iter()
                .map(|((a, b, c), v)| (vec![a, b, c], v))
                .collect();
            Tensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries)
                .expect("entries in shape")
        },
    )
}

fn arb_fiber() -> impl Strategy<Value = Fiber> {
    proptest::collection::btree_set(0u64..200, 0..50).prop_map(|coords| {
        Fiber::from_pairs(
            Shape::Interval(200),
            coords.into_iter().map(|c| (c, c as f64)),
        )
        .expect("sorted unique coords")
    })
}

/// Canonical content signature: each leaf keyed by `(root rank letter,
/// coordinate)` pairs sorted by rank letter. Derived upper partition
/// ranks (suffix digit ≥ 1, e.g. `M1`, `MK1`) are grouping markers and
/// contribute nothing; level-0 and flattened ranks carry the original
/// coordinates, decomposed per root letter (`MK0` → `M`, `K`).
fn content(t: &Tensor) -> BTreeMap<Vec<(char, u64)>, f64> {
    t.leaves()
        .into_iter()
        .map(|(path, v)| {
            let mut key: Vec<(char, u64)> = Vec::new();
            for (rank, coord) in t.rank_ids().iter().zip(&path) {
                let base: String = rank.chars().filter(|c| c.is_alphabetic()).collect();
                let suffix: String = rank.chars().filter(|c| c.is_numeric()).collect();
                if !suffix.is_empty() && suffix != "0" {
                    continue; // upper partition rank: marker only
                }
                let comps = coord.components();
                assert_eq!(base.len(), comps.len(), "one component per root letter");
                for (letter, c) in base.chars().zip(comps) {
                    key.push((letter, c.as_point().expect("point components")));
                }
            }
            key.sort();
            (key, v)
        })
        .collect()
}

proptest! {
    #[test]
    fn swizzle_preserves_content(t in arb_matrix()) {
        let s = t.swizzle(&["K", "M"]).expect("valid permutation");
        prop_assert_eq!(content(&t), content(&s));
        prop_assert_eq!(t.nnz(), s.nnz());
        // Swizzling twice returns the original.
        let back = s.swizzle(&["M", "K"]).expect("valid permutation");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn flatten_preserves_content_and_inverts(t in arb_matrix()) {
        let flat = t.flatten_rank("M", "MK").expect("two ranks flatten");
        prop_assert_eq!(content(&t), content(&flat));
        let back = flat
            .unflatten_rank("MK", &["M", "K"], &[Shape::Interval(16), Shape::Interval(12)])
            .expect("unflatten");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn shape_partition_preserves_content(t in arb_matrix(), chunk in 1u64..20) {
        let p = t.partition_rank("K", SplitKind::UniformShape(chunk), "K1", "K0")
            .expect("shape split");
        prop_assert_eq!(content(&t), content(&p));
        prop_assert_eq!(t.nnz(), p.nnz());
    }

    #[test]
    fn occupancy_partition_preserves_content(t in arb_matrix(), size in 1usize..10) {
        let p = t.partition_rank("M", SplitKind::UniformOccupancy(size), "M1", "M0")
            .expect("occupancy split");
        prop_assert_eq!(content(&t), content(&p));
    }

    #[test]
    fn occupancy_partitions_are_balanced(f in arb_fiber(), size in 1usize..16) {
        let bounds = occupancy_boundaries(&f, size).expect("nonzero size");
        let parts = split_by_boundaries(&f, &bounds);
        let occs: Vec<usize> = parts
            .iter()
            .map(|e| e.payload.as_fiber().expect("partitions are fibers").occupancy())
            .collect();
        // Every partition except the last holds exactly `size` elements.
        for (i, occ) in occs.iter().enumerate() {
            if i + 1 < occs.len() {
                prop_assert_eq!(*occ, size);
            } else {
                prop_assert!(*occ <= size && *occ > 0);
            }
        }
        prop_assert_eq!(occs.iter().sum::<usize>(), f.occupancy());
    }

    #[test]
    fn flatten_then_occupancy_balances_globally(t in arb_3tensor(), size in 1usize..8) {
        let flat = t.flatten_rank("M", "MK").expect("flatten");
        let p = flat
            .partition_rank("MK", SplitKind::UniformOccupancy(size), "MK1", "MK0")
            .expect("split");
        prop_assert_eq!(content(&t), content(&p));
        if let Some(root) = p.root_fiber() {
            let occs: Vec<usize> = root
                .iter()
                .map(|e| e.payload.as_fiber().expect("partition fibers").occupancy())
                .collect();
            for (i, occ) in occs.iter().enumerate() {
                if i + 1 < occs.len() {
                    prop_assert_eq!(*occ, size, "interior partitions are exactly sized");
                }
            }
        }
    }

    #[test]
    fn intersection_policies_agree_with_set_reference(
        a in arb_fiber(),
        b in arb_fiber(),
    ) {
        let ca: BTreeSet<u64> =
            a.iter().map(|e| e.coord.as_point().expect("points")).collect();
        let cb: BTreeSet<u64> =
            b.iter().map(|e| e.coord.as_point().expect("points")).collect();
        let want: Vec<u64> = ca.intersection(&cb).copied().collect();
        for policy in [
            IntersectPolicy::TwoFinger,
            IntersectPolicy::LeaderFollower { leader: 0 },
            IntersectPolicy::LeaderFollower { leader: 1 },
            IntersectPolicy::SkipAhead,
        ] {
            let (m, stats) = intersect2(&a, &b, policy);
            let got: Vec<u64> =
                m.iter().map(|(c, _, _)| c.as_point().expect("points")).collect();
            prop_assert_eq!(&got, &want, "{:?}", policy);
            prop_assert_eq!(stats.matches as usize, want.len());
        }
    }

    #[test]
    fn union_agrees_with_set_reference(a in arb_fiber(), b in arb_fiber()) {
        let ca: BTreeSet<u64> =
            a.iter().map(|e| e.coord.as_point().expect("points")).collect();
        let cb: BTreeSet<u64> =
            b.iter().map(|e| e.coord.as_point().expect("points")).collect();
        let want: Vec<u64> = ca.union(&cb).copied().collect();
        let (u, _) = union_many(&[&a, &b]);
        let got: Vec<u64> =
            u.iter().map(|(c, _)| c.as_point().expect("points")).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn three_way_intersection_is_associative(
        a in arb_fiber(),
        b in arb_fiber(),
        c in arb_fiber(),
    ) {
        let (m_abc, _) = intersect_many(&[&a, &b, &c], IntersectPolicy::TwoFinger);
        let (m_cba, _) = intersect_many(&[&c, &b, &a], IntersectPolicy::TwoFinger);
        let ca: Vec<u64> =
            m_abc.iter().map(|(x, _)| x.as_point().expect("points")).collect();
        let cc: Vec<u64> =
            m_cba.iter().map(|(x, _)| x.as_point().expect("points")).collect();
        prop_assert_eq!(ca, cc);
    }

    #[test]
    fn leader_follower_boundaries_align_followers(
        leader in arb_fiber(),
        follower in arb_fiber(),
        size in 1usize..10,
    ) {
        prop_assume!(leader.occupancy() > 0);
        let bounds = occupancy_boundaries(&leader, size).expect("nonzero");
        let parts = split_by_boundaries(&follower, &bounds);
        // Content-preservation: all follower elements survive.
        let total: usize = parts
            .iter()
            .map(|e| e.payload.as_fiber().expect("fibers").occupancy())
            .sum();
        prop_assert_eq!(total, follower.occupancy());
        // Partition coordinate ranges never overlap.
        let mut last_max: Option<u64> = None;
        for e in parts.iter() {
            let f = e.payload.as_fiber().expect("fibers");
            let lo = f.iter().next().expect("non-empty").coord.as_point().expect("pt");
            let hi = f.iter().last().expect("non-empty").coord.as_point().expect("pt");
            if let Some(lm) = last_max {
                prop_assert!(lo > lm);
            }
            last_max = Some(hi);
        }
    }
}
