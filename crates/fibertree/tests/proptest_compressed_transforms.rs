//! Property tests: the compressed-native transform primitives (swizzle /
//! partition / flatten) must be *bit-identical* to the owned-path oracle —
//! transforming compressed storage directly lands on exactly the tensor
//! that compressing the owned transform's result produces (same narrowed
//! stores, same segments, same value arena), and the errors match too.

use proptest::prelude::*;
use teaal_fibertree::partition::SplitKind;
use teaal_fibertree::{CompressedTensor, FibertreeError, Tensor};

fn arb_matrix() -> impl Strategy<Value = Tensor> {
    proptest::collection::btree_map((0u64..16, 0u64..12), 1.0f64..100.0, 0..40).prop_map(|m| {
        let entries: Vec<(Vec<u64>, f64)> =
            m.into_iter().map(|((r, c), v)| (vec![r, c], v)).collect();
        Tensor::from_entries("A", &["M", "K"], &[16, 12], entries).expect("entries in shape")
    })
}

fn arb_3tensor() -> impl Strategy<Value = Tensor> {
    proptest::collection::btree_map((0u64..8, 0u64..8, 0u64..8), 1.0f64..100.0, 0..50).prop_map(
        |m| {
            let entries: Vec<(Vec<u64>, f64)> = m
                .into_iter()
                .map(|((a, b, c), v)| (vec![a, b, c], v))
                .collect();
            Tensor::from_entries("T", &["M", "K", "N"], &[8, 8, 8], entries)
                .expect("entries in shape")
        },
    )
}

/// The contract under test: applying `owned` to the tree and `comp` to
/// its compressed form must land on identical compressed tensors.
fn assert_oracle(
    t: &Tensor,
    owned: impl Fn(&Tensor) -> Result<Tensor, FibertreeError>,
    comp: impl Fn(&CompressedTensor) -> Result<CompressedTensor, FibertreeError>,
) -> Result<(), TestCaseError> {
    let c = CompressedTensor::from_tensor(t).expect("point tensors compress");
    let want = CompressedTensor::from_tensor(&owned(t).expect("owned transform"))
        .expect("owned result compresses");
    let got = comp(&c).expect("compressed transform");
    prop_assert_eq!(want, got);
    Ok(())
}

proptest! {
    #[test]
    fn swizzle_matches_owned_oracle(t in arb_3tensor()) {
        for order in [["N", "M", "K"], ["K", "N", "M"], ["M", "N", "K"]] {
            assert_oracle(
                &t,
                |t| t.swizzle(&order),
                |c| c.swizzle(&order),
            )?;
        }
    }

    #[test]
    fn transpose_matches_owned_oracle(t in arb_matrix()) {
        // CSR→CSC: the pull-to-front bucket-sort fast path must stay
        // bit-identical to the comparison-sorted owned oracle.
        assert_oracle(
            &t,
            |t| t.swizzle(&["K", "M"]),
            |c| c.swizzle(&["K", "M"]),
        )?;
    }

    #[test]
    fn shape_partition_matches_owned_oracle(t in arb_matrix(), chunk in 1u64..20) {
        for rank in ["M", "K"] {
            assert_oracle(
                &t,
                |t| t.partition_rank(rank, SplitKind::UniformShape(chunk), "U", "L"),
                |c| c.partition_rank(rank, SplitKind::UniformShape(chunk), "U", "L"),
            )?;
        }
    }

    #[test]
    fn occupancy_partition_matches_owned_oracle(t in arb_matrix(), size in 1usize..10) {
        for rank in ["M", "K"] {
            assert_oracle(
                &t,
                |t| t.partition_rank(rank, SplitKind::UniformOccupancy(size), "U", "L"),
                |c| c.partition_rank(rank, SplitKind::UniformOccupancy(size), "U", "L"),
            )?;
        }
    }

    #[test]
    fn flatten_matches_owned_oracle(t in arb_3tensor()) {
        for rank in ["M", "K"] {
            assert_oracle(
                &t,
                |t| t.flatten_rank(rank, "F"),
                |c| c.flatten_rank(rank, "F"),
            )?;
        }
    }

    #[test]
    fn flatten_then_occupancy_partition_matches_owned_oracle(
        t in arb_3tensor(),
        size in 1usize..8,
    ) {
        // Fig. 2 end-to-end on pair coordinates: flatten, then split the
        // fused rank by occupancy (upper coordinates become pairs).
        assert_oracle(
            &t,
            |t| {
                t.flatten_rank("M", "MK")?
                    .partition_rank("MK", SplitKind::UniformOccupancy(size), "MK1", "MK0")
            },
            |c| {
                c.flatten_rank("M", "MK")?
                    .partition_rank("MK", SplitKind::UniformOccupancy(size), "MK1", "MK0")
            },
        )?;
    }

    #[test]
    fn leader_follower_boundaries_match_owned_oracle(
        leader in arb_matrix(),
        follower in arb_matrix(),
        size in 1usize..8,
    ) {
        // The leader publishes per-path boundaries; both representations
        // must publish the same map, and followers of either
        // representation must split identically under it.
        let cl = CompressedTensor::from_tensor(&leader).expect("compresses");
        let owned_bounds = leader.occupancy_boundaries_by_path("K", size).expect("bounds");
        let comp_bounds = cl.occupancy_boundaries_by_path("K", size).expect("bounds");
        prop_assert_eq!(&owned_bounds, &comp_bounds);

        assert_oracle(
            &follower,
            |t| {
                t.partition_rank(
                    "K",
                    SplitKind::BoundariesByPath(owned_bounds.clone()),
                    "K1",
                    "K0",
                )
            },
            |c| {
                c.partition_rank(
                    "K",
                    SplitKind::BoundariesByPath(comp_bounds.clone()),
                    "K1",
                    "K0",
                )
            },
        )?;
    }

    #[test]
    fn two_level_shape_partition_matches_owned_oracle(
        t in arb_matrix(),
        c1 in 2u64..16,
        c0 in 1u64..8,
    ) {
        // ExTensor-style double split of one rank.
        assert_oracle(
            &t,
            |t| {
                t.partition_rank("K", SplitKind::UniformShape(c1), "K2", "Kx")?
                    .partition_rank("Kx", SplitKind::UniformShape(c0), "K1", "K0")
            },
            |c| {
                c.partition_rank("K", SplitKind::UniformShape(c1), "K2", "Kx")?
                    .partition_rank("Kx", SplitKind::UniformShape(c0), "K1", "K0")
            },
        )?;
    }
}

#[test]
fn error_paths_match_the_owned_transforms() {
    let t = Tensor::from_entries("A", &["M", "K"], &[8, 8], vec![(vec![1, 2], 1.0)]).unwrap();
    let c = CompressedTensor::from_tensor(&t).unwrap();
    // Bad permutations.
    assert!(matches!(
        c.swizzle(&["M"]),
        Err(FibertreeError::BadPermutation { .. })
    ));
    assert!(matches!(
        c.swizzle(&["M", "Q"]),
        Err(FibertreeError::BadPermutation { .. })
    ));
    // Zero split sizes.
    assert!(matches!(
        c.partition_rank("K", SplitKind::UniformShape(0), "U", "L"),
        Err(FibertreeError::ZeroPartition)
    ));
    assert!(matches!(
        c.partition_rank("K", SplitKind::UniformOccupancy(0), "U", "L"),
        Err(FibertreeError::ZeroPartition)
    ));
    assert!(matches!(
        c.occupancy_boundaries_by_path("K", 0),
        Err(FibertreeError::ZeroPartition)
    ));
    // Unknown ranks.
    assert!(matches!(
        c.partition_rank("Q", SplitKind::UniformShape(2), "U", "L"),
        Err(FibertreeError::UnknownRank { .. })
    ));
    assert!(matches!(
        c.flatten_rank("Q", "F"),
        Err(FibertreeError::UnknownRank { .. })
    ));
    // Bottom rank cannot flatten.
    assert!(matches!(
        c.flatten_rank("K", "F"),
        Err(FibertreeError::UnknownRank { .. })
    ));
    // Shape-splitting a pair rank fails like the owned NotAnInterval.
    let flat = c.flatten_rank("M", "MK").unwrap();
    assert!(matches!(
        flat.partition_rank("MK", SplitKind::UniformShape(2), "U", "L"),
        Err(FibertreeError::NotAnInterval { .. })
    ));
    // A second flatten needs the owned path.
    let t3 = Tensor::from_entries(
        "T",
        &["A", "B", "C"],
        &[4, 4, 4],
        vec![(vec![1, 2, 3], 1.0)],
    )
    .unwrap();
    let c3 = CompressedTensor::from_tensor(&t3).unwrap();
    let once = c3.flatten_rank("A", "AB").unwrap();
    assert!(matches!(
        once.flatten_rank("AB", "ABC"),
        Err(FibertreeError::NotCompressible { .. })
    ));
}

#[test]
fn empty_tensors_transform_in_both_representations() {
    let t = Tensor::empty("E", &["M", "K"], &[8, 8]);
    let c = CompressedTensor::from_tensor(&t).unwrap();
    for (owned, comp) in [
        (
            t.swizzle(&["K", "M"]).unwrap(),
            c.swizzle(&["K", "M"]).unwrap(),
        ),
        (
            t.partition_rank("M", SplitKind::UniformOccupancy(2), "U", "L")
                .unwrap(),
            c.partition_rank("M", SplitKind::UniformOccupancy(2), "U", "L")
                .unwrap(),
        ),
        (
            t.flatten_rank("M", "MK").unwrap(),
            c.flatten_rank("M", "MK").unwrap(),
        ),
    ] {
        assert_eq!(CompressedTensor::from_tensor(&owned).unwrap(), comp);
    }
}
