//! # teaal-graph
//!
//! Vertex-centric programming on TeAAL (paper §8): an iterative driver
//! that executes the Graphicionado / GraphDynS / proposal Einsum cascades
//! (Fig. 12) once per superstep, carrying the property vector and active
//! set between iterations, and aggregating the per-iteration model
//! statistics the paper reports (apply operations, memory traffic,
//! execution time — Fig. 13).
//!
//! A specific algorithm manifests by redefining the `×` and `+` operators:
//! BFS and SSSP both run over the min-plus semiring
//! ([`teaal_sim::OpTable::sssp`]); BFS simply uses unit edge weights.

#![warn(missing_docs)]

use teaal_accel::vertex_centric::{self, GraphDesign, GRAPHDYNS_CHUNKS};
use teaal_fibertree::{Tensor, TensorData};
use teaal_sim::{CancelToken, EvalLimits, OpTable, SimError};
use teaal_workloads::Graph;

/// Which vertex-centric algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Breadth-first search (hop counts; unit weights).
    Bfs,
    /// Single-source shortest paths (weighted relaxation).
    Sssp,
}

impl Algorithm {
    /// Whether edge weights are loaded (affects the CSR format, §8).
    pub fn weighted(&self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
        }
    }
}

/// Finite stand-in for "undiscovered": keeps the dense property vector
/// explicitly materialized (the min-plus empty value `+∞` would be pruned
/// as an implicit zero).
pub const UNDISCOVERED: f64 = 1e30;

/// Model statistics for one superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationStats {
    /// Active vertices entering the iteration.
    pub active: usize,
    /// Vertices receiving messages (`nnz(R)`).
    pub touched: usize,
    /// Vertices actually modified (`nnz(M)`).
    pub modified: usize,
    /// Apply operations the design performs this iteration.
    pub apply_ops: u64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Modelled execution time in seconds.
    pub seconds: f64,
    /// Modelled energy in joules.
    pub energy_joules: f64,
}

/// Aggregated run metrics.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
}

impl RunMetrics {
    /// Total modelled time.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|i| i.seconds).sum()
    }

    /// Total DRAM traffic.
    pub fn total_dram_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.dram_bytes).sum()
    }

    /// Total apply operations.
    pub fn total_apply_ops(&self) -> u64 {
        self.iterations.iter().map(|i| i.apply_ops).sum()
    }

    /// Total energy.
    pub fn total_energy_joules(&self) -> f64 {
        self.iterations.iter().map(|i| i.energy_joules).sum()
    }
}

/// The result of a vertex-centric run.
#[derive(Clone, Debug)]
pub struct VertexRun {
    /// Final per-vertex property (distance), `f64::INFINITY` when
    /// unreached.
    pub distances: Vec<f64>,
    /// Model statistics.
    pub metrics: RunMetrics,
}

/// Runs `algorithm` from `root` on `graph` using `design`'s cascade, one
/// simulated superstep per frontier expansion.
///
/// # Errors
///
/// Returns [`SimError`] if the generated specification fails to lower or
/// execute (it cannot for the shipped designs; covered by tests).
pub fn run(
    design: GraphDesign,
    algorithm: Algorithm,
    graph: &Graph,
    root: u64,
) -> Result<VertexRun, SimError> {
    run_with_threads(design, algorithm, graph, root, teaal_sim::default_threads())
}

/// [`run`] with an explicit worker cap for each superstep's simulation.
///
/// Every superstep executes its cascade through
/// [`teaal_sim::Simulator::with_threads`]: independent Einsums run concurrently and
/// eligible Einsums shard their top loop rank over the shared compressed
/// adjacency, which stays borrowed — never cloned — across workers.
/// Distances and per-iteration statistics are bit-identical for every
/// thread count.
///
/// # Errors
///
/// As [`run`].
pub fn run_with_threads(
    design: GraphDesign,
    algorithm: Algorithm,
    graph: &Graph,
    root: u64,
    threads: usize,
) -> Result<VertexRun, SimError> {
    run_with_limits(
        design,
        algorithm,
        graph,
        root,
        threads,
        &EvalLimits::default(),
    )
}

/// [`run_with_threads`] under resource budgets: the limits' deadline and
/// step/output budgets are charged across every superstep's simulation
/// and additionally checked at each superstep boundary, so a run over a
/// large graph returns a structured
/// [`SimError::DeadlineExceeded`]/[`SimError::BudgetExceeded`] instead of
/// running unbounded. A cache-byte bound applies to the run's shared
/// evaluation context.
///
/// # Errors
///
/// As [`run`], plus the structured limit errors above.
pub fn run_with_limits(
    design: GraphDesign,
    algorithm: Algorithm,
    graph: &Graph,
    root: u64,
    threads: usize,
    limits: &EvalLimits,
) -> Result<VertexRun, SimError> {
    let v = graph.vertices;
    let weighted = algorithm.weighted();
    let spec = vertex_centric::spec(design, v, weighted);
    // One evaluation context for the whole run: when a design's mapping
    // transforms the adjacency, the transformed view is built in the
    // first superstep and served from the shared cache (content-addressed
    // by tensor hash + chain) in every later one.
    let ctx = teaal_sim::EvalContext::new();
    if let Some(bytes) = limits.max_resident_cache_bytes {
        ctx.set_max_cache_bytes(bytes);
    }
    // One token for the whole run, so budgets accumulate across
    // supersteps rather than resetting each iteration.
    let token = limits.is_limited().then(|| CancelToken::new(limits));
    let mut sim = ctx
        .simulator(&spec)?
        .with_ops(OpTable::sssp())
        .with_threads(threads);
    if let Some(t) = &token {
        sim = sim.with_cancel(t.clone());
    }

    // One compressed adjacency, built once in the mapping's `[S, V]`
    // storage order (so the engine's offline swizzle is the identity) and
    // *borrowed* by every superstep — the engine iterates it through
    // cursors, so a multi-million-edge graph is never cloned or rebuilt.
    // Supersteps run through `run_data_compressed`, so per-iteration
    // outputs stream into CSF arrays instead of rebuilding owned trees.
    let g = TensorData::Compressed(graph.compressed_source_major("G", ["S", "V"], weighted));

    let mut properties = vec![UNDISCOVERED; v as usize];
    properties[root as usize] = 0.0;
    let mut active: Vec<(u64, f64)> = vec![(root, 0.0)];
    let mut metrics = RunMetrics::default();
    let chunk = (v / GRAPHDYNS_CHUNKS).max(1);

    let max_iterations = 10_000;
    for _ in 0..max_iterations {
        if active.is_empty() {
            break;
        }
        if let Some(t) = &token {
            t.checkpoint()?;
        }
        let a0 = build_vector("A0", "S", v, active.iter().copied());
        let p0 = build_vector(
            "P0",
            "V",
            v,
            properties.iter().enumerate().map(|(i, &p)| (i as u64, p)),
        );
        let report = sim.run_data_compressed(&[&g, &a0, &p0])?;

        let r = report.outputs.get("R").map_or(0, TensorData::nnz);
        let modified = report.outputs.get("M").map_or(0, TensorData::nnz);
        let updates: Vec<(u64, f64)> = match design {
            GraphDesign::Graphicionado => {
                let p1 = report.outputs.get("P1").expect("cascade produces P1");
                p1.entries()
                    .into_iter()
                    .map(|(p, val)| (p[0], val))
                    .collect()
            }
            _ => {
                let pw = report.outputs.get("PW").expect("cascade produces PW");
                pw.entries()
                    .into_iter()
                    .map(|(p, val)| (p[0], val))
                    .collect()
            }
        };

        let apply_ops = match design {
            // Graphicionado applies to every vertex, every iteration.
            GraphDesign::Graphicionado => v,
            // GraphDynS applies at bitmap-chunk granularity: every vertex
            // of every chunk that received a message.
            GraphDesign::GraphDynS => {
                let touched_chunks = report
                    .outputs
                    .get("R")
                    .map(|r| {
                        let mut chunks: Vec<u64> =
                            r.entries().iter().map(|(p, _)| p[0] / chunk).collect();
                        chunks.sort_unstable();
                        chunks.dedup();
                        chunks.len() as u64
                    })
                    .unwrap_or(0);
                (touched_chunks * chunk).min(v)
            }
            // The proposal applies only to vertices actually modified.
            GraphDesign::Proposal => modified as u64,
        };

        metrics.iterations.push(IterationStats {
            active: active.len(),
            touched: r,
            modified,
            apply_ops,
            dram_bytes: report.dram_bytes(),
            seconds: report.seconds,
            energy_joules: report.energy_joules,
        });

        // Commit property updates and build the next frontier.
        for &(vertex, value) in &updates {
            properties[vertex as usize] = value;
        }
        let a1 = report.outputs.get("A1").expect("cascade produces A1");
        active = a1
            .entries()
            .into_iter()
            .map(|(p, val)| (p[0], val))
            .collect();
    }

    let distances = properties
        .into_iter()
        .map(|p| if p >= UNDISCOVERED { f64::INFINITY } else { p })
        .collect();
    Ok(VertexRun { distances, metrics })
}

/// Builds a 1-tensor that may legitimately hold `0.0` payloads (the root's
/// distance), bypassing the implicit-zero dropping of
/// `Tensor::from_entries`. Frontier and property vectors are small and
/// rebuilt each superstep, so they stay in the owned representation.
fn build_vector(
    name: &str,
    rank: &str,
    extent: u64,
    entries: impl Iterator<Item = (u64, f64)>,
) -> TensorData {
    let mut t = Tensor::empty(name, &[rank], &[extent]);
    let mut sorted: Vec<(u64, f64)> = entries.collect();
    sorted.sort_by_key(|(c, _)| *c);
    for (c, val) in sorted {
        t.set(&[c], val);
    }
    TensorData::Owned(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_workloads::graphs::{reference_bfs, reference_sssp};

    fn small_graph(weighted: bool) -> Graph {
        Graph::power_law(200, 900, weighted, 17)
    }

    #[test]
    fn bfs_matches_reference_on_all_designs() {
        let g = small_graph(false);
        let root = g.hub();
        let want = reference_bfs(&g, root);
        for design in [
            GraphDesign::Graphicionado,
            GraphDesign::GraphDynS,
            GraphDesign::Proposal,
        ] {
            let run = run(design, Algorithm::Bfs, &g, root).expect("runs");
            assert_eq!(run.distances, want, "{design:?} BFS distances diverge");
            assert!(!run.metrics.iterations.is_empty());
        }
    }

    #[test]
    fn sssp_matches_reference_on_all_designs() {
        let g = small_graph(true);
        let root = g.hub();
        let want = reference_sssp(&g, root);
        for design in [
            GraphDesign::Graphicionado,
            GraphDesign::GraphDynS,
            GraphDesign::Proposal,
        ] {
            let run = run(design, Algorithm::Sssp, &g, root).expect("runs");
            for (vtx, (got, exp)) in run.distances.iter().zip(&want).enumerate() {
                assert!(
                    (got - exp).abs() < 1e-9 || (got.is_infinite() && exp.is_infinite()),
                    "{design:?} SSSP vertex {vtx}: {got} vs {exp}"
                );
            }
        }
    }

    #[test]
    fn apply_ops_order_matches_the_paper() {
        // Graphicionado ≥ GraphDynS ≥ Proposal, with strict separation on
        // a graph where the frontier stays well below |V|.
        let g = small_graph(false);
        let root = g.hub();
        let gi = run(GraphDesign::Graphicionado, Algorithm::Bfs, &g, root).unwrap();
        let gd = run(GraphDesign::GraphDynS, Algorithm::Bfs, &g, root).unwrap();
        let pr = run(GraphDesign::Proposal, Algorithm::Bfs, &g, root).unwrap();
        let (a, b, c) = (
            gi.metrics.total_apply_ops(),
            gd.metrics.total_apply_ops(),
            pr.metrics.total_apply_ops(),
        );
        assert!(a >= b, "Graphicionado {a} vs GraphDynS {b}");
        assert!(b >= c, "GraphDynS {b} vs Proposal {c}");
        assert!(a > c, "the proposal must beat the baseline: {a} vs {c}");
    }

    #[test]
    fn proposal_is_fastest_graphicionado_slowest() {
        let g = small_graph(false);
        let root = g.hub();
        let gi = run(GraphDesign::Graphicionado, Algorithm::Bfs, &g, root).unwrap();
        let pr = run(GraphDesign::Proposal, Algorithm::Bfs, &g, root).unwrap();
        assert!(
            pr.metrics.total_seconds() < gi.metrics.total_seconds(),
            "proposal {} should beat graphicionado {}",
            pr.metrics.total_seconds(),
            gi.metrics.total_seconds()
        );
        assert!(pr.metrics.total_dram_bytes() < gi.metrics.total_dram_bytes());
    }

    #[test]
    fn supersteps_never_decompress_the_adjacency() {
        // The driver borrows one compressed adjacency across every
        // superstep and assembles outputs through run_data_compressed;
        // nothing on that path may round-trip through an owned tree. The
        // counter is process-wide and monotonic, so this holds even with
        // the other tests running concurrently — none of them may
        // decompress either.
        let g = small_graph(false);
        let before = teaal_fibertree::telemetry::decompress_count();
        let run = run(GraphDesign::GraphDynS, Algorithm::Bfs, &g, g.hub()).unwrap();
        assert!(!run.metrics.iterations.is_empty());
        assert_eq!(
            teaal_fibertree::telemetry::decompress_count(),
            before,
            "a graph superstep decompressed a tensor on the hot path"
        );
    }

    #[test]
    fn threaded_supersteps_are_bit_identical_to_sequential() {
        // The graph driver is where shard parallelism really bites: the
        // min-plus reduction is exact, so overlap merges are eligible and
        // supersteps genuinely shard. Distances and every per-iteration
        // statistic must match the sequential run bit for bit.
        let g = small_graph(true);
        let root = g.hub();
        for design in [
            GraphDesign::Graphicionado,
            GraphDesign::GraphDynS,
            GraphDesign::Proposal,
        ] {
            let seq = run_with_threads(design, Algorithm::Sssp, &g, root, 1).unwrap();
            for threads in [2usize, 4] {
                let par = run_with_threads(design, Algorithm::Sssp, &g, root, threads).unwrap();
                assert_eq!(
                    seq.distances, par.distances,
                    "{design:?} x{threads}: distances diverge"
                );
                assert_eq!(
                    seq.metrics.iterations, par.metrics.iterations,
                    "{design:?} x{threads}: iteration stats diverge"
                );
            }
        }
    }

    #[test]
    fn iteration_stats_are_populated() {
        let g = small_graph(false);
        let run = run(GraphDesign::Proposal, Algorithm::Bfs, &g, g.hub()).unwrap();
        let first = &run.metrics.iterations[0];
        assert_eq!(first.active, 1);
        assert!(first.touched > 0);
        assert!(first.dram_bytes > 0);
        assert!(first.seconds > 0.0);
        assert!(run.metrics.total_energy_joules() > 0.0);
    }

    #[test]
    fn step_budget_trips_across_supersteps_with_progress() {
        let g = small_graph(false);
        let root = g.hub();
        let limits = EvalLimits::default().with_max_engine_steps(50);
        let err = run_with_limits(GraphDesign::Proposal, Algorithm::Bfs, &g, root, 1, &limits)
            .expect_err("a 50-step budget cannot cover a 900-edge BFS");
        match err {
            SimError::BudgetExceeded { used, progress, .. } => {
                assert!(used >= 50, "budget tripped before it was spent: {used}");
                assert!(progress.engine_steps >= 50);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        // Vertex 3 has no incoming edges.
        let adjacency = Tensor::from_entries(
            "G",
            &["D", "S"],
            &[4, 4],
            vec![(vec![1, 0], 1.0), (vec![2, 1], 1.0)],
        )
        .unwrap();
        let g = Graph {
            adjacency,
            vertices: 4,
            edges: 2,
        };
        let run = run(GraphDesign::Proposal, Algorithm::Bfs, &g, 0).unwrap();
        assert_eq!(run.distances[0], 0.0);
        assert_eq!(run.distances[1], 1.0);
        assert_eq!(run.distances[2], 2.0);
        assert!(run.distances[3].is_infinite());
    }
}
