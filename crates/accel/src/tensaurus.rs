//! Tensaurus (HPCA 2020): the mixed sparse-dense accelerator the paper
//! lists among its modeled designs (§5), evaluated here on MTTKRP —
//! Table 2's `C[i, r] = T[i, j, k] · B[j, r] · A[k, r]`.
//!
//! Tensaurus's `SF3` (scalar-fiber-fiber) dataflow keeps the sparse tensor
//! `T` outermost and streams the dense factor matrices: each nonzero
//! `T[i, j, k]` scales the fiber `B[j, :]` and accumulates into `C[i, :]`
//! via the dense `A[k, :]` fiber.

use teaal_core::TeaalSpec;

/// MTTKRP with an SF3-style mapping: the sparse `T` drives iteration of
/// `[I, J, K]` and the dense `R` rank streams innermost, spatially across
/// PEs.
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    T: [I, J, K]\n",
    "    B: [J, R]\n",
    "    A: [K, R]\n",
    "    C: [I, R]\n",
    "  expressions:\n",
    "    - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    C: [I, J, K, R]\n",
    "  spacetime:\n",
    "    C:\n",
    "      space: [R]\n",
    "      time: [I, J, K]\n",
    "format:\n",
    "  T:\n",
    "    CSF:\n",
    "      I:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      J:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  B:\n",
    "    Dense:\n",
    "      J:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      R:\n",
    "        format: U\n",
    "        pbits: 64\n",
    "  A:\n",
    "    Dense:\n",
    "      K:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      R:\n",
    "        format: U\n",
    "        pbits: 64\n",
    "  C:\n",
    "    Dense:\n",
    "      I:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      R:\n",
    "        format: U\n",
    "        pbits: 64\n",
    "architecture:\n",
    "  clock: 2_000_000_000\n",
    "  configs:\n",
    "    Default:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: HBM\n",
    "          class: DRAM\n",
    "          bandwidth: 128_000_000_000\n",
    "        - name: SB\n",
    "          class: buffet\n",
    "          width: 512\n",
    "          depth: 32768\n",
    "          bandwidth: 512_000_000_000\n",
    "      subtree:\n",
    "        - name: PE\n",
    "          count: 8\n",
    "          local:\n",
    "            - name: MulALU\n",
    "              class: compute\n",
    "              op: mul\n",
    "              count: 16\n",
    "            - name: AddALU\n",
    "              class: compute\n",
    "              op: add\n",
    "              count: 16\n",
    "binding:\n",
    "  C:\n",
    "    config: Default\n",
    "    storage:\n",
    "      - component: SB\n",
    "        tensor: B\n",
    "        config: Dense\n",
    "        rank: J\n",
    "        type: elem\n",
    "        style: lazy\n",
    "      - component: SB\n",
    "        tensor: A\n",
    "        config: Dense\n",
    "        rank: K\n",
    "        type: elem\n",
    "        style: lazy\n",
    "    compute:\n",
    "      - component: MulALU\n",
    "        op: mul\n",
    "      - component: AddALU\n",
    "        op: add\n",
);

/// Parses and validates the Tensaurus specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded Tensaurus spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;
    use teaal_fibertree::TensorBuilder;
    use teaal_sim::Simulator;

    #[test]
    fn spec_parses_and_lowers() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].loop_ranks.len(), 4);
        assert!(plans[0]
            .loop_ranks
            .iter()
            .any(|l| l.name == "R" && l.is_space));
    }

    #[test]
    fn mttkrp_computes_correctly() {
        let t = TensorBuilder::new("T", &["I", "J", "K"], &[3, 3, 3])
            .entry(&[0, 1, 2], 2.0)
            .entry(&[2, 0, 0], 3.0)
            .build()
            .unwrap();
        let b = TensorBuilder::new("B", &["J", "R"], &[3, 2])
            .entry(&[0, 0], 1.0)
            .entry(&[0, 1], 2.0)
            .entry(&[1, 0], 3.0)
            .entry(&[1, 1], 4.0)
            .build()
            .unwrap();
        let a = TensorBuilder::new("A", &["K", "R"], &[3, 2])
            .entry(&[0, 0], 5.0)
            .entry(&[0, 1], 6.0)
            .entry(&[2, 0], 7.0)
            .entry(&[2, 1], 8.0)
            .build()
            .unwrap();
        let sim = Simulator::new(spec()).unwrap();
        let report = sim.run(&[t, b, a]).unwrap();
        let c = report.final_output().unwrap();
        // C[0, r] = 2 · B[1, r] · A[2, r]; C[2, r] = 3 · B[0, r] · A[0, r].
        assert_eq!(c.get(&[0, 0]), Some(2.0 * 3.0 * 7.0));
        assert_eq!(c.get(&[0, 1]), Some(2.0 * 4.0 * 8.0));
        assert_eq!(c.get(&[2, 0]), Some(3.0 * 1.0 * 5.0));
        assert_eq!(c.get(&[2, 1]), Some(3.0 * 2.0 * 6.0));
    }
}
