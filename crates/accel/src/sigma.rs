//! SIGMA (HPCA 2020): occupancy-balanced PE filling with a bitmap format
//! and a pre-filtering Einsum cascade (paper Fig. 8c, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8c's three-Einsum cascade (`S` marks the non-empty rows of `B`,
/// `T` filters `A` by them, `Z` multiplies) with the Table 5
/// configuration: 128 FlexDPEs × 128 PEs at 500 MHz, 32 MB data SRAM at
/// 960 GB/s, 1024 GB/s of HBM. The stationary matrix is distributed by
/// flattening `(M, K0)` and occupancy-partitioning so only nonzeros
/// occupy PEs.
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    S: [K, M]\n",
    "    T: [K, M]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - S[k, m] = take(A[k, m], B[k, n], 0)\n",
    "    - T[k, m] = take(A[k, m], S[k, m], 0)\n",
    "    - Z[m, n] = T[k, m] * B[k, n]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    S: [K, M]\n",
    "    T: [K, M]\n",
    "    Z: [M, N]\n",
    "  partitioning:\n",
    "    Z:\n",
    "      K: [uniform_shape(128)]\n",
    "      (M, K0): [flatten()]\n",
    "      MK0: [uniform_occupancy(T.16384)]\n",
    "  loop-order:\n",
    "    S: [K, M, N]\n",
    "    T: [K, M]\n",
    "    Z: [K1, MK01, MK00, N]\n",
    "  spacetime:\n",
    "    S:\n",
    "      space: []\n",
    "      time: [K, M, N]\n",
    "    T:\n",
    "      space: []\n",
    "      time: [K, M]\n",
    "    Z:\n",
    "      space: [MK00]\n",
    "      time: [K1, MK01, N.coord]\n",
    "format:\n",
    "  A:\n",
    "    Bitmap:\n",
    "      K:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 32\n",
    "      M:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 64\n",
    "  B:\n",
    "    Bitmap:\n",
    "      K:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 64\n",
    "  T:\n",
    "    Bitmap:\n",
    "      K:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 32\n",
    "      M:\n",
    "        format: B\n",
    "        cbits: 1\n",
    "        pbits: 64\n",
    "  Z:\n",
    "    CSR:\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "architecture:\n",
    "  clock: 500_000_000\n",
    "  configs:\n",
    "    Default:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: HBM\n",
    "          class: DRAM\n",
    "          bandwidth: 1_024_000_000_000\n",
    "        - name: DataSRAM\n",
    "          class: buffet\n",
    "          width: 1024\n",
    "          depth: 262144\n",
    "          bandwidth: 960_000_000_000\n",
    "      subtree:\n",
    "        - name: FlexDPE\n",
    "          count: 128\n",
    "          local:\n",
    "            - name: Reduce\n",
    "              class: compute\n",
    "              op: add\n",
    "              count: 64\n",
    "          subtree:\n",
    "            - name: PE\n",
    "              count: 128\n",
    "              local:\n",
    "                - name: MulALU\n",
    "                  class: compute\n",
    "                  op: mul\n",
    "binding:\n",
    "  S:\n",
    "    config: Default\n",
    "  T:\n",
    "    config: Default\n",
    "  Z:\n",
    "    config: Default\n",
    "    storage:\n",
    "      - component: DataSRAM\n",
    "        tensor: T\n",
    "        config: Bitmap\n",
    "        rank: K1\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: K1\n",
    "      - component: DataSRAM\n",
    "        tensor: B\n",
    "        config: Bitmap\n",
    "        rank: K1\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: K1\n",
    "    compute:\n",
    "      - component: MulALU\n",
    "        op: mul\n",
    "      - component: Reduce\n",
    "        op: add\n",
);

/// Parses and validates the SIGMA specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded SIGMA spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;

    #[test]
    fn spec_has_table5_parameters() {
        let s = spec();
        assert_eq!(s.architecture.clock_hz, 5e8);
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("MulALU").unwrap();
        assert_eq!(pes, 128 * 128);
        // 1024 bits × 262144 = 32 MB data SRAM.
        let (sram, _) = cfg.find("DataSRAM").unwrap();
        match &sram.class {
            teaal_core::spec::ComponentClass::Buffer {
                width,
                depth,
                bandwidth,
                ..
            } => {
                assert_eq!(width * depth / 8, 32 * 1024 * 1024);
                assert_eq!(*bandwidth, 960e9);
            }
            other => panic!("DataSRAM should be a buffer, got {other:?}"),
        }
    }

    #[test]
    fn cascade_prefilters_then_multiplies() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans.len(), 3);
        // Z's stationary operand is flattened + occupancy partitioned.
        let z = &plans[2];
        let t_plan = z.tensor_plan("T").unwrap();
        assert!(t_plan
            .steps
            .iter()
            .any(|st| matches!(st, teaal_core::ir::PlanStep::Flatten { .. })));
        assert!(t_plan
            .steps
            .iter()
            .any(|st| matches!(st, teaal_core::ir::PlanStep::SplitOccLeader { .. })));
        // All PEs work in parallel on MK00.
        assert!(z.loop_ranks.iter().any(|l| l.name == "MK00" && l.is_space));
    }

    #[test]
    fn bitmap_format_sizes_like_sigma() {
        let s = spec();
        let fmt = &s.format.tensors["A"]["Bitmap"];
        // A bitmap rank stores shape bits of mask plus packed payloads.
        let rf = &fmt.ranks["M"];
        assert_eq!(rf.fiber_bits(10, 128), 128 + 10 * 64);
    }
}
