//! SIGMA (HPCA 2020): occupancy-balanced PE filling with a bitmap format
//! and a pre-filtering Einsum cascade (paper Fig. 8c, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8c's three-Einsum cascade (`S` marks the non-empty rows of `B`,
/// `T` filters `A` by them, `Z` multiplies) with the Table 5
/// configuration: 128 FlexDPEs × 128 PEs at 500 MHz, 32 MB data SRAM at
/// 960 GB/s, 1024 GB/s of HBM. The stationary matrix is distributed by
/// flattening `(M, K0)` and occupancy-partitioning so only nonzeros
/// occupy PEs.
pub const YAML: &str = teaal_fixtures::SIGMA_EM;

/// Parses and validates the SIGMA specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded SIGMA spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;

    #[test]
    fn spec_has_table5_parameters() {
        let s = spec();
        assert_eq!(s.architecture.clock_hz, 5e8);
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("MulALU").unwrap();
        assert_eq!(pes, 128 * 128);
        // 1024 bits × 262144 = 32 MB data SRAM.
        let (sram, _) = cfg.find("DataSRAM").unwrap();
        match &sram.class {
            teaal_core::spec::ComponentClass::Buffer {
                width,
                depth,
                bandwidth,
                ..
            } => {
                assert_eq!(width * depth / 8, 32 * 1024 * 1024);
                assert_eq!(*bandwidth, 960e9);
            }
            other => panic!("DataSRAM should be a buffer, got {other:?}"),
        }
    }

    #[test]
    fn cascade_prefilters_then_multiplies() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans.len(), 3);
        // Z's stationary operand is flattened + occupancy partitioned.
        let z = &plans[2];
        let t_plan = z.tensor_plan("T").unwrap();
        assert!(t_plan
            .steps
            .iter()
            .any(|st| matches!(st, teaal_core::ir::PlanStep::Flatten { .. })));
        assert!(t_plan
            .steps
            .iter()
            .any(|st| matches!(st, teaal_core::ir::PlanStep::SplitOccLeader { .. })));
        // All PEs work in parallel on MK00.
        assert!(z.loop_ranks.iter().any(|l| l.name == "MK00" && l.is_space));
    }

    #[test]
    fn bitmap_format_sizes_like_sigma() {
        let s = spec();
        let fmt = &s.format.tensors["A"]["Bitmap"];
        // A bitmap rank stores shape bits of mask plus packed payloads.
        let rf = &fmt.ranks["M"];
        assert_eq!(rf.fiber_bits(10, 128), 128 + 10 * 64);
    }
}
