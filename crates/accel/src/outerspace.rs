//! OuterSPACE (HPCA 2018): outer-product SpMSpM with serial
//! multiply/merge phases and a custom array-of-linked-lists intermediate
//! (paper Figs. 3 and 5, Table 5).

use teaal_core::TeaalSpec;

/// The full TeAAL specification: Fig. 3's einsum + mapping, Fig. 5's
/// `LinkedLists` format, and a Table 5 architecture with the two phase
/// topologies (OuterSPACE reorganizes itself between multiply and merge).
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [K, M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - T[k, m, n] = A[k, m] * B[k, n]\n",
    "    - Z[m, n] = T[k, m, n]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [M, K, N]\n",
    "    Z: [M, N]\n",
    "  partitioning:\n",
    "    T:\n",
    "      (K, M): [flatten()]\n",
    "      KM: [uniform_occupancy(A.256), uniform_occupancy(A.16)]\n",
    "    Z:\n",
    "      M: [uniform_occupancy(T.128), uniform_occupancy(T.8)]\n",
    "  loop-order:\n",
    "    T: [KM2, KM1, KM0, N]\n",
    "    Z: [M2, M1, M0, N, K]\n",
    "  spacetime:\n",
    "    T:\n",
    "      space: [KM1, KM0]\n",
    "      time: [KM2, N]\n",
    "    Z:\n",
    "      space: [M1, M0]\n",
    "      time: [M2, N, K]\n",
    "format:\n",
    "  A:\n",
    "    CSC:\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  B:\n",
    "    CSR:\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  T:\n",
    "    LinkedLists:\n",
    "      M:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        fhbits: 32\n",
    "        layout: interleaved\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  Z:\n",
    "    CSR:\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "architecture:\n",
    "  clock: 1_500_000_000\n",
    "  configs:\n",
    "    Multiply:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: HBM\n",
    "          class: DRAM\n",
    "          bandwidth: 128_000_000_000\n",
    "      subtree:\n",
    "        - name: PT\n",
    "          count: 16\n",
    "          local:\n",
    "            - name: L0Cache\n",
    "              class: cache\n",
    "              width: 512\n",
    "              depth: 256\n",
    "              bandwidth: 768_000_000_000\n",
    "          subtree:\n",
    "            - name: PE\n",
    "              count: 16\n",
    "              local:\n",
    "                - name: MulALU\n",
    "                  class: compute\n",
    "                  op: mul\n",
    "    Merge:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: HBM\n",
    "          class: DRAM\n",
    "          bandwidth: 128_000_000_000\n",
    "      subtree:\n",
    "        - name: PT\n",
    "          count: 16\n",
    "          local:\n",
    "            - name: CacheSPM\n",
    "              class: cache\n",
    "              width: 512\n",
    "              depth: 256\n",
    "              bandwidth: 768_000_000_000\n",
    "          subtree:\n",
    "            - name: PE\n",
    "              count: 8\n",
    "              local:\n",
    "                - name: SortHW\n",
    "                  class: merger\n",
    "                  inputs: 16\n",
    "                  comparator_radix: 2\n",
    "                  outputs: 1\n",
    "                  order: fifo\n",
    "                - name: AddALU\n",
    "                  class: compute\n",
    "                  op: add\n",
    "binding:\n",
    "  T:\n",
    "    config: Multiply\n",
    "    storage:\n",
    "      - component: HBM\n",
    "        tensor: A\n",
    "        config: CSC\n",
    "        rank: KM2\n",
    "        type: elem\n",
    "        style: lazy\n",
    "      - component: L0Cache\n",
    "        tensor: B\n",
    "        config: CSR\n",
    "        rank: N\n",
    "        type: elem\n",
    "        style: lazy\n",
    "    compute:\n",
    "      - component: MulALU\n",
    "        op: mul\n",
    "  Z:\n",
    "    config: Merge\n",
    "    storage:\n",
    "      - component: HBM\n",
    "        tensor: T\n",
    "        config: LinkedLists\n",
    "        rank: M2\n",
    "        type: elem\n",
    "        style: lazy\n",
    "    compute:\n",
    "      - component: AddALU\n",
    "        op: add\n",
    "    merger:\n",
    "      - component: SortHW\n",
    "        tensor: T\n",
);

/// Parses and validates the OuterSPACE specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded OuterSPACE spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_has_two_phases() {
        let s = spec();
        assert_eq!(s.cascade.equations().len(), 2);
        assert_eq!(s.architecture.configs.len(), 2);
        assert_eq!(s.architecture.clock_hz, 1.5e9);
        let multiply = s.architecture.config(Some("Multiply")).unwrap();
        let (_, pes) = multiply.find("MulALU").unwrap();
        assert_eq!(pes, 256); // 16 PTs × 16 PEs
        let merge = s.architecture.config(Some("Merge")).unwrap();
        let (_, pes) = merge.find("AddALU").unwrap();
        assert_eq!(pes, 128); // half the PEs active in merge
    }

    #[test]
    fn linkedlists_format_matches_fig5() {
        let s = spec();
        let t = &s.format.tensors["T"]["LinkedLists"];
        assert_eq!(t.element_bits("N"), 96);
        assert_eq!(t.ranks["N"].fhbits, 32);
    }

    #[test]
    fn phases_use_different_configs_so_no_fusion() {
        let s = spec();
        assert_eq!(
            s.binding.for_einsum("T").arch_config.as_deref(),
            Some("Multiply")
        );
        assert_eq!(
            s.binding.for_einsum("Z").arch_config.as_deref(),
            Some("Merge")
        );
    }
}
