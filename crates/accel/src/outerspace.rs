//! OuterSPACE (HPCA 2018): outer-product SpMSpM with serial
//! multiply/merge phases and a custom array-of-linked-lists intermediate
//! (paper Figs. 3 and 5, Table 5).

use teaal_core::TeaalSpec;

/// The full TeAAL specification: Fig. 3's einsum + mapping, Fig. 5's
/// `LinkedLists` format, and a Table 5 architecture with the two phase
/// topologies (OuterSPACE reorganizes itself between multiply and merge).
pub const YAML: &str = teaal_fixtures::OUTERSPACE_EM;

/// Parses and validates the OuterSPACE specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded OuterSPACE spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_has_two_phases() {
        let s = spec();
        assert_eq!(s.cascade.equations().len(), 2);
        assert_eq!(s.architecture.configs.len(), 2);
        assert_eq!(s.architecture.clock_hz, 1.5e9);
        let multiply = s.architecture.config(Some("Multiply")).unwrap();
        let (_, pes) = multiply.find("MulALU").unwrap();
        assert_eq!(pes, 256); // 16 PTs × 16 PEs
        let merge = s.architecture.config(Some("Merge")).unwrap();
        let (_, pes) = merge.find("AddALU").unwrap();
        assert_eq!(pes, 128); // half the PEs active in merge
    }

    #[test]
    fn linkedlists_format_matches_fig5() {
        let s = spec();
        let t = &s.format.tensors["T"]["LinkedLists"];
        assert_eq!(t.element_bits("N"), 96);
        assert_eq!(t.ranks["N"].fhbits, 32);
    }

    #[test]
    fn phases_use_different_configs_so_no_fusion() {
        let s = spec();
        assert_eq!(
            s.binding.for_einsum("T").arch_config.as_deref(),
            Some("Multiply")
        );
        assert_eq!(
            s.binding.for_einsum("Z").arch_config.as_deref(),
            Some("Merge")
        );
    }
}
