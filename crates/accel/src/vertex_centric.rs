//! Vertex-centric programming accelerators (paper §8, Fig. 12):
//! Graphicionado, GraphDynS, and the paper's proposed optimization.
//!
//! All three designs share Graphicionado's Table 5 hardware (1 GHz,
//! 8 streams, 64 MB eDRAM, 68 GB/s) so comparisons are apples-to-apples,
//! exactly as the paper evaluates them. A specific algorithm manifests by
//! redefining `×`/`+` (min-plus for BFS/SSSP — see
//! `teaal_sim::OpTable::sssp`).
//!
//! The per-iteration cascades:
//!
//! - **Graphicionado** (Fig. 12a): processes active edges, then applies to
//!   *every* vertex (`P1 = R + P0` over the dense property vector).
//! - **GraphDynS-like** (Fig. 12b): builds `MP = take(R, P0, 1)` so only
//!   candidate vertices apply, but tracks them with a 256-entry bitmap —
//!   expressed as a `uniform_shape` partitioning with *eager* loading of
//!   whole property chunks.
//! - **Proposal**: drops the partitioning, loading and applying only the
//!   vertices actually touched.

use teaal_core::TeaalSpec;

/// Which of the three designs to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphDesign {
    /// Baseline Graphicionado (Fig. 12a).
    Graphicionado,
    /// GraphDynS-like with the 256-chunk bitmap (Fig. 12b).
    GraphDynS,
    /// The paper's proposal: apply only to modified vertices.
    Proposal,
}

impl GraphDesign {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            GraphDesign::Graphicionado => "Graphicionado",
            GraphDesign::GraphDynS => "GraphDynS-like",
            GraphDesign::Proposal => "Our Proposal",
        }
    }
}

/// Number of bitmap entries GraphDynS tracks (paper §8).
pub const GRAPHDYNS_CHUNKS: u64 = 256;

fn arch_and_edge_format(design: GraphDesign, weighted: bool) -> String {
    // Graphicionado stores the graph as an edge list (source id reloaded
    // per edge); GraphDynS and the proposal switch to CSR and skip the
    // weight for unweighted algorithms (paper §8).
    let (v_cbits, v_pbits) = match design {
        GraphDesign::Graphicionado => (64, 64),
        _ => (32, if weighted { 64 } else { 0 }),
    };
    format!(
        concat!(
            "format:\n",
            "  G:\n",
            "    Graph:\n",
            "      S:\n",
            "        format: C\n",
            "        cbits: 32\n",
            "        pbits: 32\n",
            "      V:\n",
            "        format: C\n",
            "        cbits: {v_cbits}\n",
            "        pbits: {v_pbits}\n",
            "  P0:\n",
            "    Dense:\n",
            "      V:\n",
            "        format: U\n",
            "        pbits: 64\n",
            "architecture:\n",
            "  clock: 1_000_000_000\n",
            "  configs:\n",
            "    Default:\n",
            "      name: System\n",
            "      local:\n",
            "        - name: DRAM\n",
            "          class: DRAM\n",
            "          bandwidth: 68_000_000_000\n",
            "        - name: eDRAM\n",
            "          class: buffet\n",
            "          width: 512\n",
            "          depth: 1048576\n",
            "          bandwidth: 512_000_000_000\n",
            "      subtree:\n",
            "        - name: Stream\n",
            "          count: 8\n",
            "          local:\n",
            "            - name: FrontierIx\n",
            "              class: intersect\n",
            "              type: leader-follower\n",
            "              leader: 1\n",
            "            - name: GatherIx\n",
            "              class: intersect\n",
            "              type: leader-follower\n",
            "              leader: 0\n",
            "            - name: ProcALU\n",
            "              class: compute\n",
            "              op: mul\n",
            "            - name: ApplyALU\n",
            "              class: compute\n",
            "              op: add\n",
        ),
        v_cbits = v_cbits,
        v_pbits = v_pbits,
    )
}

/// Builds the full per-iteration specification for one design.
///
/// `vertices` sizes the GraphDynS property chunks (`V / 256`);
/// `weighted` selects the SSSP edge format (BFS drops the weights).
pub fn yaml(design: GraphDesign, vertices: u64, weighted: bool) -> String {
    let mut s = String::new();
    s.push_str(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    G: [S, V]\n",
        "    A0: [S]\n",
        "    P0: [V]\n",
        "    SO: [S, V]\n",
        "    R: [V]\n",
    ));
    match design {
        GraphDesign::Graphicionado => s.push_str(concat!(
            "    P1: [V]\n",
            "    M: [V]\n",
            "    A1: [V]\n",
            "  expressions:\n",
            "    - SO[v, s] = take(G[v, s], A0[s], 0)\n",
            "    - R[v] = SO[v, s] * A0[s]\n",
            "    - P1[v] = R[v] + P0[v]\n",
            "    - M[v] = P1[v] - P0[v]\n",
            "    - A1[v] = take(M[v], P1[v], 1)\n",
        )),
        _ => s.push_str(concat!(
            "    MP: [V]\n",
            "    NP: [V]\n",
            "    M: [V]\n",
            "    PW: [V]\n",
            "    A1: [V]\n",
            "  expressions:\n",
            "    - SO[v, s] = take(G[v, s], A0[s], 0)\n",
            "    - R[v] = SO[v, s] * A0[s]\n",
            "    - MP[v] = take(R[v], P0[v], 1)\n",
            "    - NP[v] = R[v] + MP[v]\n",
            "    - M[v] = NP[v] - MP[v]\n",
            "    - PW[v] = take(M[v], NP[v], 1)\n",
            "    - A1[v] = take(M[v], NP[v], 1)\n",
        )),
    }

    s.push_str(concat!(
        "mapping:\n",
        "  rank-order:\n",
        "    G: [S, V]\n",
        "    SO: [S, V]\n",
        "  loop-order:\n",
        "    SO: [S, V]\n",
        "    R: [S, V]\n",
    ));
    if design == GraphDesign::GraphDynS {
        let chunk = (vertices / GRAPHDYNS_CHUNKS).max(1);
        s.push_str(&format!(
            concat!(
                "  partitioning:\n",
                "    MP:\n",
                "      V: [uniform_shape({chunk})]\n",
            ),
            chunk = chunk
        ));
    }
    // Edges are sharded across the 8 streams by source vertex; the apply
    // phase shards by destination vertex (Graphicionado's organization).
    s.push_str(concat!(
        "  spacetime:\n",
        "    SO:\n",
        "      space: [S]\n",
        "      time: [V]\n",
        "    R:\n",
        "      space: [S]\n",
        "      time: [V]\n",
    ));
    match design {
        GraphDesign::Graphicionado => s.push_str(concat!(
            "    P1:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    M:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    A1:\n",
            "      space: [V]\n",
            "      time: []\n",
        )),
        GraphDesign::GraphDynS => s.push_str(concat!(
            "    MP:\n",
            "      space: [V0]\n",
            "      time: [V1]\n",
            "    NP:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    M:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    PW:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    A1:\n",
            "      space: [V]\n",
            "      time: []\n",
        )),
        GraphDesign::Proposal => s.push_str(concat!(
            "    MP:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    NP:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    M:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    PW:\n",
            "      space: [V]\n",
            "      time: []\n",
            "    A1:\n",
            "      space: [V]\n",
            "      time: []\n",
        )),
    }

    s.push_str(&arch_and_edge_format(design, weighted));

    // Bindings. Every Einsum runs on the one topology. Deliberate DRAM
    // residents: the graph G, the property reads of P0, and the property
    // write-back (all of P1 for Graphicionado; the masked PW for the
    // others). Everything else — the temp property array R, the apply
    // bookkeeping MP/NP/M, and the active lists — lives in the 64 MB
    // eDRAM, as in the published designs. Binding the apply ALU to both
    // P1 and M keeps Graphicionado's apply Einsums in separate blocks
    // (§4.3 criterion 3), so the full dense P1 write-back hits DRAM —
    // exactly the traffic GraphDynS's masked write-back avoids.
    let edram = |tensor: &str, rank: &str| {
        format!(
            concat!(
                "      - component: eDRAM\n",
                "        tensor: {tensor}\n",
                "        rank: {rank}\n",
                "        type: elem\n",
                "        style: lazy\n",
            ),
            tensor = tensor,
            rank = rank
        )
    };
    let p0_dram = |rank: &str, style: &str| {
        format!(
            concat!(
                "      - component: DRAM\n",
                "        tensor: P0\n",
                "        config: Dense\n",
                "        rank: {rank}\n",
                "        type: elem\n",
                "        style: {style}\n",
            ),
            rank = rank,
            style = style
        )
    };
    s.push_str("binding:\n");
    s.push_str(concat!(
        "  SO:\n",
        "    config: Default\n",
        "    storage:\n",
        "      - component: DRAM\n",
        "        tensor: G\n",
        "        config: Graph\n",
        "        rank: S\n",
        "        type: elem\n",
        "        style: lazy\n",
    ));
    s.push_str(&edram("A0", "S"));
    s.push_str(concat!(
        "    intersect:\n",
        "      - component: FrontierIx\n",
        "  R:\n",
        "    config: Default\n",
        "    storage:\n",
    ));
    s.push_str(&edram("R", "V"));
    s.push_str(&edram("A0", "S"));
    s.push_str(concat!(
        "    compute:\n",
        "      - component: ProcALU\n",
        "        op: mul\n",
        "    intersect:\n",
        "      - component: FrontierIx\n",
    ));
    match design {
        GraphDesign::Graphicionado => {
            s.push_str("  P1:\n    config: Default\n    storage:\n");
            s.push_str(&edram("R", "V"));
            s.push_str(&p0_dram("V", "lazy"));
            s.push_str(concat!(
                "    compute:\n",
                "      - component: ApplyALU\n",
                "        op: add\n",
            ));
            s.push_str("  M:\n    config: Default\n    storage:\n");
            s.push_str(&edram("P1", "V"));
            s.push_str(&edram("P0", "V"));
            s.push_str(&edram("M", "V"));
            s.push_str(concat!(
                "    compute:\n",
                "      - component: ApplyALU\n",
                "        op: add\n",
            ));
            s.push_str("  A1:\n    config: Default\n    storage:\n");
            s.push_str(&edram("M", "V"));
            s.push_str(&edram("P1", "V"));
            s.push_str(&edram("A1", "V"));
        }
        GraphDesign::GraphDynS => {
            s.push_str("  MP:\n    config: Default\n    storage:\n");
            s.push_str(&edram("R", "V1"));
            s.push_str(&edram("MP", "V1"));
            s.push_str(&p0_dram("V1", "eager"));
            s.push_str(concat!(
                "    compute:\n",
                "      - component: ApplyALU\n",
                "        op: add\n",
                "    intersect:\n",
                "      - component: GatherIx\n",
            ));
            for (einsum, reads) in [
                ("NP", ["R", "MP"]),
                ("M", ["NP", "MP"]),
                ("A1", ["M", "NP"]),
            ] {
                s.push_str(&format!("  {einsum}:\n    config: Default\n    storage:\n"));
                for t in reads {
                    s.push_str(&edram(t, "V"));
                }
                if einsum != "A1" {
                    s.push_str(&edram(einsum, "V"));
                } else {
                    s.push_str(&edram("A1", "V"));
                }
            }
            // PW (the masked write-back) goes to DRAM: no own binding.
            s.push_str("  PW:\n    config: Default\n    storage:\n");
            s.push_str(&edram("M", "V"));
            s.push_str(&edram("NP", "V"));
        }
        GraphDesign::Proposal => {
            s.push_str("  MP:\n    config: Default\n    storage:\n");
            s.push_str(&edram("R", "V"));
            s.push_str(&edram("MP", "V"));
            s.push_str(&p0_dram("V", "lazy"));
            s.push_str(concat!(
                "    compute:\n",
                "      - component: ApplyALU\n",
                "        op: add\n",
                "    intersect:\n",
                "      - component: GatherIx\n",
            ));
            for (einsum, reads) in [
                ("NP", ["R", "MP"]),
                ("M", ["NP", "MP"]),
                ("A1", ["M", "NP"]),
            ] {
                s.push_str(&format!("  {einsum}:\n    config: Default\n    storage:\n"));
                for t in reads {
                    s.push_str(&edram(t, "V"));
                }
                if einsum != "A1" {
                    s.push_str(&edram(einsum, "V"));
                } else {
                    s.push_str(&edram("A1", "V"));
                }
            }
            s.push_str("  PW:\n    config: Default\n    storage:\n");
            s.push_str(&edram("M", "V"));
            s.push_str(&edram("NP", "V"));
        }
    }
    s
}

/// Parses and validates one design's specification.
///
/// # Panics
///
/// Panics if the generated specification fails to validate (covered by
/// tests).
pub fn spec(design: GraphDesign, vertices: u64, weighted: bool) -> TeaalSpec {
    TeaalSpec::parse(&yaml(design, vertices, weighted))
        .expect("generated vertex-centric spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_designs_parse() {
        for d in [
            GraphDesign::Graphicionado,
            GraphDesign::GraphDynS,
            GraphDesign::Proposal,
        ] {
            let s = spec(d, 65536, true);
            assert!(s.cascade.equations().len() >= 5, "{d:?}");
            assert_eq!(s.architecture.clock_hz, 1e9);
        }
    }

    #[test]
    fn graphicionado_applies_to_all_vertices() {
        let s = spec(GraphDesign::Graphicionado, 1024, false);
        // P1 = R + P0: a union over the dense property vector.
        let eq = s.cascade.equation("P1").unwrap();
        assert_eq!(eq.input_tensors(), vec!["R", "P0"]);
    }

    #[test]
    fn graphdyns_partitions_the_property_vector() {
        let s = spec(GraphDesign::GraphDynS, 65536, false);
        let dirs = s.mapping.partitioning_of("MP");
        assert_eq!(dirs.len(), 1);
        match &dirs[0].ops[0] {
            teaal_core::spec::PartitionOp::UniformShape(c) => {
                assert_eq!(*c, 65536 / GRAPHDYNS_CHUNKS)
            }
            other => panic!("expected uniform_shape, got {other:?}"),
        }
        // And loads property chunks eagerly.
        let b = s.binding.for_einsum("MP");
        let p0 = b
            .storage
            .iter()
            .find(|st| st.tensor == "P0")
            .expect("P0 bound");
        assert_eq!(p0.style, teaal_core::spec::BindStyle::Eager);
        assert_eq!(p0.rank, "V1");
    }

    #[test]
    fn proposal_loads_lazily_without_partitioning() {
        let s = spec(GraphDesign::Proposal, 65536, false);
        assert!(s.mapping.partitioning_of("MP").is_empty());
        let b = s.binding.for_einsum("MP");
        let p0 = b
            .storage
            .iter()
            .find(|st| st.tensor == "P0")
            .expect("P0 bound");
        assert_eq!(p0.style, teaal_core::spec::BindStyle::Lazy);
    }

    #[test]
    fn format_change_drops_weights_for_bfs() {
        let gd_bfs = spec(GraphDesign::GraphDynS, 1024, false);
        let gd_sssp = spec(GraphDesign::GraphDynS, 1024, true);
        let bits_bfs = gd_bfs.format.tensors["G"]["Graph"].element_bits("V");
        let bits_sssp = gd_sssp.format.tensors["G"]["Graph"].element_bits("V");
        assert!(bits_bfs < bits_sssp);
        // Graphicionado's edge list is bigger than either.
        let gi = spec(GraphDesign::Graphicionado, 1024, false);
        let bits_gi = gi.format.tensors["G"]["Graph"].element_bits("V");
        assert!(bits_gi > bits_sssp);
    }
}
