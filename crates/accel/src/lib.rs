//! # teaal-accel
//!
//! Built-in TeAAL specifications for the accelerators the paper evaluates:
//! OuterSPACE, ExTensor, Gamma, and SIGMA (§5, Figs. 3 and 8) and the
//! vertex-centric designs Graphicionado, GraphDynS, and the paper's
//! proposal (§8, Fig. 12), each with its Table 5 hardware configuration.

#![warn(missing_docs)]

pub mod catalog;
pub mod extensor;
pub mod eyeriss;
pub mod gamma;
pub mod outerspace;
pub mod sigma;
pub mod tensaurus;
pub mod vertex_centric;

pub use vertex_centric::GraphDesign;

use teaal_core::TeaalSpec;
use teaal_sim::{SimError, Simulator};

/// The four SpMSpM accelerators of the validation study (§7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpmspmAccel {
    /// OuterSPACE (HPCA 2018).
    OuterSpace,
    /// ExTensor (MICRO 2019).
    ExTensor,
    /// Gamma (ASPLOS 2021).
    Gamma,
    /// SIGMA (HPCA 2020).
    Sigma,
}

impl SpmspmAccel {
    /// All four, in the paper's presentation order.
    pub fn all() -> [SpmspmAccel; 4] {
        [
            SpmspmAccel::OuterSpace,
            SpmspmAccel::ExTensor,
            SpmspmAccel::Gamma,
            SpmspmAccel::Sigma,
        ]
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            SpmspmAccel::OuterSpace => "OuterSPACE",
            SpmspmAccel::ExTensor => "ExTensor",
            SpmspmAccel::Gamma => "Gamma",
            SpmspmAccel::Sigma => "SIGMA",
        }
    }

    /// The accelerator's full TeAAL specification.
    pub fn spec(&self) -> TeaalSpec {
        match self {
            SpmspmAccel::OuterSpace => outerspace::spec(),
            SpmspmAccel::ExTensor => extensor::spec(),
            SpmspmAccel::Gamma => gamma::spec(),
            SpmspmAccel::Sigma => sigma::spec(),
        }
    }

    /// A ready-to-run simulator for this accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if lowering fails (it cannot for the embedded
    /// specifications; covered by tests).
    pub fn simulator(&self) -> Result<Simulator, SimError> {
        Simulator::new(self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_accelerator_builds_a_simulator() {
        for a in SpmspmAccel::all() {
            let sim = a.simulator();
            assert!(sim.is_ok(), "{} failed: {:?}", a.label(), sim.err());
        }
    }
}
