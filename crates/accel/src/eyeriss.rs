//! Eyeriss (ISCA 2016): the dense CNN accelerator the paper lists among
//! its modeled designs (§5) and in the Table 2 cascade catalogue.
//!
//! Eyeriss demonstrates that the same Einsum-plus-mapping abstraction
//! covers *dense* designs: the direct-convolution Einsum with affine
//! indices (`I[p + r, q + s]`) and a row-stationary-flavored mapping
//! (filter rows pinned in PEs, input rows reused diagonally). Dense
//! tensors are just fibertrees with every coordinate present.

use teaal_core::TeaalSpec;

/// Single-channel 2-D direct convolution (`O[p, q] = I[p+r, q+s]·F[r, s]`)
/// with a row-stationary-style mapping: `R` is spatial (one filter row per
/// PE row) and `P` is spatial (one output row per PE diagonal), with `Q`
/// and `S` streaming in time.
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    I: [H, W]\n",
    "    F: [R, S]\n",
    "    O: [P, Q]\n",
    "  expressions:\n",
    "    - O[p, q] = I[p + r, q + s] * F[r, s]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    O: [P, R, Q, S]\n",
    "  spacetime:\n",
    "    O:\n",
    "      space: [P, R]\n",
    "      time: [Q, S]\n",
    "format:\n",
    "  I:\n",
    "    Dense:\n",
    "      H:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      W:\n",
    "        format: U\n",
    "        pbits: 16\n",
    "  F:\n",
    "    Dense:\n",
    "      R:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      S:\n",
    "        format: U\n",
    "        pbits: 16\n",
    "  O:\n",
    "    Dense:\n",
    "      P:\n",
    "        format: U\n",
    "        pbits: 32\n",
    "      Q:\n",
    "        format: U\n",
    "        pbits: 16\n",
    "architecture:\n",
    "  clock: 200_000_000\n",
    "  configs:\n",
    "    Default:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: DRAM\n",
    "          class: DRAM\n",
    "          bandwidth: 1_000_000_000\n",
    "        - name: GLB\n",
    "          class: buffet\n",
    "          width: 64\n",
    "          depth: 13_568\n",
    "          bandwidth: 25_600_000_000\n",
    "      subtree:\n",
    "        - name: PE\n",
    "          count: 168\n",
    "          local:\n",
    "            - name: Spad\n",
    "              class: buffet\n",
    "              width: 16\n",
    "              depth: 224\n",
    "              bandwidth: 3_200_000_000\n",
    "            - name: MAC\n",
    "              class: compute\n",
    "              op: mul\n",
    "            - name: Psum\n",
    "              class: compute\n",
    "              op: add\n",
    "binding:\n",
    "  O:\n",
    "    config: Default\n",
    "    storage:\n",
    "      - component: GLB\n",
    "        tensor: I\n",
    "        config: Dense\n",
    "        rank: H\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: P\n",
    "      - component: Spad\n",
    "        tensor: F\n",
    "        config: Dense\n",
    "        rank: R\n",
    "        type: elem\n",
    "        style: lazy\n",
    "    compute:\n",
    "      - component: MAC\n",
    "        op: mul\n",
    "      - component: Psum\n",
    "        op: add\n",
);

/// Parses and validates the Eyeriss specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded Eyeriss spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;
    use teaal_fibertree::Tensor;
    use teaal_sim::Simulator;

    #[test]
    fn spec_parses_and_lowers() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans.len(), 1);
        // Both R and P are spatial (the row-stationary grid).
        let spaces: Vec<&str> = plans[0]
            .space_ranks()
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(spaces, vec!["P", "R"]);
    }

    #[test]
    fn convolves_a_dense_image_correctly() {
        let s = spec();
        let image: Vec<Vec<f64>> = (0..6)
            .map(|r| (0..6).map(|c| (r * 6 + c) as f64 + 1.0).collect())
            .collect();
        let i = Tensor::from_dense_2d("I", &["H", "W"], &image);
        let f = Tensor::from_dense_2d("F", &["R", "S"], &[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let sim = Simulator::new(s)
            .unwrap()
            .with_rank_extent("P", 5)
            .with_rank_extent("Q", 5)
            .with_rank_extent("R", 2)
            .with_rank_extent("S", 2);
        let report = sim.run(&[i.clone(), f]).unwrap();
        let o = report.final_output().unwrap();
        // 2×2 box filter: O[p,q] = I[p,q]+I[p,q+1]+I[p+1,q]+I[p+1,q+1].
        for p in 0..5u64 {
            for q in 0..5u64 {
                let want = image[p as usize][q as usize]
                    + image[p as usize][q as usize + 1]
                    + image[p as usize + 1][q as usize]
                    + image[p as usize + 1][q as usize + 1];
                assert_eq!(o.get(&[p, q]), Some(want), "O[{p},{q}]");
            }
        }
        // Dense workloads exercise the model too.
        assert!(report.einsums[0].muls > 0);
        assert!(report.dram_bytes() > 0);
    }
}
