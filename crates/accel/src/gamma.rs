//! Gamma (ASPLOS 2021): Gustavson-style SpMSpM with a FiberCache and
//! per-PE high-radix mergers (paper Fig. 8a, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8a's einsum + mapping with the Table 5 Gamma configuration:
/// 32 PEs with 64-way mergers, a 3 MB FiberCache, 16 HBM channels at
/// 8 GB/s each. The two Einsums fuse (§4.3), so the intermediate `T`
/// (the fetched rows of `B`) never touches DRAM.
pub const YAML: &str = teaal_fixtures::GAMMA_EM;

/// Parses and validates the Gamma specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded Gamma spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;

    #[test]
    fn spec_parses_with_table5_parameters() {
        let s = spec();
        assert_eq!(s.architecture.clock_hz, 1e9);
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("Merger").unwrap();
        assert_eq!(pes, 32);
        // FiberCache: 512 bits × 49152 = 3 MB.
        let (fc, _) = cfg.find("FiberCache").unwrap();
        match &fc.class {
            teaal_core::spec::ComponentClass::Buffer { width, depth, .. } => {
                assert_eq!(width * depth / 8, 3 * 1024 * 1024);
            }
            other => panic!("FiberCache should be a buffer, got {other:?}"),
        }
    }

    #[test]
    fn einsums_fuse_into_one_block() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        let blocks = ir::infer_blocks(&s, &plans);
        assert_eq!(blocks.len(), 1, "Gamma's take and multiply must fuse");
    }

    #[test]
    fn t_is_swizzled_online_for_the_merge() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        let z = &plans[1];
        let t_plan = z.tensor_plan("T").unwrap();
        assert!(
            t_plan.online_swizzle,
            "T reorders to [M, N, K] on the merger"
        );
        assert_eq!(*t_plan.working_order.last().unwrap(), "K0");
    }
}
