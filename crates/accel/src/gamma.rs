//! Gamma (ASPLOS 2021): Gustavson-style SpMSpM with a FiberCache and
//! per-PE high-radix mergers (paper Fig. 8a, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8a's einsum + mapping with the Table 5 Gamma configuration:
/// 32 PEs with 64-way mergers, a 3 MB FiberCache, 16 HBM channels at
/// 8 GB/s each. The two Einsums fuse (§4.3), so the intermediate `T`
/// (the fetched rows of `B`) never touches DRAM.
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [K, M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - T[k, m, n] = take(A[k, m], B[k, n], 1)\n",
    "    - Z[m, n] = T[k, m, n] * A[k, m]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [M, K]\n",
    "    B: [K, N]\n",
    "    T: [M, K, N]\n",
    "    Z: [M, N]\n",
    "  partitioning:\n",
    "    T:\n",
    "      M: [uniform_occupancy(A.32)]\n",
    "      K: [uniform_occupancy(A.64)]\n",
    "    Z:\n",
    "      M: [uniform_occupancy(A.32)]\n",
    "      K: [uniform_occupancy(A.64)]\n",
    "  loop-order:\n",
    "    T: [M1, M0, K1, K0, N]\n",
    "    Z: [M1, M0, K1, N, K0]\n",
    "  spacetime:\n",
    "    T:\n",
    "      space: [M0, K1]\n",
    "      time: [M1, K0, N]\n",
    "    Z:\n",
    "      space: [M0, K1]\n",
    "      time: [M1, N, K0]\n",
    "format:\n",
    "  A:\n",
    "    CSR:\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  B:\n",
    "    CSR:\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  Z:\n",
    "    CSR:\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "architecture:\n",
    "  clock: 1_000_000_000\n",
    "  configs:\n",
    "    Default:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: HBM\n",
    "          class: DRAM\n",
    "          bandwidth: 128_000_000_000\n",
    "        - name: FiberCache\n",
    "          class: cache\n",
    "          width: 512\n",
    "          depth: 49152\n",
    "          bandwidth: 1_536_000_000_000\n",
    "      subtree:\n",
    "        - name: PE\n",
    "          count: 32\n",
    "          local:\n",
    "            - name: Intersect\n",
    "              class: intersect\n",
    "              type: leader-follower\n",
    "              leader: 0\n",
    "            - name: Merger\n",
    "              class: merger\n",
    "              inputs: 64\n",
    "              comparator_radix: 64\n",
    "              outputs: 1\n",
    "              order: opt\n",
    "              reduce: true\n",
    "            - name: MulALU\n",
    "              class: compute\n",
    "              op: mul\n",
    "            - name: AddALU\n",
    "              class: compute\n",
    "              op: add\n",
    "binding:\n",
    "  T:\n",
    "    config: Default\n",
    "    storage:\n",
    "      - component: HBM\n",
    "        tensor: A\n",
    "        config: CSR\n",
    "        rank: M1\n",
    "        type: elem\n",
    "        style: lazy\n",
    "      - component: FiberCache\n",
    "        tensor: B\n",
    "        config: CSR\n",
    "        rank: N\n",
    "        type: elem\n",
    "        style: lazy\n",
    "  Z:\n",
    "    config: Default\n",
    "    compute:\n",
    "      - component: MulALU\n",
    "        op: mul\n",
    "      - component: AddALU\n",
    "        op: add\n",
    "    merger:\n",
    "      - component: Merger\n",
    "        tensor: T\n",
);

/// Parses and validates the Gamma specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded Gamma spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;

    #[test]
    fn spec_parses_with_table5_parameters() {
        let s = spec();
        assert_eq!(s.architecture.clock_hz, 1e9);
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("Merger").unwrap();
        assert_eq!(pes, 32);
        // FiberCache: 512 bits × 49152 = 3 MB.
        let (fc, _) = cfg.find("FiberCache").unwrap();
        match &fc.class {
            teaal_core::spec::ComponentClass::Buffer { width, depth, .. } => {
                assert_eq!(width * depth / 8, 3 * 1024 * 1024);
            }
            other => panic!("FiberCache should be a buffer, got {other:?}"),
        }
    }

    #[test]
    fn einsums_fuse_into_one_block() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        let blocks = ir::infer_blocks(&s, &plans);
        assert_eq!(blocks.len(), 1, "Gamma's take and multiply must fuse");
    }

    #[test]
    fn t_is_swizzled_online_for_the_merge() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        let z = &plans[1];
        let t_plan = z.tensor_plan("T").unwrap();
        assert!(
            t_plan.online_swizzle,
            "T reorders to [M, N, K] on the merger"
        );
        assert_eq!(*t_plan.working_order.last().unwrap(), "K0");
    }
}
