//! The accelerator catalog: Tables 1, 5, and 6 of the paper as data.

/// One row of Table 1 (qualitative accelerator comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Accelerator name.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Mapping approach, verbatim from Table 1.
    pub mapping: &'static str,
    /// Architectural focus, verbatim from Table 1.
    pub focus: &'static str,
    /// Whether this repository ships a full executable model of it.
    pub modeled: bool,
}

/// Table 1: selected sparse tensor accelerator proposals.
pub fn table1() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "OuterSPACE",
            year: 2018,
            mapping: "Outer Product parallelized across rows of A",
            focus: "SpMSpM with serial multiply/add phases, custom merge unit",
            modeled: true,
        },
        CatalogEntry {
            name: "ExTensor",
            year: 2019,
            mapping: "Inner Product tiled across all dimensions for locality",
            focus: "Arbitrary Einsums and TACO formats, skip-ahead intersection unit",
            modeled: true,
        },
        CatalogEntry {
            name: "MatRaptor",
            year: 2020,
            mapping: "Row-wise Product with parallel summation",
            focus: "SpMSpM with co-design of micro-architecture and C2SR format",
            modeled: false,
        },
        CatalogEntry {
            name: "SIGMA",
            year: 2020,
            mapping: "Inner Product parallelized across multiple dimensions",
            focus: "SpMSpM with custom bitmap format, flexible hardware topology",
            modeled: true,
        },
        CatalogEntry {
            name: "SpArch",
            year: 2020,
            mapping: "Outer Product with parallel merge",
            focus: "SpMSpM with optimized RAM interface in sum phase",
            modeled: false,
        },
        CatalogEntry {
            name: "Tensaurus",
            year: 2020,
            mapping: "Inner Product with extended scalar-fiber product (SF3)",
            focus: "SF3 applicability to Einsums beyond matrix-matrix multiply",
            modeled: true,
        },
        CatalogEntry {
            name: "Gamma",
            year: 2021,
            mapping: "Row-wise Product, adoption of Gustavson's algorithm",
            focus: "SpMSpM with custom FiberCache, transposed merge-and-sum",
            modeled: true,
        },
    ]
}

/// One row of Table 5 (hardware configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareConfig {
    /// Accelerator name.
    pub name: &'static str,
    /// Configuration text, verbatim from Table 5.
    pub config: &'static str,
}

/// Table 5: hardware configurations matching the original publications.
pub fn table5() -> Vec<HardwareConfig> {
    vec![
        HardwareConfig {
            name: "ExTensor",
            config: "1 GHz clock, 128 PEs, 64 kB PE buffer per PE, 30 MB LLC, \
                     68.256 GB/s memory bandwidth",
        },
        HardwareConfig {
            name: "Gamma",
            config: "1 GHz clock, 64-way merger per PE, 32 PEs, 3 MB FiberCache, \
                     16 64-bit HBM channels, 8 GB/s/channel",
        },
        HardwareConfig {
            name: "OuterSPACE",
            config: "1.5 GHz clock, 16 PEs per PT, 16 PTs, 16 kB L0 cache per PT, \
                     4 kB L1 cache per 4 PTs, 16 64-bit HBM channels, 8000 MB/s/channel",
        },
        HardwareConfig {
            name: "SIGMA",
            config: "500 MHz clock, 128 PEs per FlexDPE, 128 FlexDPEs, 32 MB Data \
                     SRAM, 4 MB Bitmap SRAM, 960 GB/s SRAM bandwidth, 1024 GB/s HBM",
        },
        HardwareConfig {
            name: "Graphicionado",
            config: "1 GHz clock, 8 streams, 64 MB eDRAM, 68 GB/s memory bandwidth",
        },
    ]
}

/// One row of Table 6 (framework feature comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureRow {
    /// Feature name.
    pub feature: &'static str,
    /// Support per framework: STONNE, Sparseloop, SAM, CIN-P, TeAAL.
    pub support: [bool; 5],
}

/// Table 6: sparse tensor modeling framework comparison.
pub fn table6() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            feature: "Models Hardware",
            support: [true, true, true, false, true],
        },
        FeatureRow {
            feature: "Generic Kernels",
            support: [false, true, true, true, true],
        },
        FeatureRow {
            feature: "Cascaded Einsums",
            support: [false, false, true, true, true],
        },
        FeatureRow {
            feature: "Index Expressions",
            support: [false, false, false, true, true],
        },
        FeatureRow {
            feature: "Shape-Based Part.",
            support: [false, true, true, false, true],
        },
        FeatureRow {
            feature: "Occ.-Based Part.",
            support: [false, true, false, false, true],
        },
        FeatureRow {
            feature: "Generic Flattening",
            support: [false, false, false, true, true],
        },
        FeatureRow {
            feature: "Rank Swizzling",
            support: [false, false, false, true, true],
        },
        FeatureRow {
            feature: "Format Expressivity",
            support: [true, true, true, false, true],
        },
        FeatureRow {
            feature: "Caches",
            support: [false, false, false, true, true],
        },
        FeatureRow {
            feature: "Precise Data Set",
            support: [true, false, true, false, true],
        },
        FeatureRow {
            feature: "High Model Fidelity",
            support: [true, false, false, false, true],
        },
    ]
}

/// The framework column labels for [`table6`].
pub const TABLE6_FRAMEWORKS: [&str; 5] = ["STONNE", "Sparseloop", "SAM", "CIN-P", "TeAAL"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_accelerators_five_modeled() {
        // The four validation-study designs plus Tensaurus (this repo also
        // ships Eyeriss and the vertex-centric designs, which are not
        // Table 1 rows).
        let t = table1();
        assert_eq!(t.len(), 7);
        assert_eq!(t.iter().filter(|e| e.modeled).count(), 5);
    }

    #[test]
    fn table5_covers_every_modeled_design() {
        let names: Vec<&str> = table5().iter().map(|h| h.name).collect();
        for required in ["ExTensor", "Gamma", "OuterSPACE", "SIGMA", "Graphicionado"] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn teaal_supports_every_table6_feature() {
        for row in table6() {
            assert!(row.support[4], "TeAAL should support {}", row.feature);
        }
    }
}
