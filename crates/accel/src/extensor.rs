//! ExTensor (MICRO 2019): hierarchical (tiled) intersection with
//! skip-ahead units and an inner-product-style innermost dataflow
//! (paper Fig. 8b, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8b's einsum + mapping with concrete tile shapes and the Table 5
/// configuration: 128 PEs with 64 kB buffers, a 30 MB LLC, and
/// 68.256 GB/s of memory bandwidth. The symbolic `uniform_shape(K1)`
/// tile parameters of the paper are instantiated to 128/16 (documented in
/// DESIGN.md — the published design chooses tile shapes to fill the LLC
/// and PE buffers).
pub const YAML: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  partitioning:\n",
    "    Z:\n",
    "      K:\n",
    "        - uniform_shape(128)\n",
    "        - uniform_shape(16)\n",
    "      M:\n",
    "        - uniform_shape(128)\n",
    "        - uniform_shape(16)\n",
    "      N:\n",
    "        - uniform_shape(128)\n",
    "        - uniform_shape(16)\n",
    "  loop-order:\n",
    "    Z: [N2, K2, M2, M1, N1, K1, M0, N0, K0]\n",
    "  spacetime:\n",
    "    Z:\n",
    "      space: [K1]\n",
    "      time: [N2, K2, M2, M1, N1, M0, N0, K0]\n",
    "format:\n",
    "  A:\n",
    "    CSF:\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  B:\n",
    "    CSF:\n",
    "      K:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "  Z:\n",
    "    CSF:\n",
    "      M:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 32\n",
    "      N:\n",
    "        format: C\n",
    "        cbits: 32\n",
    "        pbits: 64\n",
    "architecture:\n",
    "  clock: 1_000_000_000\n",
    "  configs:\n",
    "    Default:\n",
    "      name: System\n",
    "      local:\n",
    "        - name: DRAM\n",
    "          class: DRAM\n",
    "          bandwidth: 68_256_000_000\n",
    "        - name: LLC\n",
    "          class: buffet\n",
    "          width: 512\n",
    "          depth: 491520\n",
    "          bandwidth: 2_048_000_000_000\n",
    "      subtree:\n",
    "        - name: PE\n",
    "          count: 128\n",
    "          local:\n",
    "            - name: PEBuffer\n",
    "              class: buffet\n",
    "              width: 512\n",
    "              depth: 1024\n",
    "              bandwidth: 64_000_000_000\n",
    "            - name: Intersect\n",
    "              class: intersect\n",
    "              type: skip-ahead\n",
    "            - name: MulALU\n",
    "              class: compute\n",
    "              op: mul\n",
    "            - name: AddALU\n",
    "              class: compute\n",
    "              op: add\n",
    "binding:\n",
    "  Z:\n",
    "    config: Default\n",
    "    storage:\n",
    "      - component: LLC\n",
    "        tensor: A\n",
    "        config: CSF\n",
    "        rank: M2\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: M2\n",
    "      - component: LLC\n",
    "        tensor: B\n",
    "        config: CSF\n",
    "        rank: K2\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: K2\n",
    "      - component: LLC\n",
    "        tensor: Z\n",
    "        config: CSF\n",
    "        rank: M2\n",
    "        type: elem\n",
    "        style: lazy\n",
    "        evict-on: K2\n",
    "    compute:\n",
    "      - component: MulALU\n",
    "        op: mul\n",
    "      - component: AddALU\n",
    "        op: add\n",
);

/// Parses and validates the ExTensor specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded ExTensor spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;
    use teaal_fibertree::IntersectPolicy;

    #[test]
    fn spec_has_table5_parameters() {
        let s = spec();
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("MulALU").unwrap();
        assert_eq!(pes, 128);
        // LLC: 512 bits × 491520 = 30 MB.
        let (llc, _) = cfg.find("LLC").unwrap();
        match &llc.class {
            teaal_core::spec::ComponentClass::Buffer { width, depth, .. } => {
                assert_eq!(width * depth / 8, 30 * 1024 * 1024);
            }
            other => panic!("LLC should be a buffer, got {other:?}"),
        }
        let (ix, _) = cfg.find("Intersect").unwrap();
        assert!(matches!(
            ix.class,
            teaal_core::spec::ComponentClass::Intersect {
                policy: IntersectPolicy::SkipAhead
            }
        ));
    }

    #[test]
    fn nine_deep_loop_nest_lowers() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans[0].loop_ranks.len(), 9);
        // Partial outputs drain across K2 (the PO traffic of Fig. 9a).
        let binding = s.binding.for_einsum("Z");
        let z_storage = binding.storage_for("Z");
        assert_eq!(z_storage[0].evict_on.as_deref(), Some("K2"));
    }
}
