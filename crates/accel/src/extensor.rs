//! ExTensor (MICRO 2019): hierarchical (tiled) intersection with
//! skip-ahead units and an inner-product-style innermost dataflow
//! (paper Fig. 8b, Table 5).

use teaal_core::TeaalSpec;

/// Fig. 8b's einsum + mapping with concrete tile shapes and the Table 5
/// configuration: 128 PEs with 64 kB buffers, a 30 MB LLC, and
/// 68.256 GB/s of memory bandwidth. The symbolic `uniform_shape(K1)`
/// tile parameters of the paper are instantiated to 128/16 (documented in
/// DESIGN.md — the published design chooses tile shapes to fill the LLC
/// and PE buffers).
pub const YAML: &str = teaal_fixtures::EXTENSOR_EM;

/// Parses and validates the ExTensor specification.
///
/// # Panics
///
/// Panics if the embedded specification fails to validate (covered by
/// tests).
pub fn spec() -> TeaalSpec {
    TeaalSpec::parse(YAML).expect("embedded ExTensor spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::ir;
    use teaal_fibertree::IntersectPolicy;

    #[test]
    fn spec_has_table5_parameters() {
        let s = spec();
        let cfg = s.architecture.config(None).unwrap();
        let (_, pes) = cfg.find("MulALU").unwrap();
        assert_eq!(pes, 128);
        // LLC: 512 bits × 491520 = 30 MB.
        let (llc, _) = cfg.find("LLC").unwrap();
        match &llc.class {
            teaal_core::spec::ComponentClass::Buffer { width, depth, .. } => {
                assert_eq!(width * depth / 8, 30 * 1024 * 1024);
            }
            other => panic!("LLC should be a buffer, got {other:?}"),
        }
        let (ix, _) = cfg.find("Intersect").unwrap();
        assert!(matches!(
            ix.class,
            teaal_core::spec::ComponentClass::Intersect {
                policy: IntersectPolicy::SkipAhead
            }
        ));
    }

    #[test]
    fn nine_deep_loop_nest_lowers() {
        let s = spec();
        let plans = ir::lower(&s).unwrap();
        assert_eq!(plans[0].loop_ranks.len(), 9);
        // Partial outputs drain across K2 (the PO traffic of Fig. 9a).
        let binding = s.binding.for_einsum("Z");
        let z_storage = binding.storage_for("Z");
        assert_eq!(z_storage[0].evict_on.as_deref(), Some("K2"));
    }
}
