//! Catalog smoke test: every SpMSpM accelerator in the validation study
//! (OuterSPACE, ExTensor, Gamma, SIGMA) must parse from its embedded
//! YAML, validate, and lower to a non-trivial [`EinsumPlan`] list — the
//! front half of the pipeline, independent of any simulator run.

use teaal_accel::{catalog, SpmspmAccel};
use teaal_core::ir::{infer_blocks, lower};

#[test]
fn all_four_spmspm_specs_parse_validate_and_lower() {
    // Cascade lengths from the paper: OuterSPACE T+Z, ExTensor Z,
    // Gamma T+Z, SIGMA S+T+Z.
    let expected_einsums = [
        (SpmspmAccel::OuterSpace, 2),
        (SpmspmAccel::ExTensor, 1),
        (SpmspmAccel::Gamma, 2),
        (SpmspmAccel::Sigma, 3),
    ];
    for (accel, einsums) in expected_einsums {
        // `spec()` panics if the embedded YAML fails to parse/validate.
        let spec = accel.spec();
        let plans =
            lower(&spec).unwrap_or_else(|e| panic!("{} failed to lower: {e}", accel.label()));
        assert_eq!(plans.len(), einsums, "{} cascade length", accel.label());
        for plan in &plans {
            assert!(
                !plan.loop_ranks.is_empty(),
                "{}: plan for {} has no loop ranks",
                accel.label(),
                plan.equation
            );
        }
        // Fusion inference must place every plan in exactly one block.
        let blocks = infer_blocks(&spec, &plans);
        let mut covered: Vec<usize> = blocks.iter().flat_map(|b| b.members.clone()).collect();
        covered.sort_unstable();
        assert_eq!(
            covered,
            (0..plans.len()).collect::<Vec<_>>(),
            "{}: fusion blocks must partition the cascade",
            accel.label()
        );
        // And a simulator must be constructible from the lowered spec.
        accel
            .simulator()
            .unwrap_or_else(|e| panic!("{} failed to build a simulator: {e}", accel.label()));
    }
}

#[test]
fn catalog_marks_exactly_the_modeled_accelerators() {
    // Table 1's `modeled` flags must agree with what `SpmspmAccel::all()`
    // (plus the Eyeriss/Tensaurus modules) actually ships.
    let modeled: Vec<&str> = catalog::table1()
        .into_iter()
        .filter(|e| e.modeled)
        .map(|e| e.name)
        .collect();
    for accel in SpmspmAccel::all() {
        assert!(
            modeled.contains(&accel.label()),
            "{} is executable but not marked modeled in Table 1",
            accel.label()
        );
    }
}
