//! End-to-end runs of every built-in accelerator on a (scaled) Table 4
//! matrix: all four must agree functionally and produce sane models.

use teaal_accel::SpmspmAccel;
use teaal_fibertree::Tensor;
use teaal_workloads::by_tag;

fn inputs() -> (Tensor, Tensor) {
    // Heavily scaled wiki-Vote substitute: the validation kernel is
    // Z = AᵀA (both operands the same matrix, as in the original papers).
    let ds = by_tag("wi").expect("wi is registered");
    let a = ds.matrix_named("A", &["K", "M"], 64);
    let b = ds.matrix_named("B", &["K", "N"], 64);
    (a, b)
}

#[test]
fn all_accelerators_run_and_agree_on_wi() {
    let (a, b) = inputs();
    let mut outputs = Vec::new();
    for accel in SpmspmAccel::all() {
        let sim = accel.simulator().expect("lowers");
        let report = sim
            .run(&[a.clone(), b.clone()])
            .unwrap_or_else(|e| panic!("{} failed: {e}", accel.label()));
        assert!(report.dram_bytes() > 0, "{} must move data", accel.label());
        assert!(report.seconds > 0.0, "{} must take time", accel.label());
        assert!(
            report.energy_joules > 0.0,
            "{} must burn energy",
            accel.label()
        );
        outputs.push((accel.label(), report.final_output().unwrap().clone()));
    }
    for w in outputs.windows(2) {
        assert_eq!(
            w[0].1.max_abs_diff(&w[1].1),
            0.0,
            "{} and {} disagree",
            w[0].0,
            w[1].0
        );
    }
}

#[test]
fn gamma_avoids_intermediate_traffic_outerspace_pays_it() {
    let (a, b) = inputs();
    let gamma = SpmspmAccel::Gamma.simulator().unwrap();
    let outer = SpmspmAccel::OuterSpace.simulator().unwrap();
    let gr = gamma.run(&[a.clone(), b.clone()]).unwrap();
    let or = outer.run(&[a, b]).unwrap();
    // Gamma fuses: T stays on chip. OuterSPACE writes and re-reads the
    // partial-product linked lists.
    assert_eq!(gr.dram_bytes_of("T"), 0, "Gamma's T must stay on chip");
    assert!(or.dram_bytes_of("T") > 0, "OuterSPACE's T must hit DRAM");
    // That is the core reason Gamma moves less data overall.
    assert!(
        gr.dram_bytes() < or.dram_bytes(),
        "Gamma {} should beat OuterSPACE {}",
        gr.dram_bytes(),
        or.dram_bytes()
    );
}

#[test]
fn extensor_reports_partial_output_traffic() {
    let (a, b) = inputs();
    let sim = SpmspmAccel::ExTensor.simulator().unwrap();
    let report = sim.run(&[a, b]).unwrap();
    // The K2 tile loop revisits output tiles: Fig. 9a's PO component.
    let z = &report.einsums[0];
    assert!(
        z.output_partial_bytes > 0,
        "ExTensor should drain partial outputs"
    );
}

#[test]
fn sigma_prefilter_reduces_stationary_traffic() {
    let (a, b) = inputs();
    let sim = SpmspmAccel::Sigma.simulator().unwrap();
    let report = sim.run(&[a.clone(), b]).unwrap();
    // T (the filtered stationary matrix) is never larger than A.
    let t = report.outputs.get("T").unwrap();
    assert!(t.nnz() <= a.nnz());
    assert_eq!(report.einsums.len(), 3);
}
