//! The `teaal serve` daemon: a fault-tolerant evaluation service over
//! the [`wire`] protocol.
//!
//! Architecture (all `std`, no async runtime — the vendor tree is
//! offline):
//!
//! ```text
//!            accept loop (nonblocking poll, SIGINT/SIGTERM aware)
//!                 │ one thread per connection
//!                 ▼
//!  connection handler ──ping/health──▶ answered inline
//!         │ eval
//!         ▼
//!  bounded admission queue ──full──▶ immediate `overloaded` response
//!         │
//!         ▼
//!  worker pool (fixed size) ── per-request EvalLimits clamped by the
//!         │                    server caps, CancelToken registered for
//!         ▼                    drain cancellation, panic-isolated
//!  shared EvalContext (content-addressed caches, bounded by
//!  `--max-cache-mb`)
//! ```
//!
//! Fault containment, by layer:
//!
//! - **Malformed bytes** — the wire parser classifies every failure as
//!   recoverable (respond `protocol`, keep the connection) or fatal
//!   (close that connection); the daemon never exits on input.
//! - **Overload** — the admission queue is bounded; a full queue sheds
//!   with a structured `overloaded` response instead of queueing
//!   without bound. Clients retry safely: evaluation is
//!   content-addressed and idempotent.
//! - **Panics** — each request runs under
//!   [`catching`](crate::request::catching); a panicking evaluation
//!   becomes a `panic`-coded error response while the worker survives.
//! - **Dead peers** — per-connection read/write timeouts drop the
//!   connection, never the process.
//! - **Shutdown** — SIGINT/SIGTERM stops accepting, finishes admitted
//!   work up to `--drain-ms`, then cancels stragglers through their
//!   [`CancelToken`]s and answers still-queued requests with
//!   `shutting-down`.
//!
//! Deterministic fault injection for all of the above rides on
//! [`teaal_core::failpoint`] sites `serve.accept` and `serve.request`
//! (actions `panic`, `err`, `sleep(MS)`, and `drop` — the last severs
//! the connection mid-response).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use teaal_core::failpoint::{self, FailAction};
use teaal_fibertree::telemetry;
use teaal_fibertree::{Tensor, TensorData};
use teaal_sim::{CancelToken, EvalContext, EvalLimits, OpTable};
use teaal_workloads::{genmat, io as tio};

use crate::request::{evaluate_request, parse_ops, ErrorCode, EvalFailure, RequestOverrides};
use crate::wire::{self, Frame, FrameKind, WireError};

/// How often the accept loop polls for new connections and the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// How long after the drain deadline the daemon waits for connection
/// handlers to flush their final responses before exiting anyway.
const CONNECTION_FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Everything `teaal serve` needs to run; built by the CLI argument
/// parser, overridable in tests.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP listen address (`HOST:PORT`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Listen on a Unix socket at this path instead of TCP.
    pub unix_path: Option<PathBuf>,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-queue bound; a full queue sheds with `overloaded`.
    pub queue_depth: usize,
    /// Graceful-drain budget after SIGINT/SIGTERM.
    pub drain: Duration,
    /// Per-connection read/write timeout (drops dead peers).
    pub io_timeout: Duration,
    /// Maximum wire-frame body size accepted or sent.
    pub max_frame_bytes: usize,
    /// Server-side caps every request's limits are clamped by.
    pub limit_caps: EvalLimits,
    /// Default operator table (requests may override with `ops`).
    pub ops: OpTable,
    /// The shared dataset every request evaluates against.
    pub tensors: Vec<Tensor>,
    /// Default rank extents.
    pub extents: Vec<(String, u64)>,
    /// Bound on the shared pipeline caches (`--max-cache-mb`).
    pub max_cache_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            unix_path: None,
            workers: teaal_sim::default_threads().max(1),
            queue_depth: 64,
            drain: Duration::from_millis(5000),
            io_timeout: Duration::from_millis(10_000),
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            limit_caps: EvalLimits::default(),
            ops: OpTable::arithmetic(),
            tensors: Vec::new(),
            extents: Vec::new(),
            max_cache_bytes: None,
        }
    }
}

/// Set by the SIGINT/SIGTERM handler; the accept loop polls it.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // The handler only stores to an atomic — async-signal-safe. Raw
    // `signal(2)` instead of a libc crate: the vendor tree is offline,
    // and std already links libc on every Unix target.
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }
    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// A connection stream, TCP or Unix, with the small common surface the
/// handler needs.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn set_timeouts(&self, timeout: Duration) -> std::io::Result<()> {
        let t = Some(timeout);
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn local_display(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One admitted request waiting for (or occupying) a worker.
struct Job {
    seq: u64,
    frame: Frame,
    reply: mpsc::Sender<Response>,
}

/// What a worker hands back to the connection thread.
struct Response {
    frame: Frame,
    /// When set (the `drop` failpoint action), the connection thread
    /// writes only a prefix of the encoded frame and severs the
    /// connection — exercising client retry paths deterministically.
    drop_mid_response: bool,
}

impl Response {
    fn whole(frame: Frame) -> Response {
        Response {
            frame,
            drop_mid_response: false,
        }
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Shared daemon state: configuration extract, gauges, the admission
/// queue, and the cancellation registry the drain path uses.
struct Daemon {
    ctx: Arc<EvalContext>,
    data: Vec<TensorData>,
    queue: Mutex<Queue>,
    available: Condvar,
    queue_depth: usize,
    workers: usize,
    io_timeout: Duration,
    max_frame_bytes: usize,
    limit_caps: EvalLimits,
    ops: OpTable,
    extents: Vec<(String, u64)>,
    start: Instant,
    draining: AtomicBool,
    seq: AtomicU64,
    /// `seq → CancelToken` for every request currently on a worker.
    active: Mutex<HashMap<u64, CancelToken>>,
    // Gauges and monotonic counters surfaced by `health`.
    in_flight: AtomicU64,
    queued: AtomicU64,
    connections: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    shed_overloaded: AtomicU64,
}

/// Decrements a gauge when dropped, so early returns and panics cannot
/// leak `in_flight`/`connections` counts.
struct GaugeGuard<'a>(&'a AtomicU64);

impl<'a> GaugeGuard<'a> {
    fn increment(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Daemon {
    fn err_frame(id: &str, code: ErrorCode, message: &str) -> Frame {
        Frame::new(FrameKind::Err)
            .field("id", id)
            .field("code", code.as_str())
            .field("message", message)
    }

    fn health_frame(&self, id: &str) -> Frame {
        let snap = telemetry::pipeline_snapshot();
        let mut f = Frame::new(FrameKind::Ok)
            .field("id", id)
            .field("uptime_ms", self.start.elapsed().as_millis().to_string())
            .field("workers", self.workers.to_string())
            .field("queue_depth", self.queue_depth.to_string())
            .field(
                "in_flight",
                self.in_flight.load(Ordering::Relaxed).to_string(),
            )
            .field("queued", self.queued.load(Ordering::Relaxed).to_string())
            .field(
                "connections",
                self.connections.load(Ordering::Relaxed).to_string(),
            )
            .field(
                "served_ok",
                self.served_ok.load(Ordering::Relaxed).to_string(),
            )
            .field(
                "served_err",
                self.served_err.load(Ordering::Relaxed).to_string(),
            )
            .field(
                "shed_overloaded",
                self.shed_overloaded.load(Ordering::Relaxed).to_string(),
            )
            .field(
                "draining",
                if self.draining.load(Ordering::Relaxed) {
                    "1"
                } else {
                    "0"
                },
            )
            .field("degraded_sequential", snap.degraded_sequential.to_string())
            .field("transform_execs", snap.transform_execs.to_string());
        for (stage, s) in snap.stages() {
            f = f
                .field(&format!("cache.{stage}.hits"), s.hits.to_string())
                .field(&format!("cache.{stage}.misses"), s.misses.to_string())
                .field(&format!("cache.{stage}.bytes"), s.bytes.to_string())
                .field(&format!("cache.{stage}.evictions"), s.evictions.to_string());
        }
        f
    }

    /// Parses the request-level limit overrides and clamps them by the
    /// server caps.
    fn request_limits(&self, frame: &Frame) -> Result<EvalLimits, EvalFailure> {
        let bad = |field: &str, v: &str| {
            EvalFailure::new(
                ErrorCode::BadRequest,
                format!("field {field} needs an unsigned integer, got {v:?}"),
            )
        };
        let mut limits = EvalLimits::default();
        if let Some(v) = frame.get("deadline_ms") {
            limits.deadline = Some(Duration::from_millis(
                v.parse().map_err(|_| bad("deadline_ms", v))?,
            ));
        }
        if let Some(v) = frame.get("max_engine_steps") {
            limits.max_engine_steps = Some(v.parse().map_err(|_| bad("max_engine_steps", v))?);
        }
        if let Some(v) = frame.get("max_output_entries") {
            limits.max_output_entries = Some(v.parse().map_err(|_| bad("max_output_entries", v))?);
        }
        Ok(limits.clamped_by(&self.limit_caps))
    }

    /// Evaluates one admitted `eval` request on a worker thread.
    fn handle_eval(&self, job: &Job) -> Response {
        let id = job.frame.get("id").unwrap_or("").to_string();
        let mut drop_mid_response = false;
        let limits = match self.request_limits(&job.frame) {
            Ok(l) => l,
            Err(f) => {
                self.served_err.fetch_add(1, Ordering::Relaxed);
                return Response::whole(Self::err_frame(&id, f.code, &f.message));
            }
        };
        let token = CancelToken::new(&limits);
        self.active
            .lock()
            .expect("active registry poisoned")
            .insert(job.seq, token.clone());

        let result = crate::request::catching(|| {
            match failpoint::check("serve.request") {
                Some(FailAction::Panic) => panic!("injected failpoint panic at `serve.request`"),
                Some(FailAction::Err(msg)) => return Err(EvalFailure::new(ErrorCode::Eval, msg)),
                Some(FailAction::Drop) => drop_mid_response = true,
                Some(FailAction::Sleep(_)) | None => {}
            }
            let source = job.frame.get("spec").ok_or_else(|| {
                EvalFailure::new(ErrorCode::BadRequest, "eval request has no `spec` field")
            })?;
            let spec = self
                .ctx
                .parse(source)
                .map_err(|e| EvalFailure::new(ErrorCode::BadRequest, e.to_string()))?;
            let mut overrides = RequestOverrides::default();
            if let Some(name) = job.frame.get("ops") {
                overrides.ops =
                    Some(parse_ops(name).map_err(|m| EvalFailure::new(ErrorCode::BadRequest, m))?);
            }
            for entry in job.frame.all("loop_order") {
                let (einsum, ranks) = entry.split_once('=').ok_or_else(|| {
                    EvalFailure::new(
                        ErrorCode::BadRequest,
                        format!("field loop_order needs `EINSUM=R1,R2,…`, got {entry:?}"),
                    )
                })?;
                let ranks: Vec<String> = ranks
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                overrides
                    .loop_order
                    .push((einsum.trim().to_string(), ranks));
            }
            let mut extents = self.extents.clone();
            for entry in job.frame.all("extent") {
                let (rank, n) = entry.split_once('=').ok_or_else(|| {
                    EvalFailure::new(
                        ErrorCode::BadRequest,
                        format!("field extent needs `RANK=N`, got {entry:?}"),
                    )
                })?;
                let n: u64 = n.parse().map_err(|_| {
                    EvalFailure::new(
                        ErrorCode::BadRequest,
                        format!("field extent needs `RANK=N`, got {entry:?}"),
                    )
                })?;
                extents.push((rank.trim().to_string(), n));
            }
            let refs: Vec<&TensorData> = self.data.iter().collect();
            evaluate_request(
                &self.ctx,
                &spec,
                &overrides,
                self.ops,
                &extents,
                &refs,
                Some(&token),
            )
        });

        self.active
            .lock()
            .expect("active registry poisoned")
            .remove(&job.seq);
        let frame = match result {
            Ok(report) => {
                self.served_ok.fetch_add(1, Ordering::Relaxed);
                Frame::new(FrameKind::Ok)
                    .field("id", &id)
                    .field("report", report)
            }
            Err(f) => {
                self.served_err.fetch_add(1, Ordering::Relaxed);
                Self::err_frame(&id, f.code, &f.message)
            }
        };
        Response {
            frame,
            drop_mid_response,
        }
    }
}

fn worker_loop(d: &Daemon) {
    loop {
        let job = {
            let mut q = d.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = d.available.wait(q).expect("admission queue poisoned");
            }
        };
        let Some(job) = job else { return };
        d.queued.fetch_sub(1, Ordering::Relaxed);
        let response = {
            let _in_flight = GaugeGuard::increment(&d.in_flight);
            d.handle_eval(&job)
        };
        // The receiver may have hung up (dead peer); that is its loss,
        // not ours.
        let _ = job.reply.send(response);
    }
}

/// Writes one response; honors the `drop` failpoint by truncating the
/// frame and severing the connection. `Err` means the connection is
/// done.
fn write_response(stream: &mut Stream, response: &Response) -> Result<(), ()> {
    let bytes = response.frame.encode();
    if response.drop_mid_response {
        let cut = (bytes.len() / 2).max(1);
        let _ = stream.write_all(&bytes[..cut]);
        let _ = stream.flush();
        stream.shutdown();
        return Err(());
    }
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|_| ())
}

fn handle_connection(d: &Arc<Daemon>, stream: Stream) {
    let _connections = GaugeGuard::increment(&d.connections);
    match failpoint::check("serve.accept") {
        // A panic here kills only this connection thread — the daemon,
        // its accept loop, and its workers keep serving.
        Some(FailAction::Panic) => panic!("injected failpoint panic at `serve.accept`"),
        Some(FailAction::Err(_)) | Some(FailAction::Drop) => {
            stream.shutdown();
            return;
        }
        Some(FailAction::Sleep(_)) | None => {}
    }
    if stream.set_timeouts(d.io_timeout).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let frame = match wire::read_frame(&mut reader, d.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF
            Err(WireError::Frame(msg)) => {
                // Framing held; report and keep the connection.
                let resp = Response::whole(Daemon::err_frame("", ErrorCode::Protocol, &msg));
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Err(WireError::Fatal(msg)) => {
                // Desynchronized; best-effort report, then close.
                let resp = Response::whole(Daemon::err_frame("", ErrorCode::Protocol, &msg));
                let _ = write_response(&mut writer, &resp);
                writer.shutdown();
                return;
            }
            // Dead or timed-out peer: drop the connection, keep the
            // daemon.
            Err(WireError::Io(_)) => return,
        };
        if frame.kind != FrameKind::Req {
            let resp = Response::whole(Daemon::err_frame(
                frame.get("id").unwrap_or(""),
                ErrorCode::Protocol,
                &format!("expected a req frame, got {}", frame.kind),
            ));
            if write_response(&mut writer, &resp).is_err() {
                return;
            }
            continue;
        }
        let id = frame.get("id").unwrap_or("").to_string();
        let response = match frame.get("op") {
            Some("ping") => Response::whole(
                Frame::new(FrameKind::Ok)
                    .field("id", &id)
                    .field("pong", "1"),
            ),
            Some("health") => Response::whole(d.health_frame(&id)),
            Some("eval") => {
                if d.draining.load(Ordering::Relaxed) {
                    Response::whole(Daemon::err_frame(
                        &id,
                        ErrorCode::ShuttingDown,
                        "the daemon is draining toward shutdown",
                    ))
                } else {
                    let (tx, rx) = mpsc::channel();
                    let seq = d.seq.fetch_add(1, Ordering::Relaxed);
                    let admitted = {
                        let mut q = d.queue.lock().expect("admission queue poisoned");
                        if q.closed {
                            Err(ErrorCode::ShuttingDown)
                        } else if q.jobs.len() >= d.queue_depth {
                            Err(ErrorCode::Overloaded)
                        } else {
                            q.jobs.push_back(Job {
                                seq,
                                frame,
                                reply: tx,
                            });
                            d.queued.fetch_add(1, Ordering::Relaxed);
                            Ok(())
                        }
                    };
                    match admitted {
                        Ok(()) => {
                            d.available.notify_one();
                            rx.recv().unwrap_or_else(|_| {
                                Response::whole(Daemon::err_frame(
                                    &id,
                                    ErrorCode::Internal,
                                    "worker vanished before replying",
                                ))
                            })
                        }
                        Err(code) => {
                            if code == ErrorCode::Overloaded {
                                d.shed_overloaded.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::whole(Daemon::err_frame(
                                &id,
                                code,
                                &format!(
                                    "admission queue is full ({} queued); retry with backoff",
                                    d.queue_depth
                                ),
                            ))
                        }
                    }
                }
            }
            Some(other) => Response::whole(Daemon::err_frame(
                &id,
                ErrorCode::BadRequest,
                &format!("unknown op {other:?} (want eval, health, or ping)"),
            )),
            None => Response::whole(Daemon::err_frame(
                &id,
                ErrorCode::BadRequest,
                "request has no `op` field",
            )),
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn bind(cfg: &ServeConfig) -> Result<Listener, String> {
    if let Some(path) = &cfg.unix_path {
        #[cfg(unix)]
        {
            // A stale socket file from a crashed daemon would make bind
            // fail; remove it (a live daemon holds the listener, not
            // just the file, so this only clears leftovers).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("binding unix socket {}: {e}", path.display()))?;
            return Ok(Listener::Unix(listener, path.clone()));
        }
        #[cfg(not(unix))]
        return Err(format!(
            "unix sockets are not supported on this platform ({})",
            path.display()
        ));
    }
    TcpListener::bind(&cfg.addr)
        .map(Listener::Tcp)
        .map_err(|e| format!("binding {}: {e}", cfg.addr))
}

/// Runs the daemon until SIGINT/SIGTERM, then drains gracefully.
///
/// Prints `teaal serve: listening on <addr>` to stdout once bound (the
/// soak driver and tests parse this line for the ephemeral port), and a
/// drain summary to stderr on shutdown.
///
/// # Errors
///
/// A human-readable message when binding or configuration fails; once
/// serving, faults are contained per connection/request and never
/// surface here.
pub fn serve(cfg: ServeConfig) -> Result<ExitCode, String> {
    install_signal_handlers();
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
    let listener = bind(&cfg)?;
    listener
        .set_nonblocking()
        .map_err(|e| format!("listener nonblocking mode: {e}"))?;

    let ctx = EvalContext::new();
    if let Some(bytes) = cfg.max_cache_bytes {
        ctx.set_max_cache_bytes(bytes);
    }
    let daemon = Arc::new(Daemon {
        ctx,
        data: cfg
            .tensors
            .iter()
            .map(|t| TensorData::Owned(t.clone()))
            .collect(),
        queue: Mutex::new(Queue {
            jobs: VecDeque::new(),
            closed: false,
        }),
        available: Condvar::new(),
        queue_depth: cfg.queue_depth.max(1),
        workers: cfg.workers.max(1),
        io_timeout: cfg.io_timeout,
        max_frame_bytes: cfg.max_frame_bytes,
        limit_caps: cfg.limit_caps.clone(),
        ops: cfg.ops,
        extents: cfg.extents.clone(),
        start: Instant::now(),
        draining: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        active: Mutex::new(HashMap::new()),
        in_flight: AtomicU64::new(0),
        queued: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        served_ok: AtomicU64::new(0),
        served_err: AtomicU64::new(0),
        shed_overloaded: AtomicU64::new(0),
    });

    let workers: Vec<_> = (0..daemon.workers)
        .map(|i| {
            let d = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name(format!("teaal-serve-worker-{i}"))
                .spawn(move || worker_loop(&d))
                .map_err(|e| format!("spawning worker {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;

    println!("teaal serve: listening on {}", listener.local_display());
    let _ = std::io::stdout().flush();

    // Accept until a shutdown signal arrives. The listener is
    // nonblocking so the loop observes the flag within one poll tick.
    while !SHUTDOWN_REQUESTED.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let d = Arc::clone(&daemon);
                let spawned = std::thread::Builder::new()
                    .name("teaal-serve-conn".to_string())
                    .spawn(move || handle_connection(&d, stream));
                if spawned.is_err() {
                    // Out of threads: shed this connection, keep serving.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }

    // Graceful drain: stop accepting, let admitted work finish up to
    // the deadline, then cancel stragglers and flush queued requests
    // with `shutting-down`.
    drop(listener);
    daemon.draining.store(true, Ordering::Relaxed);
    eprintln!(
        "teaal serve: drain started ({} in flight, {} queued, budget {} ms)",
        daemon.in_flight.load(Ordering::Relaxed),
        daemon.queued.load(Ordering::Relaxed),
        cfg.drain.as_millis()
    );
    let deadline = Instant::now() + cfg.drain;
    while Instant::now() < deadline {
        if daemon.in_flight.load(Ordering::Relaxed) == 0
            && daemon.queued.load(Ordering::Relaxed) == 0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let cancelled = {
        let active = daemon.active.lock().expect("active registry poisoned");
        for token in active.values() {
            token.cancel();
        }
        active.len()
    };
    let flushed = {
        let mut q = daemon.queue.lock().expect("admission queue poisoned");
        q.closed = true;
        let pending: Vec<Job> = q.jobs.drain(..).collect();
        drop(q);
        daemon.available.notify_all();
        let n = pending.len();
        for job in pending {
            daemon.queued.fetch_sub(1, Ordering::Relaxed);
            let id = job.frame.get("id").unwrap_or("");
            let _ = job.reply.send(Response::whole(Daemon::err_frame(
                id,
                ErrorCode::ShuttingDown,
                "the daemon shut down before this request reached a worker",
            )));
        }
        n
    };
    for worker in workers {
        let _ = worker.join();
    }
    // Give connection handlers a bounded moment to flush final
    // responses; single-shot clients disconnect right after reading.
    let flush_deadline = Instant::now() + CONNECTION_FLUSH_GRACE;
    while daemon.connections.load(Ordering::Relaxed) > 0 && Instant::now() < flush_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    eprintln!(
        "teaal serve: drained ({} cancelled, {} flushed from queue, {} ok / {} err served)",
        cancelled,
        flushed,
        daemon.served_ok.load(Ordering::Relaxed),
        daemon.served_err.load(Ordering::Relaxed)
    );
    Ok(ExitCode::SUCCESS)
}

/// Parses `teaal serve` command-line arguments (everything after the
/// subcommand) and runs the daemon.
///
/// # Errors
///
/// A usage message for unknown or malformed options.
pub fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServeConfig::default();
    let mut seed = 0u64;
    // `--random` needs rank names before generation, and generation
    // needs the seed; collect first, generate after the scan.
    let mut randoms: Vec<(String, Vec<String>, u64, u64, usize)> = Vec::new();
    let mut i = 2usize;
    while i < args.len() {
        let need = |what: &str| format!("{} needs {what}", args[i]);
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = args.get(i + 1).ok_or_else(|| need("HOST:PORT"))?.clone();
                i += 2;
            }
            "--unix" => {
                cfg.unix_path = Some(PathBuf::from(
                    args.get(i + 1).ok_or_else(|| need("a socket path"))?,
                ));
                i += 2;
            }
            "--workers" => {
                cfg.workers = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| need("a positive integer"))?;
                i += 2;
            }
            "--queue" => {
                cfg.queue_depth = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| need("a positive integer"))?;
                i += 2;
            }
            "--drain-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| need("an integer (milliseconds)"))?;
                cfg.drain = Duration::from_millis(ms);
                i += 2;
            }
            "--io-timeout-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| need("a positive integer (milliseconds)"))?;
                cfg.io_timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--max-frame-kb" => {
                let kb: usize = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| need("a positive integer (KiB)"))?;
                cfg.max_frame_bytes = kb.saturating_mul(1024);
                i += 2;
            }
            "--ops" => {
                cfg.ops = parse_ops(args.get(i + 1).ok_or_else(|| need("a table name"))?)?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| need("an integer"))?;
                i += 2;
            }
            "--tensor" => {
                let kv = args.get(i + 1).ok_or_else(|| need("NAME=FILE"))?;
                let (name, path) = kv.split_once('=').ok_or("--tensor needs NAME=FILE")?;
                let f = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
                let t = tio::read_tensor(BufReader::new(f), name).map_err(|e| e.to_string())?;
                cfg.tensors.push(t);
                i += 2;
            }
            "--random" => {
                // No spec is loaded at startup, so rank names are part
                // of the syntax: NAME=R1,R2:RxC:NNZ.
                let kv = args.get(i + 1).ok_or_else(|| need("NAME=R1,R2:RxC:NNZ"))?;
                let parsed = (|| {
                    let (name, rest) = kv.split_once('=')?;
                    let (ranks, rest) = rest.split_once(':')?;
                    let (shape, nnz) = rest.split_once(':')?;
                    let (r, c) = shape.split_once('x')?;
                    let ranks: Vec<String> =
                        ranks.split(',').map(|s| s.trim().to_string()).collect();
                    if ranks.len() != 2 {
                        return None;
                    }
                    let rows: u64 = r.parse().ok()?;
                    let cols: u64 = c.parse().ok()?;
                    if rows == 0 || cols == 0 {
                        return None;
                    }
                    let nnz: usize = nnz.parse().ok()?;
                    Some((name.to_string(), ranks, rows, cols, nnz))
                })()
                .ok_or("--random needs NAME=R1,R2:RxC:NNZ with two ranks and nonzero dimensions")?;
                randoms.push(parsed);
                i += 2;
            }
            "--extent" => {
                let kv = args.get(i + 1).ok_or_else(|| need("RANK=N"))?;
                let (rank, n) = kv.split_once('=').ok_or("--extent needs RANK=N")?;
                cfg.extents
                    .push((rank.to_string(), n.parse().map_err(|_| "bad extent")?));
                i += 2;
            }
            "--deadline-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| need("an integer (milliseconds)"))?;
                cfg.limit_caps.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--max-engine-steps" => {
                cfg.limit_caps.max_engine_steps = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| need("an integer"))?,
                );
                i += 2;
            }
            "--max-output-entries" => {
                cfg.limit_caps.max_output_entries = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| need("an integer"))?,
                );
                i += 2;
            }
            "--max-cache-mb" => {
                let mb: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| need("an integer (mebibytes)"))?;
                cfg.max_cache_bytes = Some(mb.saturating_mul(1024 * 1024));
                i += 2;
            }
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    for (name, ranks, rows, cols, nnz) in randoms {
        cfg.tensors.push(genmat::uniform(
            &name,
            &[ranks[0].as_str(), ranks[1].as_str()],
            rows,
            cols,
            nnz,
            seed,
        ));
    }
    serve(cfg)
}
