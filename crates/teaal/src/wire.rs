//! The `teaal serve` wire format: hand-rolled, length-prefixed,
//! newline-framed request/response frames.
//!
//! The vendored serde stub has no serializer (its derives are no-ops),
//! so the daemon speaks a format small enough to parse by hand and
//! robust enough to fuzz. When the real serde lands (see ROADMAP), the
//! field encoding below shrinks to derives; the framing stays.
//!
//! # Frame layout
//!
//! ```text
//! teaal/1 <kind> <len>\n      header: protocol, frame kind, body length
//! <len bytes of body>         UTF-8 field lines
//! \n                          frame terminator
//! ```
//!
//! - `<kind>` is `req`, `ok`, or `err` ([`FrameKind`]).
//! - `<len>` is the decimal byte length of the body, bounded by the
//!   reader's `max_frame` argument — an oversized claim is rejected
//!   *before* any allocation.
//! - The body is a sequence of `key value\n` lines. Keys are
//!   `[a-z0-9_.-]+`; values are percent-encoded (`%25` for `%`, `%0A`
//!   for newline, `%0D` for carriage return) so any Unicode string —
//!   a whole YAML spec, a multi-line report — rides in one line.
//!   Keys may repeat; order is preserved.
//!
//! # Error discipline
//!
//! [`read_frame`] never panics, whatever the bytes. Failures divide by
//! whether the *framing* held:
//!
//! - [`WireError::Frame`] — the header and length were valid and the
//!   whole frame (body + terminator) was consumed, but the body didn't
//!   decode. The connection is still synchronized: respond with a
//!   structured `protocol` error and keep reading.
//! - [`WireError::Fatal`] — the header was malformed, the length
//!   over-budget, the stream truncated mid-frame, or the terminator
//!   missing. Resynchronization is impossible; close the connection.
//! - [`WireError::Io`] — transport failure (including read timeouts on
//!   a dead peer); close the connection.

use std::fmt;
use std::io::{BufRead, Read, Write};

/// Protocol identifier expected as the first header token.
pub const PROTOCOL: &str = "teaal/1";

/// Default cap on a frame's body length (16 MiB) — large enough for a
/// report over a big tensor, small enough to bound per-connection
/// memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Cap on the header line. The longest legal header is
/// `teaal/1 err <20-digit len>\n` — anything longer is garbage.
const MAX_HEADER_BYTES: usize = 64;

/// The three frame kinds on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A client request.
    Req,
    /// A successful response.
    Ok,
    /// A structured error response.
    Err,
}

impl FrameKind {
    /// The kind's header token.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameKind::Req => "req",
            FrameKind::Ok => "ok",
            FrameKind::Err => "err",
        }
    }

    fn parse(token: &str) -> Option<FrameKind> {
        match token {
            "req" => Some(FrameKind::Req),
            "ok" => Some(FrameKind::Ok),
            "err" => Some(FrameKind::Err),
            _ => None,
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed (or to-be-encoded) frame: a kind plus ordered,
/// possibly-repeating `(key, value)` fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind from the header.
    pub kind: FrameKind,
    /// Body fields in wire order; keys may repeat.
    pub fields: Vec<(String, String)>,
}

impl Frame {
    /// An empty frame of the given kind.
    pub fn new(kind: FrameKind) -> Frame {
        Frame {
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style). Keys must be `[a-z0-9_.-]+`;
    /// an invalid key is a programming error and panics in debug
    /// builds.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Frame {
        debug_assert!(valid_key(key), "invalid wire field key {key:?}");
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The first value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value for `key`, in wire order.
    pub fn all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.fields
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Encodes the frame — header, body, terminator — as wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = String::new();
        for (key, value) in &self.fields {
            debug_assert!(valid_key(key), "invalid wire field key {key:?}");
            body.push_str(key);
            body.push(' ');
            body.push_str(&encode_value(value));
            body.push('\n');
        }
        let mut out = Vec::with_capacity(body.len() + 32);
        out.extend_from_slice(format!("{PROTOCOL} {} {}\n", self.kind, body.len()).as_bytes());
        out.extend_from_slice(body.as_bytes());
        out.push(b'\n');
        out
    }
}

/// Why a frame failed to read; see the module docs for the recovery
/// contract of each variant.
#[derive(Debug)]
pub enum WireError {
    /// Body-level decode failure; the connection is still synchronized.
    Frame(String),
    /// Framing-level failure; the connection must be closed.
    Fatal(String),
    /// Transport failure; the connection must be closed.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Frame(m) => write!(f, "protocol error: {m}"),
            WireError::Fatal(m) => write!(f, "unrecoverable protocol error: {m}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'_' | b'.' | b'-')
        })
}

/// Percent-encodes a field value: `%` → `%25`, `\n` → `%0A`, `\r` →
/// `%0D`. Everything else passes through, so encoded values stay
/// readable.
pub fn encode_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

/// Decodes a percent-encoded field value. Only the three escapes
/// [`encode_value`] emits are legal (hex case-insensitive); anything
/// else is a decode error, never a panic.
///
/// # Errors
///
/// A description of the first malformed escape.
pub fn decode_value(value: &str) -> Result<String, String> {
    if !value.contains('%') {
        return Ok(value.to_string());
    }
    let bytes = value.as_bytes();
    let mut out = String::with_capacity(value.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'%' {
            // Multi-byte UTF-8 sequences never contain '%' (0x25), so
            // byte-wise scanning is safe; push the full char.
            let ch = value[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
            continue;
        }
        let esc = bytes
            .get(i + 1..i + 3)
            .ok_or_else(|| format!("truncated escape at byte {i}"))?;
        match &esc.to_ascii_uppercase()[..] {
            b"25" => out.push('%'),
            b"0A" => out.push('\n'),
            b"0D" => out.push('\r'),
            other => {
                return Err(format!(
                    "unknown escape %{} at byte {i}",
                    String::from_utf8_lossy(other)
                ))
            }
        }
        i += 3;
    }
    Ok(out)
}

/// Reads one frame, or `None` on a clean end-of-stream at a frame
/// boundary.
///
/// Body allocation is bounded: the claimed length is checked against
/// `max_frame` before any buffer is sized, and the header line itself
/// is capped, so a hostile peer cannot force unbounded memory.
///
/// # Errors
///
/// See [`WireError`] for the per-variant recovery contract.
pub fn read_frame<R: BufRead>(r: &mut R, max_frame: usize) -> Result<Option<Frame>, WireError> {
    // Header, bounded: a stream of garbage with no newline must not
    // buffer without limit.
    let mut header: Vec<u8> = Vec::with_capacity(48);
    let took = r
        .by_ref()
        .take(MAX_HEADER_BYTES as u64)
        .read_until(b'\n', &mut header)?;
    if took == 0 {
        return Ok(None); // clean EOF at a frame boundary
    }
    if header.last() != Some(&b'\n') {
        return Err(WireError::Fatal(if took >= MAX_HEADER_BYTES {
            format!("header exceeds {MAX_HEADER_BYTES} bytes")
        } else {
            "stream truncated inside a frame header".to_string()
        }));
    }
    header.pop();
    let header = std::str::from_utf8(&header)
        .map_err(|_| WireError::Fatal("frame header is not UTF-8".to_string()))?;
    let mut tokens = header.split_ascii_whitespace();
    let (proto, kind, len) = match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
        (Some(p), Some(k), Some(l), None) => (p, k, l),
        _ => {
            return Err(WireError::Fatal(format!(
                "malformed frame header {header:?} (want `{PROTOCOL} <kind> <len>`)"
            )))
        }
    };
    if proto != PROTOCOL {
        return Err(WireError::Fatal(format!(
            "unknown protocol {proto:?} (this server speaks {PROTOCOL})"
        )));
    }
    let len: usize = len
        .parse()
        .map_err(|_| WireError::Fatal(format!("bad frame length {len:?}")))?;
    if len > max_frame {
        return Err(WireError::Fatal(format!(
            "frame length {len} exceeds the {max_frame}-byte limit"
        )));
    }
    let kind = FrameKind::parse(kind);

    // Body + terminator. Consuming both before judging the body keeps
    // the connection synchronized for `Frame`-level errors.
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            WireError::Fatal("stream truncated inside a frame body".to_string())
        }
        _ => WireError::Io(e),
    })?;
    let mut terminator = [0u8; 1];
    r.read_exact(&mut terminator).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            WireError::Fatal("stream truncated before the frame terminator".to_string())
        }
        _ => WireError::Io(e),
    })?;
    if terminator[0] != b'\n' {
        return Err(WireError::Fatal(format!(
            "frame body overran its declared length (terminator byte {:#04x})",
            terminator[0]
        )));
    }

    // Everything below is recoverable: the frame was fully consumed.
    let kind = kind.ok_or_else(|| WireError::Frame("unknown frame kind".to_string()))?;
    let body = std::str::from_utf8(&body)
        .map_err(|_| WireError::Frame("frame body is not UTF-8".to_string()))?;
    let mut fields = Vec::new();
    for (n, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (key, value) = match line.split_once(' ') {
            Some((k, v)) => (k, v),
            None => (line, ""),
        };
        if !valid_key(key) {
            return Err(WireError::Frame(format!(
                "body line {}: invalid field key {key:?}",
                n + 1
            )));
        }
        let value = decode_value(value)
            .map_err(|e| WireError::Frame(format!("body line {}: {e}", n + 1)))?;
        fields.push((key.to_string(), value));
    }
    Ok(Some(Frame { kind, fields }))
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Any transport error from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_all(bytes: &[u8]) -> (Vec<Frame>, Option<String>) {
        let mut r = BufReader::new(bytes);
        let mut frames = Vec::new();
        loop {
            match read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => return (frames, None),
                Err(e) => return (frames, Some(e.to_string())),
            }
        }
    }

    #[test]
    fn roundtrip_preserves_kind_fields_and_order() {
        let frame = Frame::new(FrameKind::Req)
            .field("op", "eval")
            .field("spec", "einsum:\n  a: [K, M]\n100% pure\r\n")
            .field("extent", "K=4")
            .field("extent", "M=8");
        let (frames, err) = parse_all(&frame.encode());
        assert_eq!(err, None);
        assert_eq!(frames, vec![frame.clone()]);
        assert_eq!(
            frames[0].all("extent").collect::<Vec<_>>(),
            vec!["K=4", "M=8"]
        );
        assert_eq!(frames[0].get("op"), Some("eval"));
    }

    #[test]
    fn empty_body_and_empty_values_roundtrip() {
        let empty = Frame::new(FrameKind::Ok);
        let (frames, err) = parse_all(&empty.encode());
        assert_eq!((frames, err), (vec![Frame::new(FrameKind::Ok)], None));
        let blank_value = Frame::new(FrameKind::Ok).field("pong", "");
        let (frames, err) = parse_all(&blank_value.encode());
        assert_eq!(err, None);
        assert_eq!(frames[0].get("pong"), Some(""));
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_fatal() {
        let (frames, err) = parse_all(b"");
        assert!(frames.is_empty() && err.is_none());
        let bytes = Frame::new(FrameKind::Ok).field("id", "7").encode();
        for cut in 1..bytes.len() {
            let (frames, err) = parse_all(&bytes[..cut]);
            assert!(frames.is_empty(), "truncation at {cut} yielded a frame");
            assert!(err.is_some(), "truncation at {cut} must error");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // A claimed multi-exabyte body must fail on the length check,
        // not on an allocation attempt.
        let bytes = format!("{PROTOCOL} req {}\n", u64::MAX);
        let mut r = BufReader::new(bytes.as_bytes());
        match read_frame(&mut r, 1024) {
            Err(WireError::Fatal(m)) => assert!(m.contains("exceeds"), "{m}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_garbage_does_not_buffer_unboundedly() {
        let garbage = vec![b'x'; 10_000];
        let mut r = BufReader::new(&garbage[..]);
        match read_frame(&mut r, 1024) {
            Err(WireError::Fatal(m)) => assert!(m.contains("header"), "{m}"),
            other => panic!("expected Fatal, got {other:?}"),
        }
    }

    #[test]
    fn bad_body_is_recoverable_and_stays_synchronized() {
        // Frame 1 has a body-level problem (bad escape) inside valid
        // framing; frame 2 must still parse.
        let good = Frame::new(FrameKind::Ok).field("id", "2");
        let bad_body = "spec %ZZ\n";
        let mut bytes = format!("{PROTOCOL} req {}\n{bad_body}\n", bad_body.len()).into_bytes();
        bytes.extend_from_slice(&good.encode());
        let mut r = BufReader::new(&bytes[..]);
        match read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::Frame(m)) => assert!(m.contains("escape"), "{m}"),
            other => panic!("expected recoverable Frame error, got {other:?}"),
        }
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            Some(good)
        );
    }

    #[test]
    fn unknown_kind_is_recoverable() {
        let bytes = format!("{PROTOCOL} zap 0\n\n{PROTOCOL} ok 0\n\n");
        let mut r = BufReader::new(bytes.as_bytes());
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::Frame(_))
        ));
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES).unwrap(),
            Some(Frame::new(FrameKind::Ok))
        );
    }

    #[test]
    fn wrong_protocol_and_malformed_headers_are_fatal() {
        for header in ["http/1.1 req 0\n\n", "teaal/1 req\n", "teaal/1 req 0 x\n"] {
            let mut r = BufReader::new(header.as_bytes());
            assert!(
                matches!(read_frame(&mut r, 1024), Err(WireError::Fatal(_))),
                "header {header:?} must be fatal"
            );
        }
    }

    #[test]
    fn decode_rejects_truncated_escapes() {
        assert!(decode_value("%").is_err());
        assert!(decode_value("%2").is_err());
        assert!(decode_value("abc%0").is_err());
        assert_eq!(decode_value("%0a%0d%25").unwrap(), "\n\r%");
    }
}
