//! `teaal` — the command-line front end.
//!
//! ```text
//! teaal check   <spec.yaml>                # parse + validate + lower
//! teaal run     <spec.yaml> [options]      # execute and print the report
//! teaal output  <spec.yaml> [options]      # execute and print result tensors
//! teaal explore <spec.yaml> [options]      # search loop orders for an einsum
//!
//! options:
//!   --tensor NAME=FILE     load an input tensor (see workloads::io format)
//!   --random NAME=RxC:NNZ  generate a uniform random input
//!   --extent RANK=N        declare a rank extent (affine/dense ranks)
//!   --ops sssp|arithmetic  operator table (default arithmetic)
//!   --seed N               RNG seed for --random (default 0)
//!   --threads N            worker cap for parallel simulation (default:
//!                          TEAAL_THREADS or 1); results are bit-identical
//!                          for every N
//!
//! explore options:
//!   --einsum NAME          einsum to search (default: the last in the spec)
//!   --fast                 two-phase search: analytical estimator prunes,
//!                          engine verifies the survivors (same winner,
//!                          far fewer engine runs)
//!   --objective time|energy|traffic   ranking objective (default time)
//!   --budget N             candidate universe size (default 720)
//!   --top-k N              engine-verified survivors with --fast (default 12)
//!   --margin F             estimate safety margin with --fast (default 1.5)
//! ```

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use teaal::prelude::*;
use teaal::sim::{explore_fast, explore_loop_orders_with_threads, Candidate, Objective};
use teaal::workloads::{genmat, io as tio};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage: teaal <check|run|output|explore> <spec.yaml> [--tensor NAME=FILE]");
            eprintln!("             [--random NAME=RxC:NNZ] [--extent RANK=N]");
            eprintln!("             [--ops sssp|arithmetic] [--seed N] [--threads N]");
            eprintln!("             [--einsum NAME] [--fast] [--objective time|energy|traffic]");
            eprintln!("             [--budget N] [--top-k N] [--margin F]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.get(1).ok_or("missing command")?.as_str();
    if !matches!(command, "check" | "run" | "output" | "explore") {
        return Err(format!("unknown command {command}"));
    }
    let spec_path = args.get(2).ok_or("missing spec path")?;
    let source =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let spec = TeaalSpec::parse(&source).map_err(|e| e.to_string())?;

    if command == "check" {
        let plans = teaal::core::ir::lower(&spec).map_err(|e| e.to_string())?;
        println!(
            "spec OK: {} einsum(s), {} block(s) after fusion",
            plans.len(),
            { teaal::core::ir::infer_blocks(&spec, &plans).len() }
        );
        for p in &plans {
            let loops: Vec<&str> = p.loop_ranks.iter().map(|l| l.name.as_str()).collect();
            println!("  {}: loops [{}]", p.equation, loops.join(", "));
        }
        return Ok(());
    }

    // Collect options.
    let mut tensors: Vec<Tensor> = Vec::new();
    let mut extents: Vec<(String, u64)> = Vec::new();
    let mut ops = OpTable::arithmetic();
    let mut seed = 0u64;
    let mut threads = teaal::sim::default_threads();
    let mut einsum: Option<String> = None;
    let mut fast = false;
    let mut explore_cfg = teaal::sim::ExploreConfig::default();
    let mut i = 3usize;
    while i < args.len() {
        match args[i].as_str() {
            "--tensor" => {
                let kv = args.get(i + 1).ok_or("--tensor needs NAME=FILE")?;
                let (name, path) = kv.split_once('=').ok_or("--tensor needs NAME=FILE")?;
                let f = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
                let t = tio::read_tensor(BufReader::new(f), name).map_err(|e| e.to_string())?;
                tensors.push(t);
                i += 2;
            }
            "--random" => {
                let kv = args.get(i + 1).ok_or("--random needs NAME=RxC:NNZ")?;
                let (name, dims) = kv.split_once('=').ok_or("--random needs NAME=RxC:NNZ")?;
                let (shape, nnz) = dims.split_once(':').ok_or("--random needs RxC:NNZ")?;
                let (r, c) = shape.split_once('x').ok_or("--random needs RxC:NNZ")?;
                let rank_ids = spec
                    .rank_order_of(name)
                    .ok_or_else(|| format!("tensor {name} not declared in the spec"))?;
                if rank_ids.len() != 2 {
                    return Err("--random only generates 2-tensors".into());
                }
                let t = genmat::uniform(
                    name,
                    &[&rank_ids[0], &rank_ids[1]],
                    r.parse().map_err(|_| "bad rows")?,
                    c.parse().map_err(|_| "bad cols")?,
                    nnz.parse().map_err(|_| "bad nnz")?,
                    seed,
                );
                tensors.push(t);
                i += 2;
            }
            "--extent" => {
                let kv = args.get(i + 1).ok_or("--extent needs RANK=N")?;
                let (rank, n) = kv.split_once('=').ok_or("--extent needs RANK=N")?;
                extents.push((rank.to_string(), n.parse().map_err(|_| "bad extent")?));
                i += 2;
            }
            "--ops" => {
                ops = match args.get(i + 1).map(String::as_str) {
                    Some("sssp") | Some("bfs") => OpTable::sssp(),
                    Some("arithmetic") => OpTable::arithmetic(),
                    other => return Err(format!("unknown op table {other:?}")),
                };
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--threads needs a positive integer")?;
                i += 2;
            }
            "--einsum" => {
                einsum = Some(args.get(i + 1).ok_or("--einsum needs a name")?.clone());
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            "--objective" => {
                explore_cfg.objective = match args.get(i + 1).map(String::as_str) {
                    Some("time") => Objective::Time,
                    Some("energy") => Objective::Energy,
                    Some("traffic") => Objective::Traffic,
                    other => return Err(format!("unknown objective {other:?}")),
                };
                i += 2;
            }
            "--budget" => {
                explore_cfg.budget = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--budget needs a positive integer")?;
                i += 2;
            }
            "--top-k" => {
                explore_cfg.top_k = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--top-k needs a positive integer")?;
                i += 2;
            }
            "--margin" => {
                explore_cfg.margin = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f >= 1.0)
                    .ok_or("--margin needs a number >= 1.0")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }

    if command == "explore" {
        if !extents.is_empty() {
            return Err("explore does not support --extent (extents come from inputs)".into());
        }
        let target = match einsum {
            Some(name) => name,
            None => {
                let plans = teaal::core::ir::lower(&spec).map_err(|e| e.to_string())?;
                plans
                    .last()
                    .map(|p| p.equation.name().to_string())
                    .ok_or("spec has no einsums")?
            }
        };
        explore_cfg.threads = threads;
        let print_top = |cands: &[Candidate]| {
            for (idx, c) in cands.iter().take(8).enumerate() {
                println!(
                    "  {}. [{}]  time {:.4e}s  energy {:.4e}J  dram {}B",
                    idx + 1,
                    c.loop_order.join(", "),
                    c.seconds,
                    c.energy_joules,
                    c.dram_bytes,
                );
            }
        };
        if fast {
            let out = explore_fast(&spec, &target, &tensors, ops, &explore_cfg)
                .map_err(|e| e.to_string())?;
            println!(
                "einsum {target}: {} candidates estimated, {} engine-verified",
                out.estimator_evals, out.engine_evals
            );
            print_top(&out.candidates);
            println!("best: [{}]", out.candidates[0].loop_order.join(", "));
        } else {
            let results = explore_loop_orders_with_threads(
                &spec,
                &target,
                &tensors,
                ops,
                explore_cfg.objective,
                explore_cfg.budget,
                threads,
            )
            .map_err(|e| e.to_string())?;
            println!(
                "einsum {target}: {} candidates engine-evaluated",
                results.len()
            );
            print_top(&results);
            println!("best: [{}]", results[0].loop_order.join(", "));
        }
        return Ok(());
    }

    let mut sim = Simulator::new(spec)
        .map_err(|e| e.to_string())?
        .with_ops(ops)
        .with_threads(threads);
    for (rank, n) in extents {
        sim = sim.with_rank_extent(&rank, n);
    }
    let report = sim.run(&tensors).map_err(|e| e.to_string())?;

    match command {
        "run" => println!("{report}"),
        "output" => {
            for (name, tensor) in &report.outputs {
                println!("# --- {name} ---");
                tio::write_tensor_data(std::io::stdout().lock(), tensor)
                    .map_err(|e| e.to_string())?;
            }
        }
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}
