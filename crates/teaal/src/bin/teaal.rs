//! `teaal` — the command-line front end.
//!
//! ```text
//! teaal check   <spec.yaml>                # parse + validate + lower
//! teaal run     <spec.yaml> [options]      # execute and print the report
//! teaal output  <spec.yaml> [options]      # execute and print result tensors
//! teaal explore <spec.yaml> [options]      # search loop orders for an einsum
//! teaal batch   <requests.yaml> [options]  # evaluate many mapping requests
//!                                          # against one loaded dataset
//! teaal serve   [options]                  # long-running evaluation daemon
//!                                          # (see `teaal::serve`)
//! teaal client  <ping|health|eval> [spec]  # retrying client for the daemon
//!                                          # (see `teaal::client`)
//!
//! options:
//!   --tensor NAME=FILE     load an input tensor (see workloads::io format)
//!   --random NAME=RxC:NNZ  generate a uniform random input
//!   --extent RANK=N        declare a rank extent (affine/dense ranks)
//!   --ops sssp|arithmetic  operator table (default arithmetic)
//!   --seed N               RNG seed for --random (default 0)
//!   --threads N            worker cap for parallel simulation (default:
//!                          TEAAL_THREADS or 1); results are bit-identical
//!                          for every N
//!   --cache-stats          print pipeline cache statistics (hits, misses,
//!                          approximate bytes, evictions) to stderr on exit
//!   --deadline-ms N        wall-clock budget; a run past it returns a
//!                          structured deadline error with partial telemetry
//!   --max-engine-steps N   engine-step budget (loop-rank visits)
//!   --max-output-entries N output-entry budget across all output tensors
//!   --max-cache-mb N       bound resident pipeline-cache bytes; over-budget
//!                          artifacts are LRU-evicted and rebuilt
//!                          bit-identically on the next miss
//!
//! explore options:
//!   --einsum NAME          einsum to search (default: the last in the spec)
//!   --fast                 two-phase search: analytical estimator prunes,
//!                          engine verifies the survivors (same winner,
//!                          far fewer engine runs)
//!   --objective time|energy|traffic   ranking objective (default time)
//!   --budget N             candidate universe size (default 720)
//!   --top-k N              engine-verified survivors with --fast (default 12)
//!   --margin F             estimate safety margin with --fast (default 1.5)
//! ```
//!
//! ## `teaal batch`
//!
//! The requests file is a YAML list; each request names a spec and may
//! override the loop order and operator table:
//!
//! ```text
//! - spec: catalog/spmspm.yaml
//! - spec: catalog/gamma_em.yaml
//!   label: gamma-swapped
//!   loop-order:
//!     Z: [K, M, N]
//! ```
//!
//! Input tensors are loaded once and shared by every request; parsing,
//! compilation, input transforms, and whole reports flow through one
//! content-addressed [`EvalContext`], so duplicate work across requests
//! is cached. Requests fan out across `--threads` workers (each request
//! simulates sequentially). Per request, stdout carries a
//! `# --- request I (LABEL) ---` header followed by exactly the report
//! `teaal run` would print — `grep -v '^#'` recovers the byte-identical
//! concatenation of the per-request runs.
//!
//! The batch is validated up front: every malformed request is reported
//! (with its index and label), not just the first. At run time a failing
//! request — including one that panics — emits an error block under its
//! header and the batch continues; any failure makes the process exit
//! with code 2 (partial failure) after every request has run.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use teaal::fibertree::telemetry;
use teaal::prelude::*;
use teaal::request::{error_block, evaluate_request, parse_ops, EvalFailure, RequestOverrides};
use teaal::sim::{
    explore_fast_with_context, explore_loop_orders_with_context, CancelToken, Candidate,
    EvalContext, EvalLimits, Objective,
};
use teaal::workloads::{genmat, io as tio};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!(
                "usage: teaal <check|run|output|explore|batch> <spec.yaml> [--tensor NAME=FILE]"
            );
            eprintln!("             [--random NAME=RxC:NNZ] [--extent RANK=N]");
            eprintln!("             [--ops sssp|arithmetic] [--seed N] [--threads N]");
            eprintln!("             [--cache-stats] [--deadline-ms N] [--max-engine-steps N]");
            eprintln!("             [--max-output-entries N] [--max-cache-mb N]");
            eprintln!("             [--einsum NAME] [--fast] [--objective time|energy|traffic]");
            eprintln!("             [--budget N] [--top-k N] [--margin F]");
            eprintln!("       teaal serve  [--addr H:P|--unix PATH] [--workers N] [--queue N]");
            eprintln!("             [--drain-ms N] [--io-timeout-ms N] [--tensor NAME=FILE]");
            eprintln!("             [--random NAME=R1,R2:RxC:NNZ] [--extent RANK=N] [--ops T]");
            eprintln!("             [--deadline-ms N] [--max-engine-steps N] [--max-cache-mb N]");
            eprintln!(
                "       teaal client <ping|health|eval> [spec.yaml] [--addr H:P|--unix PATH]"
            );
            eprintln!("             [--retries N] [--backoff-ms N] [--timeout-ms N] [--repeat N]");
            eprintln!("             [--ops T] [--extent RANK=N] [--loop-order EINSUM=R1,R2,…]");
            ExitCode::FAILURE
        }
    }
}

/// One request of a `teaal batch` file.
struct BatchRequest {
    spec_path: String,
    label: Option<String>,
    ops: Option<OpTable>,
    /// Per-einsum loop-order overrides, applied to a clone of the spec.
    loop_order: Vec<(String, Vec<String>)>,
}

/// Parses the `teaal batch` requests file (a small YAML subset: a list of
/// flat maps, plus one nested `loop-order` map of `Einsum: [R1, R2, …]`
/// entries).
///
/// Validation is exhaustive: every malformed line and every request
/// missing its `spec:` field is collected (tagged with its request index
/// and label), and the combined report comes back as one error — a batch
/// author fixes the whole file in one round trip instead of replaying
/// stop-at-first-error.
fn parse_requests(text: &str) -> Result<Vec<BatchRequest>, String> {
    let mut requests: Vec<BatchRequest> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut in_loop_order = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let stripped = line.trim_start();
        if stripped.is_empty() || stripped.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("requests file line {}: {m}", ln + 1);
        let (is_item, body) = match stripped.strip_prefix("- ") {
            Some(rest) => (true, rest),
            None => (false, stripped),
        };
        if is_item {
            in_loop_order = false;
            requests.push(BatchRequest {
                spec_path: String::new(),
                label: None,
                ops: None,
                loop_order: Vec::new(),
            });
        }
        let Some(req) = requests.last_mut() else {
            errors.push(err(
                "expected the first request to start with '- spec: …'".into()
            ));
            continue;
        };
        let Some((key, value)) = body.split_once(':') else {
            errors.push(err(format!("expected 'key: value', got {body:?}")));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let indent = line.len() - stripped.len();
        if in_loop_order && !is_item && indent >= 4 {
            let Some(list) = value.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
                errors.push(err(format!("loop-order entry {key} needs '[R1, R2, …]'")));
                continue;
            };
            let ranks: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            req.loop_order.push((key.to_string(), ranks));
            continue;
        }
        in_loop_order = false;
        match key {
            "spec" => req.spec_path = value.to_string(),
            "label" => req.label = Some(value.to_string()),
            "ops" => match parse_ops(value) {
                Ok(table) => req.ops = Some(table),
                Err(m) => errors.push(err(m)),
            },
            "loop-order" if value.is_empty() => in_loop_order = true,
            other => errors.push(err(format!("unknown request field {other:?}"))),
        }
    }
    for (i, r) in requests.iter().enumerate() {
        if r.spec_path.is_empty() {
            let label = r.label.as_deref().unwrap_or("unlabeled");
            errors.push(format!("request {i} ({label}) has no 'spec:' field"));
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("\n"));
    }
    if requests.is_empty() {
        return Err("requests file contains no requests".into());
    }
    Ok(requests)
}

/// Prints the process-wide pipeline cache statistics (`--cache-stats`) to
/// stderr, one line per stage cache.
fn print_cache_stats() {
    let snap = telemetry::pipeline_snapshot();
    for (stage, s) in snap.stages() {
        eprintln!(
            "cache-stats: {stage:<9} hits={} misses={} bytes={} evictions={}",
            s.hits, s.misses, s.bytes, s.evictions
        );
    }
    eprintln!(
        "cache-stats: transform chains executed={}",
        snap.transform_execs
    );
    eprintln!(
        "cache-stats: degraded-sequential retries={}",
        snap.degraded_sequential
    );
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let command = args.get(1).ok_or("missing command")?.as_str();
    // The daemon and its client parse their own options (no spec path
    // positional), so they dispatch before the spec is read.
    match command {
        "serve" => return teaal::serve::run_serve(args),
        "client" => return teaal::client::run_client(args),
        _ => {}
    }
    if !matches!(command, "check" | "run" | "output" | "explore" | "batch") {
        return Err(format!("unknown command {command}"));
    }
    let spec_path = args.get(2).ok_or("missing spec path")?;
    let source =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;

    // Every subcommand evaluates through one staged-pipeline context:
    // SpecSource → ParsedSpec → LoweredPlan → PreparedInputs → SimReport,
    // each stage cached by content hash.
    let ctx = EvalContext::new();
    let requests: Vec<BatchRequest> = if command == "batch" {
        parse_requests(&source)?
    } else {
        Vec::new()
    };
    let specs: Vec<Arc<TeaalSpec>> = if command == "batch" {
        // Validate every request's spec up front, reporting all failures
        // (with index and label) rather than stopping at the first.
        let mut specs = Vec::new();
        let mut errors: Vec<String> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let label = r.label.as_deref().unwrap_or(&r.spec_path);
            match std::fs::read_to_string(&r.spec_path) {
                Ok(src) => match ctx.parse(&src) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => errors.push(format!("request {i} ({label}): {e}")),
                },
                Err(e) => errors.push(format!(
                    "request {i} ({label}): reading {}: {e}",
                    r.spec_path
                )),
            }
        }
        if !errors.is_empty() {
            return Err(errors.join("\n"));
        }
        specs
    } else {
        vec![ctx.parse(&source).map_err(|e| e.to_string())?]
    };

    if command == "check" {
        let spec = &specs[0];
        let plans = teaal::core::ir::lower(spec).map_err(|e| e.to_string())?;
        println!(
            "spec OK: {} einsum(s), {} block(s) after fusion",
            plans.len(),
            { teaal::core::ir::infer_blocks(spec, &plans).len() }
        );
        for p in &plans {
            let loops: Vec<&str> = p.loop_ranks.iter().map(|l| l.name.as_str()).collect();
            println!("  {}: loops [{}]", p.equation, loops.join(", "));
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Collect options. With `batch`, --random rank orders resolve against
    // the first request spec declaring the tensor.
    let rank_order_of =
        |name: &str| -> Option<Vec<String>> { specs.iter().find_map(|s| s.rank_order_of(name)) };
    let mut tensors: Vec<Tensor> = Vec::new();
    let mut extents: Vec<(String, u64)> = Vec::new();
    let mut ops = OpTable::arithmetic();
    let mut seed = 0u64;
    let mut threads = teaal::sim::default_threads();
    let mut cache_stats = false;
    let mut limits = EvalLimits::default();
    let mut einsum: Option<String> = None;
    let mut fast = false;
    let mut explore_cfg = teaal::sim::ExploreConfig::default();
    let mut i = 3usize;
    while i < args.len() {
        match args[i].as_str() {
            "--tensor" => {
                let kv = args.get(i + 1).ok_or("--tensor needs NAME=FILE")?;
                let (name, path) = kv.split_once('=').ok_or("--tensor needs NAME=FILE")?;
                let f = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
                let t = tio::read_tensor(BufReader::new(f), name).map_err(|e| e.to_string())?;
                tensors.push(t);
                i += 2;
            }
            "--random" => {
                let kv = args.get(i + 1).ok_or("--random needs NAME=RxC:NNZ")?;
                let (name, dims) = kv.split_once('=').ok_or("--random needs NAME=RxC:NNZ")?;
                let (shape, nnz) = dims.split_once(':').ok_or("--random needs RxC:NNZ")?;
                let (r, c) = shape.split_once('x').ok_or("--random needs RxC:NNZ")?;
                let rank_ids = rank_order_of(name)
                    .ok_or_else(|| format!("tensor {name} not declared in any spec"))?;
                if rank_ids.len() != 2 {
                    return Err("--random only generates 2-tensors".into());
                }
                let rows: u64 = r.parse().map_err(|_| "bad rows")?;
                let cols: u64 = c.parse().map_err(|_| "bad cols")?;
                // A zero dimension would make the generator sample from an
                // empty coordinate range (a panic, not an error).
                if rows == 0 || cols == 0 {
                    return Err(format!(
                        "--random {name}={rows}x{cols}: both dimensions must be at least 1"
                    ));
                }
                let t = genmat::uniform(
                    name,
                    &[&rank_ids[0], &rank_ids[1]],
                    rows,
                    cols,
                    nnz.parse().map_err(|_| "bad nnz")?,
                    seed,
                );
                tensors.push(t);
                i += 2;
            }
            "--extent" => {
                let kv = args.get(i + 1).ok_or("--extent needs RANK=N")?;
                let (rank, n) = kv.split_once('=').ok_or("--extent needs RANK=N")?;
                extents.push((rank.to_string(), n.parse().map_err(|_| "bad extent")?));
                i += 2;
            }
            "--ops" => {
                let name = args.get(i + 1).ok_or("--ops needs a table name")?;
                ops = parse_ops(name)?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--threads needs a positive integer")?;
                i += 2;
            }
            "--cache-stats" => {
                cache_stats = true;
                i += 1;
            }
            "--deadline-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--deadline-ms needs an integer (milliseconds)")?;
                limits.deadline = Some(std::time::Duration::from_millis(ms));
                i += 2;
            }
            "--max-engine-steps" => {
                limits.max_engine_steps = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-engine-steps needs an integer")?,
                );
                i += 2;
            }
            "--max-output-entries" => {
                limits.max_output_entries = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-output-entries needs an integer")?,
                );
                i += 2;
            }
            "--max-cache-mb" => {
                let mb: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-cache-mb needs an integer (mebibytes)")?;
                limits.max_resident_cache_bytes = Some(mb.saturating_mul(1024 * 1024));
                i += 2;
            }
            "--einsum" => {
                einsum = Some(args.get(i + 1).ok_or("--einsum needs a name")?.clone());
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            "--objective" => {
                explore_cfg.objective = match args.get(i + 1).map(String::as_str) {
                    Some("time") => Objective::Time,
                    Some("energy") => Objective::Energy,
                    Some("traffic") => Objective::Traffic,
                    other => return Err(format!("unknown objective {other:?}")),
                };
                i += 2;
            }
            "--budget" => {
                explore_cfg.budget = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--budget needs a positive integer")?;
                i += 2;
            }
            "--top-k" => {
                explore_cfg.top_k = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--top-k needs a positive integer")?;
                i += 2;
            }
            "--margin" => {
                explore_cfg.margin = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&f: &f64| f >= 1.0)
                    .ok_or("--margin needs a number >= 1.0")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }

    // Apply the cache-byte bound to the shared context now (it governs
    // residency, not control flow), and anchor one cancellation token for
    // the whole invocation — batch requests and retries share a single
    // deadline and budget pool.
    if let Some(bytes) = limits.max_resident_cache_bytes {
        ctx.set_max_cache_bytes(bytes);
    }
    let token = limits.is_limited().then(|| CancelToken::new(&limits));

    let result = match command {
        "explore" => {
            explore_cfg.limits = limits.clone();
            run_explore(
                &ctx,
                &specs[0],
                &tensors,
                &extents,
                ops,
                threads,
                einsum,
                fast,
                explore_cfg,
            )
            .map(|()| ExitCode::SUCCESS)
        }
        "batch" => run_batch(
            &ctx, &requests, &specs, &tensors, &extents, ops, threads, &token,
        ),
        _ => {
            let mut sim = ctx
                .simulator(&specs[0])
                .map_err(|e| e.to_string())?
                .with_ops(ops)
                .with_threads(threads);
            if let Some(t) = &token {
                sim = sim.with_cancel(t.clone());
            }
            for (rank, n) in &extents {
                sim = sim.with_rank_extent(rank, *n);
            }
            let report = sim.run(&tensors).map_err(|e| e.to_string());
            match (command, report) {
                ("run", Ok(report)) => {
                    println!("{report}");
                    Ok(ExitCode::SUCCESS)
                }
                ("output", Ok(report)) => {
                    for (name, tensor) in &report.outputs {
                        println!("# --- {name} ---");
                        tio::write_tensor_data(std::io::stdout().lock(), tensor)
                            .map_err(|e| e.to_string())?;
                    }
                    Ok(ExitCode::SUCCESS)
                }
                (_, Err(e)) => Err(e),
                (other, _) => Err(format!("unknown command {other}")),
            }
        }
    };
    if cache_stats {
        print_cache_stats();
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn run_explore(
    ctx: &Arc<EvalContext>,
    spec: &TeaalSpec,
    tensors: &[Tensor],
    extents: &[(String, u64)],
    ops: OpTable,
    threads: usize,
    einsum: Option<String>,
    fast: bool,
    mut explore_cfg: teaal::sim::ExploreConfig,
) -> Result<(), String> {
    if !extents.is_empty() {
        return Err("explore does not support --extent (extents come from inputs)".into());
    }
    let target = match einsum {
        Some(name) => name,
        None => {
            let plans = teaal::core::ir::lower(spec).map_err(|e| e.to_string())?;
            plans
                .last()
                .map(|p| p.equation.name().to_string())
                .ok_or("spec has no einsums")?
        }
    };
    explore_cfg.threads = threads;
    let print_top = |cands: &[Candidate]| {
        for (idx, c) in cands.iter().take(8).enumerate() {
            println!(
                "  {}. [{}]  time {:.4e}s  energy {:.4e}J  dram {}B",
                idx + 1,
                c.loop_order.join(", "),
                c.seconds,
                c.energy_joules,
                c.dram_bytes,
            );
            if !c.component_seconds.is_empty() {
                let parts: Vec<String> = c
                    .component_seconds
                    .iter()
                    .map(|(component, secs)| format!("{component} {secs:.4e}s"))
                    .collect();
                println!("     components: {}", parts.join("  "));
            }
        }
    };
    if fast {
        let out = explore_fast_with_context(spec, &target, tensors, ops, &explore_cfg, Some(ctx))
            .map_err(|e| e.to_string())?;
        println!(
            "einsum {target}: {} candidates estimated, {} engine-verified",
            out.estimator_evals, out.engine_evals
        );
        print_top(&out.candidates);
        println!("best: [{}]", out.candidates[0].loop_order.join(", "));
    } else {
        let results = explore_loop_orders_with_context(
            spec,
            &target,
            tensors,
            ops,
            explore_cfg.objective,
            explore_cfg.budget,
            threads,
            Some(ctx),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "einsum {target}: {} candidates engine-evaluated",
            results.len()
        );
        print_top(&results);
        println!("best: [{}]", results[0].loop_order.join(", "));
    }
    Ok(())
}

/// Evaluates every batch request through the shared context — requests
/// fan out across `threads` workers, each simulating sequentially — and
/// prints the reports strictly in request order.
///
/// Failures are isolated per request: a request that errors (or panics —
/// the evaluation is wrapped in `catch_unwind`) renders an `error:` block
/// under its header while the rest of the batch keeps going, and the
/// process exits with code 2 once every request has run.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    ctx: &Arc<EvalContext>,
    requests: &[BatchRequest],
    specs: &[Arc<TeaalSpec>],
    tensors: &[Tensor],
    extents: &[(String, u64)],
    ops: OpTable,
    threads: usize,
    token: &Option<CancelToken>,
) -> Result<ExitCode, String> {
    // The dataset is shared read-only by every request: materialize the
    // `TensorData` views once here instead of cloning every tensor per
    // request inside the worker loop.
    let data: Vec<TensorData> = tensors
        .iter()
        .map(|t| TensorData::Owned(t.clone()))
        .collect();
    // Evaluation (including panic isolation and failure classification)
    // lives in `teaal::request`, shared verbatim with `teaal serve` — so
    // batch's error blocks and serve's wire error codes cannot drift.
    let run_request = |i: usize| -> Result<String, EvalFailure> {
        let req = &requests[i];
        let overrides = RequestOverrides {
            loop_order: req.loop_order.clone(),
            ops: req.ops,
        };
        let refs: Vec<&TensorData> = data.iter().collect();
        evaluate_request(
            ctx,
            &specs[i],
            &overrides,
            ops,
            extents,
            &refs,
            token.as_ref(),
        )
        .map_err(|f| f.contextualize(&format!("request {i} ({})", req.spec_path)))
    };

    let n = requests.len();
    let workers = threads.max(1).min(n);
    let rendered: Vec<Result<String, EvalFailure>> = if workers <= 1 {
        (0..n).map(run_request).collect()
    } else {
        let slots: Vec<OnceLock<Result<String, EvalFailure>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let _ = slots[i].set(run_request(i));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every request evaluated"))
            .collect()
    };

    let mut failures = 0usize;
    for (i, out) in rendered.into_iter().enumerate() {
        let label = requests[i]
            .label
            .as_deref()
            .unwrap_or(&requests[i].spec_path);
        println!("# --- request {i} ({label}) ---");
        match out {
            Ok(report) => println!("{report}"),
            Err(failure) => {
                failures += 1;
                println!("{}", error_block(&failure));
                eprintln!("error: {failure}");
            }
        }
    }
    if failures > 0 {
        eprintln!("batch: {failures} of {} request(s) failed", requests.len());
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}
