//! Request evaluation shared by `teaal batch` and `teaal serve`.
//!
//! Both front doors accept the same logical request — a spec plus
//! optional loop-order / operator-table overrides, evaluated against a
//! shared dataset through one [`EvalContext`] — and both must turn
//! every failure mode (malformed spec, runtime error, worker panic,
//! tripped budget) into the *same* structured outcome. This module is
//! that single seam: [`evaluate_request`] runs the request under
//! [`catching`] panic isolation, [`ErrorCode`] names each failure class
//! once, and [`error_block`] renders the `# error:` block `teaal
//! batch` prints — so batch's exit-code-2 semantics and serve's wire
//! error codes cannot drift apart.

use std::fmt;
use std::sync::Arc;

use teaal_core::TeaalSpec;
use teaal_fibertree::TensorData;
use teaal_sim::{CancelToken, EvalContext, OpTable, SimError};

/// The failure classes a request can end in, shared verbatim between
/// `teaal batch` diagnostics and the `teaal serve` wire protocol's
/// `code` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request's framing or encoding was malformed (wire only).
    Protocol,
    /// The request was well-framed but semantically invalid — an
    /// unparsable spec, an unknown operator table, a bad field value.
    BadRequest,
    /// The admission queue was full; nothing was attempted. Safe to
    /// retry (evaluation is content-addressed and idempotent).
    Overloaded,
    /// The daemon is draining toward shutdown. Safe to retry elsewhere.
    ShuttingDown,
    /// The per-request wall-clock deadline passed.
    Deadline,
    /// An engine-step or output-entry budget was exhausted.
    Budget,
    /// The evaluation was cancelled (for the daemon: a drain deadline
    /// cancelling stragglers).
    Cancelled,
    /// The evaluation panicked; the panic was isolated.
    Panic,
    /// Any other structured evaluation failure (missing tensor,
    /// transform error, non-finite modeled time, …).
    Eval,
    /// A daemon-side invariant broke (e.g. a worker vanished). Should
    /// not happen; reported rather than hidden.
    Internal,
}

impl ErrorCode {
    /// The code's wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Budget => "budget",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Panic => "panic",
            ErrorCode::Eval => "eval",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire token back to a code (clients classify responses
    /// with this).
    pub fn parse(token: &str) -> Option<ErrorCode> {
        const ALL: [ErrorCode; 10] = [
            ErrorCode::Protocol,
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Deadline,
            ErrorCode::Budget,
            ErrorCode::Cancelled,
            ErrorCode::Panic,
            ErrorCode::Eval,
            ErrorCode::Internal,
        ];
        ALL.into_iter().find(|c| c.as_str() == token)
    }

    /// Whether a client may safely retry a request that failed with
    /// this code: only rejections where the server attempted nothing.
    /// (Evaluation itself is idempotent, so retrying *transport*
    /// failures is always safe; this governs structured rejections.)
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A classified request failure: the shared currency between the batch
/// renderer and the serve wire encoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalFailure {
    /// Which failure class this is.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl EvalFailure {
    /// Builds a failure from its class and detail.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> EvalFailure {
        EvalFailure {
            code,
            message: message.into(),
        }
    }

    /// Prefixes the detail with request context (index, label) without
    /// touching the class.
    #[must_use]
    pub fn contextualize(mut self, prefix: &str) -> EvalFailure {
        self.message = format!("{prefix}: {}", self.message);
        self
    }
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [code={}]", self.message, self.code)
    }
}

impl From<SimError> for EvalFailure {
    fn from(e: SimError) -> Self {
        EvalFailure::new(code_for_sim_error(&e), e.to_string())
    }
}

/// Maps a simulator error onto its wire/batch failure class — the one
/// place this classification lives.
pub fn code_for_sim_error(e: &SimError) -> ErrorCode {
    match e {
        SimError::Spec(_) => ErrorCode::BadRequest,
        SimError::DeadlineExceeded { .. } => ErrorCode::Deadline,
        SimError::BudgetExceeded { .. } => ErrorCode::Budget,
        SimError::Cancelled { .. } => ErrorCode::Cancelled,
        SimError::WorkerPanic { .. } => ErrorCode::Panic,
        _ => ErrorCode::Eval,
    }
}

/// Resolves an operator-table name — the single name table shared by
/// the `teaal batch` requests file, the `teaal run --ops` flag, the
/// serve CLI, and wire `ops` fields.
///
/// # Errors
///
/// A message naming the unknown table.
pub fn parse_ops(name: &str) -> Result<OpTable, String> {
    match name {
        "sssp" | "bfs" => Ok(OpTable::sssp()),
        "arithmetic" => Ok(OpTable::arithmetic()),
        other => Err(format!("unknown op table {other:?}")),
    }
}

/// Renders the `# error:` block both `teaal batch` output and docs
/// promise for a failed request. Exactly one line; the code rides in a
/// bracketed suffix so scripts can grep either the prefix or the class.
pub fn error_block(failure: &EvalFailure) -> String {
    format!("# error: {failure}")
}

/// Runs `f` under `catch_unwind`, converting a panic into an
/// [`ErrorCode::Panic`] failure — the one panic-isolation wrapper both
/// batch workers and serve workers use.
pub fn catching<T>(f: impl FnOnce() -> Result<T, EvalFailure>) -> Result<T, EvalFailure> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(EvalFailure::new(
            ErrorCode::Panic,
            format!("worker panicked: {msg}"),
        ))
    })
}

/// The per-request knobs a batch entry or a wire request may override
/// on top of the server/CLI defaults.
#[derive(Clone, Debug, Default)]
pub struct RequestOverrides {
    /// Per-einsum loop-order overrides applied to a clone of the spec.
    pub loop_order: Vec<(String, Vec<String>)>,
    /// Operator table override.
    pub ops: Option<OpTable>,
}

/// Evaluates one request against the shared dataset and renders the
/// report exactly as `teaal run` prints it.
///
/// Runs sequentially (`threads = 1`): concurrency comes from the
/// caller's worker fan-out, not from sharding inside one request. The
/// evaluation is wrapped in [`catching`], so a panicking request comes
/// back as a structured [`ErrorCode::Panic`] failure.
///
/// # Errors
///
/// An [`EvalFailure`] classifying the problem; see [`ErrorCode`].
pub fn evaluate_request(
    ctx: &Arc<EvalContext>,
    spec: &TeaalSpec,
    overrides: &RequestOverrides,
    default_ops: OpTable,
    extents: &[(String, u64)],
    data: &[&TensorData],
    token: Option<&CancelToken>,
) -> Result<String, EvalFailure> {
    catching(|| {
        let sim = if overrides.loop_order.is_empty() {
            ctx.simulator(spec)
        } else {
            let mut s = spec.clone();
            for (einsum, order) in &overrides.loop_order {
                s.mapping.loop_order.insert(einsum.clone(), order.clone());
            }
            ctx.simulator(&s)
        };
        let mut sim = sim?
            .with_ops(overrides.ops.unwrap_or(default_ops))
            .with_threads(1);
        if let Some(t) = token {
            sim = sim.with_cancel(t.clone());
        }
        for (rank, n) in extents {
            sim = sim.with_rank_extent(rank, *n);
        }
        let report = sim.run_data_cached(data)?;
        Ok(format!("{report}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_fibertree::Tensor;
    use teaal_sim::limits::Progress;

    const SPMSPM: &str = concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    );

    fn dataset() -> Vec<TensorData> {
        let a = Tensor::from_entries(
            "A",
            &["K", "M"],
            &[4, 4],
            vec![(vec![0, 1], 2.0), (vec![3, 2], 5.0)],
        )
        .unwrap();
        let b = Tensor::from_entries(
            "B",
            &["K", "N"],
            &[4, 4],
            vec![(vec![0, 0], 3.0), (vec![3, 3], 7.0)],
        )
        .unwrap();
        vec![TensorData::Owned(a), TensorData::Owned(b)]
    }

    #[test]
    fn codes_roundtrip_through_their_tokens() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::BadRequest,
            ErrorCode::Overloaded,
            ErrorCode::ShuttingDown,
            ErrorCode::Deadline,
            ErrorCode::Budget,
            ErrorCode::Cancelled,
            ErrorCode::Panic,
            ErrorCode::Eval,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
        assert!(ErrorCode::Overloaded.retryable());
        assert!(ErrorCode::ShuttingDown.retryable());
        assert!(!ErrorCode::Panic.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
    }

    #[test]
    fn sim_errors_classify_once_for_both_front_doors() {
        let progress = Progress::default();
        assert_eq!(
            code_for_sim_error(&SimError::DeadlineExceeded { progress }),
            ErrorCode::Deadline
        );
        assert_eq!(
            code_for_sim_error(&SimError::Cancelled { progress }),
            ErrorCode::Cancelled
        );
        assert_eq!(
            code_for_sim_error(&SimError::WorkerPanic {
                site: "shard".into(),
                message: "x".into()
            }),
            ErrorCode::Panic
        );
        assert_eq!(
            code_for_sim_error(&SimError::MissingTensor { tensor: "A".into() }),
            ErrorCode::Eval
        );
    }

    #[test]
    fn error_block_keeps_the_grepable_prefix_and_code() {
        let block = error_block(&EvalFailure::new(ErrorCode::Panic, "boom"));
        assert!(block.starts_with("# error: "), "{block}");
        assert!(block.contains("[code=panic]"), "{block}");
    }

    #[test]
    fn catching_converts_panics_to_structured_failures() {
        let out = catching::<()>(|| panic!("kaboom"));
        let failure = out.unwrap_err();
        assert_eq!(failure.code, ErrorCode::Panic);
        assert!(failure.message.contains("kaboom"));
        assert_eq!(catching(|| Ok(7)).unwrap(), 7);
    }

    #[test]
    fn evaluate_request_runs_and_reports_overrides() {
        let ctx = EvalContext::new();
        let spec = ctx.parse(SPMSPM).unwrap();
        let data = dataset();
        let refs: Vec<&TensorData> = data.iter().collect();
        let rendered = evaluate_request(
            &ctx,
            &spec,
            &RequestOverrides::default(),
            OpTable::arithmetic(),
            &[],
            &refs,
            None,
        )
        .unwrap();
        assert!(
            rendered.contains('Z'),
            "report names the output: {rendered}"
        );
        // A bogus loop-order override fails as a bad request, not a
        // generic error (the spec no longer lowers).
        let failure = evaluate_request(
            &ctx,
            &spec,
            &RequestOverrides {
                loop_order: vec![("Z".into(), vec!["Q".into(), "W".into()])],
                ops: None,
            },
            OpTable::arithmetic(),
            &[],
            &refs,
            None,
        )
        .unwrap_err();
        assert_eq!(failure.code, ErrorCode::BadRequest);
    }
}
