//! # teaal
//!
//! A Rust reproduction of **TeAAL** (MICRO 2023): a declarative language
//! and simulator generator for modeling sparse tensor algebra
//! accelerators.
//!
//! TeAAL's key idea is that modern sparse accelerators — OuterSPACE,
//! ExTensor, Gamma, SIGMA, and beyond — can be described precisely and
//! concisely as *cascades of mapped Einsums* plus content-preserving
//! transformations (partitioning, flattening, swizzling) on the tensors
//! in those Einsums. From an ~30-line declarative specification, this
//! workspace generates an executable model that runs on real sparse
//! tensors and reports memory traffic, per-component action counts,
//! bottleneck-analysis execution time, and energy.
//!
//! This crate is the facade: it re-exports the workspace's layers.
//!
//! | Layer | Crate | What it holds |
//! |---|---|---|
//! | [`fibertree`] | `teaal-fibertree` | The fibertree tensor abstraction and its transforms |
//! | [`core`] | `teaal-core` | Einsums, the five-part spec language, the loop-nest IR |
//! | [`sim`] | `teaal-sim` | The instrumented engine and performance/energy models |
//! | [`accel`] | `teaal-accel` | Ready-made specs for the paper's six accelerators |
//! | [`workloads`] | `teaal-workloads` | Matrix/graph generators, datasets, baselines |
//! | [`graph`] | `teaal-graph` | Vertex-centric BFS/SSSP drivers (paper §8) |
//!
//! ## Quickstart
//!
//! ```
//! use teaal::prelude::*;
//!
//! // 1. Describe an accelerator: an Einsum plus a mapping.
//! let spec = TeaalSpec::parse(concat!(
//!     "einsum:\n",
//!     "  declaration:\n",
//!     "    A: [K, M]\n",
//!     "    B: [K, N]\n",
//!     "    Z: [M, N]\n",
//!     "  expressions:\n",
//!     "    - Z[m, n] = A[k, m] * B[k, n]\n",
//! ))?;
//!
//! // 2. Generate its simulator.
//! let sim = Simulator::new(spec)?;
//!
//! // 3. Run it on real sparse tensors.
//! let a = Tensor::from_entries("A", &["K", "M"], &[4, 4],
//!     vec![(vec![0, 1], 2.0), (vec![3, 2], 5.0)]).unwrap();
//! let b = Tensor::from_entries("B", &["K", "N"], &[4, 4],
//!     vec![(vec![0, 0], 3.0), (vec![3, 3], 7.0)]).unwrap();
//! let report = sim.run(&[a, b])?;
//!
//! assert_eq!(report.final_output().unwrap().get(&[1, 0]), Some(6.0));
//! assert!(report.dram_bytes() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod request;
pub mod serve;
pub mod wire;

pub use teaal_accel as accel;
pub use teaal_core as core;
pub use teaal_fibertree as fibertree;
pub use teaal_graph as graph;
pub use teaal_sim as sim;
pub use teaal_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use teaal_accel::{GraphDesign, SpmspmAccel};
    pub use teaal_core::{SpecError, TeaalSpec};
    pub use teaal_fibertree::{
        CompressedBuilder, CompressedTensor, Coord, Fiber, FiberView, Payload, PayloadView,
        Semiring, Shape, Tensor, TensorBuilder, TensorData,
    };
    pub use teaal_sim::{OpTable, SimError, SimReport, Simulator};
}
