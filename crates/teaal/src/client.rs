//! The `teaal client` subcommand: a retrying client for the
//! [`serve`](crate::serve) daemon.
//!
//! Retrying is safe by construction: evaluation is content-addressed
//! and idempotent, so replaying a request can at worst warm the
//! server's caches. The client therefore retries both transport
//! failures (connect refused, timeout, truncated response) and the
//! structured rejections the server marks retryable (`overloaded`,
//! `shutting-down`) with exponential backoff and jitter, and treats
//! every other structured error as a final answer.
//!
//! Exit codes mirror `teaal batch`: `0` when every request succeeded,
//! `2` when the daemon answered but at least one answer was a
//! structured error, `1` when retries were exhausted without an answer.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, SystemTime};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::ErrorCode;
use crate::wire::{self, Frame, FrameKind, WireError};

/// Cap on one backoff sleep, whatever the exponent says.
const MAX_BACKOFF: Duration = Duration::from_millis(2000);

/// Where and how to reach the daemon, plus the retry policy.
struct ClientConfig {
    addr: String,
    unix_path: Option<PathBuf>,
    /// Retries *after* the first attempt.
    retries: u32,
    backoff: Duration,
    timeout: Duration,
    repeat: u32,
    request_id: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:9557".to_string(),
            unix_path: None,
            retries: 4,
            backoff: Duration::from_millis(50),
            timeout: Duration::from_millis(10_000),
            repeat: 1,
            request_id: None,
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn connect(cfg: &ClientConfig) -> std::io::Result<Stream> {
    let stream = if let Some(path) = &cfg.unix_path {
        #[cfg(unix)]
        {
            let s = UnixStream::connect(path)?;
            s.set_read_timeout(Some(cfg.timeout))?;
            s.set_write_timeout(Some(cfg.timeout))?;
            Stream::Unix(s)
        }
        #[cfg(not(unix))]
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix sockets are not supported on this platform",
        ));
    } else {
        let s = TcpStream::connect(&cfg.addr)?;
        s.set_read_timeout(Some(cfg.timeout))?;
        s.set_write_timeout(Some(cfg.timeout))?;
        Stream::Tcp(s)
    };
    Ok(stream)
}

/// One request/response exchange over a fresh connection.
fn exchange(cfg: &ClientConfig, request: &Frame) -> Result<Frame, String> {
    let stream = connect(cfg).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream;
    writer
        .write_all(&request.encode())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(writer);
    match wire::read_frame(&mut reader, wire::DEFAULT_MAX_FRAME_BYTES) {
        Ok(Some(frame)) => Ok(frame),
        Ok(None) => Err("server closed the connection before replying".to_string()),
        Err(WireError::Io(e)) => Err(format!("receive: {e}")),
        Err(e) => Err(e.to_string()),
    }
}

/// The terminal outcome of one request after retries.
enum Outcome {
    /// An `ok` frame.
    Ok(Frame),
    /// A non-retryable (or retry-exhausted) structured error.
    ServerError { code: String, message: String },
    /// Retries exhausted without any answer.
    Transport(String),
}

/// Sends `request` until it gets a terminal answer, retrying transport
/// failures and retryable rejections with exponential backoff and
/// jitter.
fn send_with_retries(cfg: &ClientConfig, request: &Frame, rng: &mut StdRng) -> Outcome {
    let mut last_transport = String::new();
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            // Full backoff: base × 2^(attempt-1), jittered ±50% so a
            // thundering herd of shed clients decorrelates, capped.
            let base = cfg
                .backoff
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(MAX_BACKOFF);
            let jitter: f64 = rng.random_range(0.5..1.5);
            std::thread::sleep(base.mul_f64(jitter));
        }
        let transport_error = match exchange(cfg, request) {
            Ok(frame) => match frame.kind {
                FrameKind::Ok => return Outcome::Ok(frame),
                FrameKind::Err => {
                    let code = frame.get("code").unwrap_or("internal").to_string();
                    let retryable = ErrorCode::parse(&code).is_some_and(ErrorCode::retryable);
                    if retryable && attempt < cfg.retries {
                        eprintln!("teaal client: attempt {}: {code}; backing off", attempt + 1);
                        continue;
                    }
                    return Outcome::ServerError {
                        code,
                        message: frame.get("message").unwrap_or("").to_string(),
                    };
                }
                FrameKind::Req => "server sent a req frame".to_string(),
            },
            Err(e) => e,
        };
        eprintln!("teaal client: attempt {}: {transport_error}", attempt + 1);
        last_transport = transport_error;
    }
    Outcome::Transport(last_transport)
}

/// Parses `teaal client` arguments (everything after the subcommand)
/// and runs the request(s).
///
/// Usage: `teaal client <ping|health|eval> [spec.yaml] [options…]`.
///
/// # Errors
///
/// A usage message for unknown or malformed options.
pub fn run_client(args: &[String]) -> Result<ExitCode, String> {
    let op = args
        .get(2)
        .ok_or("client needs an operation: ping, health, or eval")?
        .as_str();
    if !matches!(op, "ping" | "health" | "eval") {
        return Err(format!("unknown client operation {op:?}"));
    }
    let mut cfg = ClientConfig::default();
    let mut spec_path: Option<String> = None;
    let mut eval_fields: Vec<(String, String)> = Vec::new();
    let mut i = 3usize;
    while i < args.len() {
        let need = |what: &str| format!("{} needs {what}", args[i]);
        let take = |i: usize| args.get(i + 1).cloned();
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = take(i).ok_or_else(|| need("HOST:PORT"))?;
                i += 2;
            }
            "--unix" => {
                cfg.unix_path = Some(PathBuf::from(take(i).ok_or_else(|| need("a socket path"))?));
                i += 2;
            }
            "--retries" => {
                cfg.retries = take(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| need("an integer"))?;
                i += 2;
            }
            "--backoff-ms" => {
                let ms: u64 = take(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| need("a positive integer (milliseconds)"))?;
                cfg.backoff = Duration::from_millis(ms);
                i += 2;
            }
            "--timeout-ms" => {
                let ms: u64 = take(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| need("a positive integer (milliseconds)"))?;
                cfg.timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--repeat" => {
                cfg.repeat = take(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u32| n >= 1)
                    .ok_or_else(|| need("a positive integer"))?;
                i += 2;
            }
            "--id" => {
                cfg.request_id = Some(take(i).ok_or_else(|| need("an identifier"))?);
                i += 2;
            }
            "--ops" => {
                let name = take(i).ok_or_else(|| need("a table name"))?;
                crate::request::parse_ops(&name)?; // validate client-side
                eval_fields.push(("ops".to_string(), name));
                i += 2;
            }
            "--deadline-ms" | "--max-engine-steps" | "--max-output-entries" => {
                let key = args[i].trim_start_matches("--").replace('-', "_");
                let v = take(i)
                    .filter(|v| v.parse::<u64>().is_ok())
                    .ok_or_else(|| need("an integer"))?;
                eval_fields.push((key, v));
                i += 2;
            }
            "--extent" => {
                let kv = take(i).ok_or_else(|| need("RANK=N"))?;
                if !kv.contains('=') {
                    return Err("--extent needs RANK=N".to_string());
                }
                eval_fields.push(("extent".to_string(), kv));
                i += 2;
            }
            "--loop-order" => {
                let kv = take(i).ok_or_else(|| need("EINSUM=R1,R2,…"))?;
                if !kv.contains('=') {
                    return Err("--loop-order needs EINSUM=R1,R2,…".to_string());
                }
                eval_fields.push(("loop_order".to_string(), kv));
                i += 2;
            }
            other if !other.starts_with('-') && op == "eval" && spec_path.is_none() => {
                spec_path = Some(other.to_string());
                i += 1;
            }
            other => return Err(format!("unknown client option {other}")),
        }
    }

    let mut request = Frame::new(FrameKind::Req).field("op", op);
    if op == "eval" {
        let path = spec_path.ok_or("client eval needs a spec path")?;
        let source = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        request = request.field("spec", source);
        for (key, value) in &eval_fields {
            request = request.field(key, value.clone());
        }
    } else if !eval_fields.is_empty() {
        return Err(format!("client {op} takes no eval options"));
    }

    // Jitter only decorrelates concurrent clients; wall-clock nanos are
    // plenty of entropy for that.
    let seed = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let mut rng = StdRng::seed_from_u64(seed ^ std::process::id() as u64);

    let (mut ok, mut server_err, mut transport_err) = (0u32, 0u32, 0u32);
    for round in 0..cfg.repeat {
        let mut frame = request.clone();
        if let Some(id) = &cfg.request_id {
            frame = frame.field("id", id.clone());
        } else if cfg.repeat > 1 {
            frame = frame.field("id", format!("r{round}"));
        }
        match send_with_retries(&cfg, &frame, &mut rng) {
            Outcome::Ok(frame) => {
                ok += 1;
                match op {
                    "eval" => {
                        if let Some(report) = frame.get("report") {
                            println!("{report}");
                        }
                    }
                    "ping" => println!("pong"),
                    _ => {
                        for (key, value) in &frame.fields {
                            if key != "id" {
                                println!("{key} {value}");
                            }
                        }
                    }
                }
            }
            Outcome::ServerError { code, message } => {
                server_err += 1;
                eprintln!("error[{code}]: {message}");
            }
            Outcome::Transport(e) => {
                transport_err += 1;
                eprintln!("error[transport]: retries exhausted: {e}");
            }
        }
    }
    if cfg.repeat > 1 {
        eprintln!(
            "teaal client: {ok} ok, {server_err} server errors, {transport_err} transport failures"
        );
    }
    // Mirror `teaal batch`: transport exhaustion is 1, answered-but-
    // failed is 2, all-ok is 0.
    Ok(if transport_err > 0 {
        ExitCode::FAILURE
    } else if server_err > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}
