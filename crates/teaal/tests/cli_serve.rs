//! The `teaal serve` daemon exercised end-to-end against the real
//! binary: request/response over TCP, admission-control shedding under
//! overload, panic isolation, injected connection drops, and graceful
//! SIGTERM drain.
//!
//! Every scenario is bounded: daemons listen on ephemeral ports, all
//! waits have deadlines, and a `DaemonGuard` kills the child on drop so
//! a failing assertion cannot leak a process.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const SPMSPM: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
);

/// Writes `content` to a unique temp file and returns its path.
fn temp_spec(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("teaal-cli-serve-{}-{tag}.yaml", std::process::id()));
    std::fs::write(&path, SPMSPM).expect("write temp spec");
    path
}

/// A running daemon bound to an ephemeral port; killed on drop.
struct DaemonGuard {
    child: Child,
    port: u16,
}

impl DaemonGuard {
    /// Starts `teaal serve` with the standard test dataset plus
    /// `extra_args`, under the given `TEAAL_FAILPOINTS` value, and
    /// waits for the listening line.
    fn start(extra_args: &[&str], failpoints: &str) -> DaemonGuard {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_teaal"));
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--random",
            "A=K,M:32x32:64",
            "--random",
            "B=K,N:32x32:64",
        ])
        .args(extra_args)
        .env("TEAAL_FAILPOINTS", failpoints)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn teaal serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("daemon printed its listening line")
            .expect("read listening line");
        let port: u16 = line
            .rsplit(':')
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparsable listening line: {line}"));
        DaemonGuard { child, port }
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// Sends SIGTERM to the daemon.
    fn sigterm(&self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
    }

    /// Waits (bounded) for the daemon to exit and returns its status.
    fn wait_exit(mut self, timeout: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `teaal client` against `addr` and returns its output.
fn client(addr: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_teaal"))
        .args(["client"])
        .args(args)
        .args(["--addr", addr, "--timeout-ms", "10000"])
        .output()
        .expect("spawn teaal client")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Parses `key value` lines from `teaal client health` output.
fn health_field(health: &str, key: &str) -> u64 {
    health
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("health output missing {key}: {health}"))
        .trim()
        .parse()
        .expect("numeric health field")
}

#[test]
fn eval_roundtrip_with_health_telemetry() {
    let daemon = DaemonGuard::start(&[], "");
    let spec = temp_spec("roundtrip");

    let ping = client(&daemon.addr(), &["ping"]);
    assert!(ping.status.success(), "ping failed: {}", stderr_of(&ping));

    let eval = client(&daemon.addr(), &["eval", spec.to_str().unwrap()]);
    let _ = std::fs::remove_file(&spec);
    assert!(eval.status.success(), "eval failed: {}", stderr_of(&eval));
    let report = stdout_of(&eval);
    assert!(
        report.contains("simulation report") && report.contains("einsum Z"),
        "wire eval must return the same report `teaal run` prints: {report}"
    );

    let health = client(&daemon.addr(), &["health"]);
    assert!(health.status.success());
    let h = stdout_of(&health);
    assert_eq!(health_field(&h, "served_ok"), 1);
    assert_eq!(
        health_field(&h, "in_flight"),
        0,
        "no phantom in-flight: {h}"
    );
    assert_eq!(health_field(&h, "draining"), 0);
    assert_eq!(health_field(&h, "cache.report.misses"), 1, "{h}");
}

#[test]
fn overload_sheds_with_structured_response_and_daemon_survives() {
    // One worker, one queue slot, and every request pinned at 500 ms:
    // of six concurrent single-attempt clients at most two are admitted
    // — the rest must shed *immediately* with `overloaded`.
    let daemon = DaemonGuard::start(
        &["--workers", "1", "--queue", "1"],
        "serve.request:sleep(500)",
    );
    let spec = temp_spec("overload");
    let mut children: Vec<Child> = (0..6)
        .map(|_| {
            Command::new(env!("CARGO_BIN_EXE_teaal"))
                .args(["client", "eval", spec.to_str().unwrap()])
                .args(["--addr", &daemon.addr(), "--retries", "0"])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn client")
        })
        .collect();
    let (mut ok, mut overloaded) = (0, 0);
    for child in children.drain(..) {
        let out = child.wait_with_output().expect("client output");
        match out.status.code() {
            Some(0) => ok += 1,
            Some(2) => {
                assert!(
                    stderr_of(&out).contains("error[overloaded]"),
                    "structured overload rejection expected: {}",
                    stderr_of(&out)
                );
                overloaded += 1;
            }
            other => panic!("unexpected client exit {other:?}: {}", stderr_of(&out)),
        }
    }
    let _ = std::fs::remove_file(&spec);
    assert!(ok >= 1, "at least the admitted request succeeds");
    assert!(overloaded >= 1, "the excess load must be shed");

    // Shedding never wedges the daemon: it still answers, and the
    // gauges return to idle.
    let health = client(&daemon.addr(), &["health"]);
    assert!(health.status.success());
    let h = stdout_of(&health);
    assert!(health_field(&h, "shed_overloaded") >= 1, "{h}");
    assert_eq!(health_field(&h, "in_flight"), 0, "{h}");
    assert_eq!(health_field(&h, "queued"), 0, "{h}");
}

#[test]
fn panicking_request_becomes_structured_error_and_daemon_survives() {
    let daemon = DaemonGuard::start(&[], "serve.request:panic@1");
    let spec = temp_spec("panic");

    let first = client(&daemon.addr(), &["eval", spec.to_str().unwrap()]);
    assert_eq!(
        first.status.code(),
        Some(2),
        "a panicking evaluation is an answered error, not a dead daemon"
    );
    let err = stderr_of(&first);
    assert!(
        err.contains("error[panic]") && err.contains("worker panicked"),
        "panic must surface with its class and message: {err}"
    );

    let second = client(&daemon.addr(), &["eval", spec.to_str().unwrap()]);
    let _ = std::fs::remove_file(&spec);
    assert!(
        second.status.success(),
        "the worker pool survives a panic: {}",
        stderr_of(&second)
    );
    assert!(stdout_of(&second).contains("simulation report"));
}

#[test]
fn dropped_connection_is_recovered_by_client_retry() {
    // First response is truncated mid-frame and the socket severed;
    // the client's retry (evaluation is idempotent) must succeed.
    let daemon = DaemonGuard::start(&[], "serve.request:drop@1");
    let spec = temp_spec("drop");
    let out = client(
        &daemon.addr(),
        &[
            "eval",
            spec.to_str().unwrap(),
            "--retries",
            "3",
            "--backoff-ms",
            "20",
        ],
    );
    let _ = std::fs::remove_file(&spec);
    assert!(
        out.status.success(),
        "retry must recover an injected connection drop: {}",
        stderr_of(&out)
    );
    assert!(stdout_of(&out).contains("simulation report"));
}

#[test]
fn sigterm_drains_in_flight_work_then_exits_cleanly() {
    // Pin every request at 400 ms so one is reliably in flight when the
    // signal lands mid-evaluation.
    let daemon = DaemonGuard::start(&["--drain-ms", "5000"], "serve.request:sleep(400)");
    let spec = temp_spec("drain");
    let addr = daemon.addr();
    let spec_path = spec.to_str().unwrap().to_string();
    let in_flight = std::thread::spawn(move || {
        Command::new(env!("CARGO_BIN_EXE_teaal"))
            .args(["client", "eval", &spec_path])
            .args(["--addr", &addr, "--retries", "0"])
            .output()
            .expect("spawn client")
    });
    std::thread::sleep(Duration::from_millis(150));
    daemon.sigterm();

    let out = in_flight.join().expect("client thread");
    let _ = std::fs::remove_file(&spec);
    assert!(
        out.status.success(),
        "in-flight work must complete during drain: {}",
        stderr_of(&out)
    );
    assert!(stdout_of(&out).contains("simulation report"));
    let status = daemon.wait_exit(Duration::from_secs(10));
    assert!(status.success(), "drained daemon exits 0, got {status:?}");
}

#[test]
fn garbage_bytes_get_a_protocol_error_and_daemon_survives() {
    let daemon = DaemonGuard::start(&[], "");

    let mut stream = TcpStream::connect(daemon.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    assert!(
        reply.contains("teaal/1 err") && reply.contains("protocol"),
        "garbage must get a structured protocol error: {reply:?}"
    );
    drop(stream);

    // A recoverable body-level error keeps the same connection usable.
    let mut stream = TcpStream::connect(daemon.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"teaal/1 req 8\nKEY bad\n\n")
        .expect("write bad body");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error header");
    assert!(line.starts_with("teaal/1 err"), "got {line:?}");
    let mut body = vec![
        0u8;
        line.trim()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap()
            + 1
    ];
    reader.read_exact(&mut body).expect("read error body");
    // Same connection, now a valid frame: the stream never
    // desynchronized.
    stream
        .write_all(b"teaal/1 req 8\nop ping\n\n")
        .expect("write ping");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong header");
    assert!(line.starts_with("teaal/1 ok"), "got {line:?}");

    let ping = client(&daemon.addr(), &["ping"]);
    assert!(ping.status.success(), "daemon survives garbage");
}
