//! CLI hardening: structured errors, batch partial-failure semantics,
//! and resource-limit flags, exercised against the real binary.
//!
//! Every scenario here must end in a *clean* exit with a structured
//! message — no panic, no abort — including inputs that used to kill the
//! process (a zero-dimension `--random` previously panicked sampling an
//! empty coordinate range).

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

const SPMSPM: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
);

/// Writes `content` to a unique temp file and returns its path.
fn temp_file(tag: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "teaal-cli-robustness-{}-{tag}.yaml",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

fn teaal(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_teaal"))
        .args(args)
        .output()
        .expect("spawn teaal binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn zero_dimension_random_is_a_clean_error() {
    let spec = temp_file("zero-random", SPMSPM);
    let out = teaal(&["run", spec.to_str().unwrap(), "--random", "A=0x4:5"]);
    let _ = std::fs::remove_file(&spec);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "must exit, not abort");
    assert!(
        stderr_of(&out).contains("at least 1"),
        "stderr must explain the bad dimension: {}",
        stderr_of(&out)
    );
}

#[test]
fn batch_reports_every_malformed_request_up_front() {
    let spec = temp_file("batch-spec", SPMSPM);
    let requests = temp_file(
        "batch-malformed",
        &format!(
            concat!(
                "- spec: {}\n",
                "  ops: not-a-table\n",
                "- label: missing-spec-field\n",
                "- spec: {}\n",
                "  bogus-field: 1\n",
            ),
            spec.display(),
            spec.display()
        ),
    );
    let out = teaal(&["batch", requests.to_str().unwrap()]);
    let _ = std::fs::remove_file(&spec);
    let _ = std::fs::remove_file(&requests);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr_of(&out);
    // All three problems surface in one pass, each locatable.
    assert!(err.contains("not-a-table"), "missing ops error: {err}");
    assert!(
        err.contains("request 1 (missing-spec-field)"),
        "missing spec-field error with index and label: {err}"
    );
    assert!(err.contains("bogus-field"), "missing field error: {err}");
}

#[test]
fn batch_continues_past_a_failing_request_and_exits_partial_failure() {
    let spec = temp_file("batch-good-spec", SPMSPM);
    let requests = temp_file(
        "batch-partial",
        &format!(
            concat!(
                "- spec: {}\n",
                "  label: good\n",
                "- spec: {}\n",
                "  label: broken\n",
                "  loop-order:\n",
                "    Z: [Q, W]\n",
            ),
            spec.display(),
            spec.display()
        ),
    );
    let out = teaal(&[
        "batch",
        requests.to_str().unwrap(),
        "--random",
        "A=16x16:40",
        "--random",
        "B=16x12:30",
    ]);
    let _ = std::fs::remove_file(&spec);
    let _ = std::fs::remove_file(&requests);
    assert_eq!(
        out.status.code(),
        Some(2),
        "partial failure must exit 2; stderr: {}",
        stderr_of(&out)
    );
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("# --- request 0 (good) ---"),
        "the good request must still render: {stdout}"
    );
    assert!(
        stdout.contains("# --- request 1 (broken) ---") && stdout.contains("# error:"),
        "the failed request must render an error block: {stdout}"
    );
    assert!(
        stderr_of(&out).contains("1 of 2 request(s) failed"),
        "stderr must summarize the partial failure: {}",
        stderr_of(&out)
    );
}

#[test]
fn deadline_flag_returns_structured_error() {
    let spec = temp_file("deadline", SPMSPM);
    let out = teaal(&[
        "run",
        spec.to_str().unwrap(),
        "--random",
        "A=32x32:200",
        "--random",
        "B=32x24:150",
        "--deadline-ms",
        "0",
    ]);
    let _ = std::fs::remove_file(&spec);
    assert_eq!(out.status.code(), Some(1), "must exit cleanly, not hang");
    assert!(
        stderr_of(&out).contains("deadline exceeded"),
        "stderr must carry the structured deadline error: {}",
        stderr_of(&out)
    );
}

#[test]
fn tiny_cache_budget_evicts_while_batch_results_stay_identical() {
    let spec = temp_file("cache-budget", SPMSPM);
    let requests = temp_file(
        "cache-budget-requests",
        &format!(
            "- spec: {}\n  label: first\n- spec: {}\n  label: second\n",
            spec.display(),
            spec.display()
        ),
    );
    let args = [
        "batch",
        requests.to_str().unwrap(),
        "--random",
        "A=32x32:200",
        "--random",
        "B=32x24:150",
        "--cache-stats",
    ];
    let unbounded = teaal(&args);
    let bounded = teaal(
        &args
            .iter()
            .copied()
            .chain(["--max-cache-mb", "0"])
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_file(&spec);
    let _ = std::fs::remove_file(&requests);
    assert!(unbounded.status.success(), "{}", stderr_of(&unbounded));
    assert!(bounded.status.success(), "{}", stderr_of(&bounded));
    // Identical requests render identically whether or not every cache
    // artifact was evicted between them.
    assert_eq!(
        stdout_of(&unbounded)
            .replace("first", "X")
            .replace("second", "X"),
        stdout_of(&bounded)
            .replace("first", "X")
            .replace("second", "X"),
        "eviction must never change results"
    );
    let stats = stderr_of(&bounded);
    let evictions: u64 = stats
        .lines()
        .filter_map(|l| l.split("evictions=").nth(1))
        .filter_map(|v| v.trim().parse::<u64>().ok())
        .sum();
    assert!(
        evictions > 0,
        "a zero-byte cache budget must report evictions: {stats}"
    );
}
