//! Cross-crate integration: the Table 2 kernels beyond SpMSpM —
//! MTTKRP, factorized MTTKRP, and the Cooley-Tukey FFT step — all parse,
//! lower, and compute correct results through the full pipeline.

use teaal::prelude::*;

#[test]
fn mttkrp_direct_and_factorized_agree() {
    // Tensaurus MTTKRP: C[i, r] = T[i, j, k] · B[j, r] · A[k, r].
    let direct = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    T: [I, J, K]\n",
        "    B: [J, R]\n",
        "    A: [K, R]\n",
        "    C: [I, R]\n",
        "  expressions:\n",
        "    - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]\n",
    ))
    .unwrap();
    // Factorized MTTKRP: stage through S[i, j, r].
    let factorized = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    T: [I, J, K]\n",
        "    B: [J, R]\n",
        "    A: [K, R]\n",
        "    S: [I, J, R]\n",
        "    C: [I, R]\n",
        "  expressions:\n",
        "    - S[i, j, r] = T[i, j, k] * A[k, r]\n",
        "    - C[i, r] = S[i, j, r] * B[j, r]\n",
    ))
    .unwrap();

    let t = TensorBuilder::new("T", &["I", "J", "K"], &[4, 4, 4])
        .entry(&[0, 1, 2], 2.0)
        .entry(&[0, 3, 1], 3.0)
        .entry(&[2, 1, 1], 5.0)
        .entry(&[3, 0, 0], 7.0)
        .build()
        .unwrap();
    let b = TensorBuilder::new("B", &["J", "R"], &[4, 3])
        .entry(&[0, 0], 1.0)
        .entry(&[1, 0], 2.0)
        .entry(&[1, 2], 3.0)
        .entry(&[3, 1], 4.0)
        .build()
        .unwrap();
    let a = TensorBuilder::new("A", &["K", "R"], &[4, 3])
        .entry(&[0, 0], 1.0)
        .entry(&[1, 1], 2.0)
        .entry(&[1, 2], 3.0)
        .entry(&[2, 0], 4.0)
        .entry(&[2, 2], 5.0)
        .build()
        .unwrap();

    let run = |spec: TeaalSpec| {
        let sim = Simulator::new(spec).unwrap();
        let report = sim.run(&[t.clone(), b.clone(), a.clone()]).unwrap();
        report.final_output().unwrap().clone()
    };
    let c_direct = run(direct);
    let c_factorized = run(factorized);

    // Reference: C[i, r] = Σ_{j,k} T[i,j,k]·B[j,r]·A[k,r].
    let mut expect = Tensor::empty("C", &["I", "R"], &[4, 3]);
    for (pt, vt) in t.entries() {
        for (pb, vb) in b.entries() {
            if pb[0] != pt[1] {
                continue;
            }
            for (pa, va) in a.entries() {
                if pa[0] != pt[2] || pa[1] != pb[1] {
                    continue;
                }
                let cur = expect.get(&[pt[0], pb[1]]).unwrap_or(0.0);
                expect.set(&[pt[0], pb[1]], cur + vt * vb * va);
            }
        }
    }
    expect.prune(0.0);
    assert_eq!(c_direct.max_abs_diff(&expect.clone().into()), 0.0);
    assert_eq!(c_factorized.max_abs_diff(&expect.into()), 0.0);
}

#[test]
fn cooley_tukey_fft_step_cascade_runs() {
    // Table 2's five-Einsum FFT step: E and O are the even/odd
    // sub-transforms, T the twiddled odd part, Y0/Y1 the butterfly.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    E: [C]\n",
        "    O: [C]\n",
        "    W: [C]\n",
        "    T: [C]\n",
        "    Y0: [C]\n",
        "    Y1: [C]\n",
        "  expressions:\n",
        "    - T[c] = W[c] * O[c]\n",
        "    - Y0[c] = E[c] + T[c]\n",
        "    - Y1[c] = E[c] - T[c]\n",
    ))
    .unwrap();
    let e = TensorBuilder::new("E", &["C"], &[4])
        .entries((0..4).map(|c| (vec![c], (c + 1) as f64)))
        .build()
        .unwrap();
    let o = TensorBuilder::new("O", &["C"], &[4])
        .entries((0..4).map(|c| (vec![c], (c + 5) as f64)))
        .build()
        .unwrap();
    let w = TensorBuilder::new("W", &["C"], &[4])
        .entries((0..4).map(|c| (vec![c], 0.5)))
        .build()
        .unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[e, o, w]).unwrap();
    let y0 = report.outputs.get("Y0").unwrap();
    let y1 = report.outputs.get("Y1").unwrap();
    // Y0[c] = E + 0.5·O; Y1[c] = E − 0.5·O.
    assert_eq!(y0.get(&[0]), Some(1.0 + 2.5));
    assert_eq!(y1.get(&[0]), Some(1.0 - 2.5));
    assert_eq!(y0.get(&[3]), Some(4.0 + 4.0));
    // 4 - 0.5·8 = 0 → pruned as an implicit zero.
    assert_eq!(y1.get(&[3]), None);
}

#[test]
fn eyeriss_style_2d_convolution() {
    // O[p, q] = I[p + r, q + s] · F[r, s] — 2-D direct convolution with
    // two affine indices (paper Table 2, Eyeriss row simplified to one
    // channel).
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    I: [H, W]\n",
        "    F: [R, S]\n",
        "    O: [P, Q]\n",
        "  expressions:\n",
        "    - O[p, q] = I[p + r, q + s] * F[r, s]\n",
    ))
    .unwrap();
    let i = Tensor::from_dense_2d(
        "I",
        &["H", "W"],
        &[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ],
    );
    let f = Tensor::from_dense_2d("F", &["R", "S"], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
    let sim = Simulator::new(spec)
        .unwrap()
        .with_rank_extent("P", 2)
        .with_rank_extent("Q", 2)
        .with_rank_extent("R", 2)
        .with_rank_extent("S", 2);
    let report = sim.run(&[i, f]).unwrap();
    let o = report.final_output().unwrap();
    // O[p, q] = I[p, q] + I[p+1, q+1].
    assert_eq!(o.get(&[0, 0]), Some(1.0 + 5.0));
    assert_eq!(o.get(&[0, 1]), Some(2.0 + 6.0));
    assert_eq!(o.get(&[1, 0]), Some(4.0 + 8.0));
    assert_eq!(o.get(&[1, 1]), Some(5.0 + 9.0));
}

#[test]
fn full_spec_parse_lower_run_roundtrip() {
    // Exercise the facade path end to end with mapping + architecture.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, K, N]\n",
        "architecture:\n",
        "  clock: 2_000_000_000\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "          bandwidth: 100_000_000_000\n",
        "      subtree:\n",
        "        - name: PE\n",
        "          count: 4\n",
        "          local:\n",
        "            - name: ALU\n",
        "              class: compute\n",
        "              op: mul\n",
    ))
    .unwrap();
    let sim = Simulator::new(spec).unwrap();
    let a = teaal::workloads::genmat::uniform("A", &["K", "M"], 30, 30, 120, 5);
    let b = teaal::workloads::genmat::uniform("B", &["K", "N"], 30, 30, 120, 6);
    let report = sim.run(&[a, b]).unwrap();
    assert!(report.seconds > 0.0);
    assert_eq!(report.cycles, report.seconds * 2e9);
}
