//! Property-based fuzzing of the `teaal serve` wire parser.
//!
//! The daemon feeds [`read_frame`] bytes straight off the network, so
//! the parser's contract is load-bearing for fault tolerance: arbitrary
//! bytes, truncated frames, and oversized length claims must never
//! panic, never allocate unboundedly, and — when a frame-level (body)
//! error is reported — never desynchronize the stream from the next
//! frame boundary.

use std::io::BufReader;

use proptest::prelude::*;
use teaal::wire::{read_frame, Frame, FrameKind, WireError, DEFAULT_MAX_FRAME_BYTES};

/// Drains a byte buffer through the parser exactly as a connection
/// handler would: keep reading on recoverable errors, stop on clean
/// EOF or a fatal/transport error. Returns the parsed frames.
fn drain(bytes: &[u8], max_frame: usize) -> Vec<Frame> {
    let mut reader = BufReader::new(bytes);
    let mut frames = Vec::new();
    // Bounded by construction (each iteration consumes ≥1 byte or
    // stops), but cap it anyway so a parser bug fails fast, not
    // forever.
    for _ in 0..bytes.len() + 1 {
        match read_frame(&mut reader, max_frame) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => break,
            Err(WireError::Frame(_)) => continue,
            Err(WireError::Fatal(_)) | Err(WireError::Io(_)) => break,
        }
    }
    frames
}

fn arb_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u16..256, 0..max_len)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Field values may be any Unicode, including the characters the
/// percent-encoding must escape.
fn arb_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u16..128, 0..40).prop_map(|v| {
        v.into_iter()
            .map(|b| match b {
                0 => '%',
                1 => '\n',
                2 => '\r',
                3 => 'é',
                b => char::from(32 + (b % 90) as u8),
            })
            .collect()
    })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u16..3,
        proptest::collection::vec((0u16..4, arb_value()), 0..6),
    )
        .prop_map(|(kind, kvs)| {
            let kind = match kind {
                0 => FrameKind::Req,
                1 => FrameKind::Ok,
                _ => FrameKind::Err,
            };
            const KEYS: [&str; 4] = ["op", "spec", "loop_order", "cache.report.bytes"];
            let mut frame = Frame::new(kind);
            for (k, v) in kvs {
                frame = frame.field(KEYS[k as usize], v);
            }
            frame
        })
}

proptest! {
    /// Garbage in, no panic out: any byte soup drains cleanly.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in arb_bytes(400)) {
        drain(&bytes, DEFAULT_MAX_FRAME_BYTES);
    }

    /// Garbage prefixed with the protocol magic exercises the header
    /// and length paths rather than dying on the first token.
    #[test]
    fn near_miss_headers_never_panic(bytes in arb_bytes(200)) {
        let mut framed = b"teaal/1 ".to_vec();
        framed.extend_from_slice(&bytes);
        drain(&framed, DEFAULT_MAX_FRAME_BYTES);
    }

    /// Encode → decode is the identity, for any kind and any values.
    #[test]
    fn roundtrip_is_identity(frame in arb_frame()) {
        let bytes = frame.encode();
        let mut reader = BufReader::new(&bytes[..]);
        let back = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .expect("well-formed frame reads")
            .expect("not EOF");
        prop_assert_eq!(back, frame);
        prop_assert!(matches!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES),
            Ok(None)
        ));
    }

    /// Truncating a valid frame at any point never panics, and never
    /// hallucinates a frame that wasn't fully received: either the cut
    /// lands exactly between frames (EOF) or the parser reports an
    /// error.
    #[test]
    fn truncation_never_panics_or_fabricates(frame in arb_frame(), cut in 0u32..4096) {
        let bytes = frame.encode();
        let cut = (cut as usize) % bytes.len(); // strictly shorter
        let mut reader = BufReader::new(&bytes[..cut]);
        match read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES) {
            Ok(Some(parsed)) => prop_assert!(false, "parsed {parsed:?} from a truncated frame"),
            Ok(None) => prop_assert_eq!(cut, 0, "mid-frame cut must not read as clean EOF"),
            Err(_) => {}
        }
    }

    /// Corrupting one body byte of a framed message cannot
    /// desynchronize the stream: the *next* frame always parses intact.
    /// (The parser consumes the full declared body before judging it.)
    #[test]
    fn body_corruption_does_not_desynchronize(
        frame in arb_frame(),
        second_value in arb_value(),
        corrupt in (0u32..4096, 0u16..256),
    ) {
        let second = Frame::new(FrameKind::Ok).field("op", second_value);
        let first = frame.encode();
        let header_len = first.iter().position(|&b| b == b'\n').unwrap() + 1;
        let body_len = first.len() - header_len - 1;
        let mut bytes = first.clone();
        if body_len > 0 {
            let (offset, byte) = corrupt;
            bytes[header_len + (offset as usize) % body_len] = byte as u8;
        }
        bytes.extend_from_slice(&second.encode());

        let mut reader = BufReader::new(&bytes[..]);
        // First frame: parses or fails recoverably — corruption inside
        // a well-framed body must never be fatal.
        match read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES) {
            Ok(Some(_)) | Err(WireError::Frame(_)) => {}
            other => prop_assert!(false, "body corruption escalated: {other:?}"),
        }
        let back = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .expect("second frame unaffected")
            .expect("second frame present");
        prop_assert_eq!(back, second);
    }

    /// An oversized length claim is rejected before allocation, however
    /// large the number, and a tiny `max_frame` bounds every accepted
    /// body.
    #[test]
    fn length_claims_are_bounded(len in 0u64..u64::MAX, max in 1u32..64) {
        let bytes = format!("teaal/1 req {len}\n").into_bytes();
        let mut reader = BufReader::new(&bytes[..]);
        let out = read_frame(&mut reader, max as usize);
        if len > u64::from(max) {
            prop_assert!(matches!(out, Err(WireError::Fatal(_))), "{out:?}");
        }
    }
}
