//! SpMSpM shootout: run all four state-of-the-art accelerators from the
//! paper on the same (scaled) wiki-Vote-like matrix and compare the
//! models — functional agreement, DRAM traffic, time, and energy.
//!
//! Run with: `cargo run --release --example spmspm_shootout`

use teaal::prelude::*;
use teaal::workloads::by_tag;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = by_tag("wi").expect("wiki-Vote is registered");
    let scale = 16;
    let a = ds.matrix_named("A", &["K", "M"], scale);
    let b = ds.matrix_named("B", &["K", "N"], scale);
    println!(
        "workload: {} at 1/{scale} scale ({} x {}, {} nnz), kernel Z = A^T A\n",
        ds.name,
        a.rank_shapes()[0].extent(),
        a.rank_shapes()[1].extent(),
        a.nnz()
    );

    println!(
        "{:<12}{:>10}{:>14}{:>14}{:>14}{:>10}",
        "accelerator", "nnz(Z)", "DRAM (B)", "time (s)", "energy (J)", "blocks"
    );
    let mut reference: Option<TensorData> = None;
    for accel in SpmspmAccel::all() {
        let sim = accel.simulator()?;
        let report = sim.run(&[a.clone(), b.clone()])?;
        let z = report.final_output().expect("Z produced").clone();
        if let Some(r) = &reference {
            assert_eq!(r.max_abs_diff(&z), 0.0, "accelerators must agree");
        }
        println!(
            "{:<12}{:>10}{:>14}{:>14.3e}{:>14.3e}{:>10}",
            accel.label(),
            z.nnz(),
            report.dram_bytes(),
            report.seconds,
            report.energy_joules,
            report.blocks.len()
        );
        reference = Some(z);
    }
    println!("\nall four designs computed identical results from the same Einsum cascade");
    Ok(())
}
