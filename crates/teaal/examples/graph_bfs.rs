//! Vertex-centric BFS (paper §8): run Graphicionado, GraphDynS-like, and
//! the paper's proposed design on a power-law graph and compare apply
//! operations, traffic, and modelled time per iteration.
//!
//! Run with: `cargo run --release --example graph_bfs`

use teaal::graph::{run, Algorithm};
use teaal::prelude::*;
use teaal::workloads::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::power_law(4096, 32768, false, 42);
    let root = graph.hub();
    println!(
        "graph: {} vertices, {} edges; BFS from hub vertex {root}\n",
        graph.vertices, graph.edges
    );

    for design in [
        GraphDesign::Graphicionado,
        GraphDesign::GraphDynS,
        GraphDesign::Proposal,
    ] {
        let result = run(design, Algorithm::Bfs, &graph, root)?;
        let reached = result.distances.iter().filter(|d| d.is_finite()).count();
        println!(
            "{} ({} iterations, {} vertices reached):",
            design.label(),
            result.metrics.iterations.len(),
            reached
        );
        println!(
            "  total: apply ops {:>10}, DRAM {:>12} B, time {:.3e} s",
            result.metrics.total_apply_ops(),
            result.metrics.total_dram_bytes(),
            result.metrics.total_seconds()
        );
        for (i, it) in result.metrics.iterations.iter().enumerate() {
            println!(
                "  iter {i}: active {:>6}, touched {:>6}, applied {:>8}, {:>10} B",
                it.active, it.touched, it.apply_ops, it.dram_bytes
            );
        }
        println!();
    }
    println!("(the proposal applies only to modified vertices — fewest ops and bytes)");
    Ok(())
}
