//! Cascades of Einsums capture multi-phase implementations (paper §3.1):
//! direct 1-D convolution versus the Toeplitz (im2col) expansion that
//! rewrites it as a two-Einsum cascade. Both compute the same output;
//! the cascade exposes the intermediate `T` and its own mapping freedom.
//!
//! Run with: `cargo run --example convolution_toeplitz`

use teaal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let direct = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    I: [W]\n",
        "    F: [S]\n",
        "    O: [Q]\n",
        "  expressions:\n",
        "    - O[q] = I[q + s] * F[s]\n",
    ))?;
    let toeplitz = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    I: [W]\n",
        "    F: [S]\n",
        "    T: [Q, S]\n",
        "    O: [Q]\n",
        "  expressions:\n",
        "    - T[q, s] = I[q + s]\n",
        "    - O[q] = T[q, s] * F[s]\n",
    ))?;

    let i = TensorBuilder::new("I", &["W"], &[10])
        .entries((0..10).map(|w| (vec![w], (w + 1) as f64)))
        .build()?;
    let f = TensorBuilder::new("F", &["S"], &[3])
        .entry(&[0], 1.0)
        .entry(&[1], -2.0)
        .entry(&[2], 1.0)
        .build()?;
    let q = 8; // output extent: W - S + 1

    let run = |name: &str, spec: TeaalSpec| -> Result<TensorData, Box<dyn std::error::Error>> {
        let sim = Simulator::new(spec)?
            .with_rank_extent("Q", q)
            .with_rank_extent("S", 3);
        let report = sim.run(&[i.clone(), f.clone()])?;
        let o = report.final_output().expect("O produced").clone();
        println!("{name}: O = {o}");
        println!("  einsums executed: {}", report.einsums.len());
        Ok(o)
    };

    let o_direct = run("direct convolution", direct)?;
    let o_toeplitz = run("Toeplitz cascade  ", toeplitz)?;
    assert_eq!(o_direct.max_abs_diff(&o_toeplitz), 0.0);
    println!("\nboth styles produce identical outputs — the cascade is a rewrite");
    Ok(())
}
