//! TeAAL as a design tool: sweep a mapping parameter (the occupancy
//! partition size — how many nonzeros each PE group owns) and watch the
//! model trade load balance against partitioning overhead. Only the
//! *mapping* changes; the Einsum, formats, and architecture stay fixed.
//!
//! Run with: `cargo run --release --example design_space`

use teaal::prelude::*;
use teaal::workloads::genmat;

fn spec_with_partition(size: usize) -> String {
    format!(
        concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    T: [K, M, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - T[k, m, n] = A[k, m] * B[k, n]\n",
            "    - Z[m, n] = T[k, m, n]\n",
            "mapping:\n",
            "  rank-order:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    T: [M, K, N]\n",
            "    Z: [M, N]\n",
            "  partitioning:\n",
            "    T:\n",
            "      (K, M): [flatten()]\n",
            "      KM: [uniform_occupancy(A.{size})]\n",
            "  loop-order:\n",
            "    T: [KM1, KM0, N]\n",
            "    Z: [M, N, K]\n",
            "  spacetime:\n",
            "    T:\n",
            "      space: [KM0]\n",
            "      time: [KM1, N]\n",
            "    Z:\n",
            "      space: []\n",
            "      time: [M, N, K]\n",
        ),
        size = size
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = genmat::power_law("A", &["K", "M"], 512, 512, 4096, 1.8, 256, 7);
    let b = genmat::power_law("B", &["K", "N"], 512, 512, 4096, 1.8, 256, 8);
    println!("sweeping occupancy partition size (outer-product multiply phase)\n");
    println!(
        "{:>10}{:>12}{:>14}{:>14}{:>12}",
        "size", "PEs used", "max PE ops", "total ops", "time (s)"
    );
    for size in [8, 16, 32, 64, 128, 256] {
        let spec = TeaalSpec::parse(&spec_with_partition(size))?;
        let sim = Simulator::new(spec)?;
        let report = sim.run(&[a.clone(), b.clone()])?;
        let t = &report.einsums[0];
        println!(
            "{:>10}{:>12}{:>14}{:>14}{:>12.3e}",
            size, t.spaces, t.max_pe_ops, t.muls, report.seconds
        );
    }
    println!("\nsmaller partitions spread work across more PEs (lower max-PE ops)");
    println!("until partition bookkeeping and the serial merge dominate.");
    Ok(())
}
