//! Design-space exploration (paper §10): enumerate every loop order for a
//! sparse matrix multiply, model each candidate on real data, and rank
//! the mappings — TeAAL as the middle level of a hierarchical DSE flow.
//!
//! Run with: `cargo run --release --example mapping_search`

use teaal::prelude::*;
use teaal::sim::{explore_loop_orders, Objective};
use teaal::workloads::genmat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "          bandwidth: 68_000_000_000\n",
        "      subtree:\n",
        "        - name: PE\n",
        "          count: 16\n",
        "          local:\n",
        "            - name: ALU\n",
        "              class: compute\n",
        "              op: mul\n",
    ))?;
    let a = genmat::power_law("A", &["K", "M"], 256, 256, 3000, 1.8, 96, 1);
    let b = genmat::power_law("B", &["K", "N"], 256, 256, 3000, 1.8, 96, 2);

    let candidates = explore_loop_orders(
        &spec,
        "Z",
        &[a, b],
        OpTable::arithmetic(),
        Objective::Time,
        720,
    )?;

    println!(
        "{} loop orders evaluated on real sparse data:\n",
        candidates.len()
    );
    println!(
        "{:<16}{:>14}{:>16}{:>14}",
        "loop order", "time (s)", "energy (J)", "DRAM (B)"
    );
    for c in &candidates {
        println!(
            "{:<16}{:>14.3e}{:>16.3e}{:>14}",
            c.loop_order.join(","),
            c.seconds,
            c.energy_joules,
            c.dram_bytes
        );
    }
    let best = &candidates[0];
    let worst = candidates.last().expect("nonempty");
    println!(
        "\nbest ({}) is {:.1}x faster than worst ({}) — same Einsum, same data,\n\
         same hardware; only the mapping moved.",
        best.loop_order.join(","),
        worst.seconds / best.seconds,
        worst.loop_order.join(",")
    );
    Ok(())
}
