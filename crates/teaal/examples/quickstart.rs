//! Quickstart: describe an accelerator declaratively, generate its
//! simulator, run it on a real sparse tensor, and read the model's
//! outputs.
//!
//! Run with: `cargo run --example quickstart`

use teaal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A TeAAL specification is a cascade of Einsums plus a mapping.
    // This one is a plain sparse matrix multiply with a K-tiled loop
    // order — a ~20-line accelerator description.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  rank-order:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  partitioning:\n",
        "    Z:\n",
        "      K: [uniform_shape(4)]\n",
        "  loop-order:\n",
        "    Z: [K1, M, K0, N]\n",
        "  spacetime:\n",
        "    Z:\n",
        "      space: [M]\n",
        "      time: [K1, K0, N]\n",
    ))?;

    let sim = Simulator::new(spec)?;

    // Real tensors, built from coordinate/value entries.
    let a = TensorBuilder::new("A", &["K", "M"], &[8, 8])
        .entry(&[0, 0], 1.0)
        .entry(&[0, 5], 2.0)
        .entry(&[3, 2], 3.0)
        .entry(&[7, 0], 4.0)
        .entry(&[7, 5], 5.0)
        .build()?;
    let b = TensorBuilder::new("B", &["K", "N"], &[8, 8])
        .entry(&[0, 1], 10.0)
        .entry(&[3, 3], 20.0)
        .entry(&[7, 1], 30.0)
        .build()?;

    let report = sim.run(&[a, b])?;

    let z = report.final_output().expect("cascade produced Z");
    println!("Z = {z}");
    println!("\n{report}");
    println!("muls performed: {}", report.einsums[0].muls);
    println!("DRAM traffic:   {} bytes", report.dram_bytes());
    println!("model time:     {:.3e} s", report.seconds);
    println!("model energy:   {:.3e} J", report.energy_joules);
    Ok(())
}
