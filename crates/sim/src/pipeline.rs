//! The staged evaluation pipeline's shared context.
//!
//! Evaluation proceeds through explicit stages, each with a
//! content-addressed cache boundary:
//!
//! ```text
//! SpecSource ──parse──▶ ParsedSpec ──compile──▶ LoweredPlan
//!     │ source_hash         │ spec_hash            │
//!     ▼                     ▼                      ▼
//! PreparedInputs ──execute──▶ SimReport
//!     (tensor hash, transform chain)   (plan, ops, inputs)
//! ```
//!
//! An [`EvalContext`] owns one cache per stage and is shared behind an
//! [`Arc`] by every consumer — the CLI's `batch` subcommand, the mapper
//! ([`explore_fast_with_context`](crate::explore::explore_fast_with_context)),
//! and the graph driver. All caches are keyed by stable FNV-1a content
//! hashes ([`teaal_core::canon`]), so artifacts are shared across
//! requests, candidates, and threads without any identity bookkeeping,
//! and every lookup feeds the process-wide
//! [`telemetry`] registry (`--cache-stats`).
//!
//! Caching never changes results: a warm-cache evaluation is bit-identical
//! to a cold one (instruments, time/energy, outputs), pinned by the
//! `pipeline_cache` integration suite.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use teaal_core::canon;
use teaal_core::TeaalSpec;
use teaal_fibertree::stats::StatsCache;
use teaal_fibertree::telemetry;
use teaal_fibertree::{ByteLru, TransformCache};

use crate::compile::CompiledPlan;
use crate::error::SimError;
use crate::model::Simulator;
use crate::report::SimReport;

/// How a whole-context byte budget splits across the bounded stages:
/// transformed inputs dominate residency, so they get half; compiled
/// plans and whole reports split the rest.
const TRANSFORM_SHARE_PCT: u64 = 50;
const REPORT_SHARE_PCT: u64 = 25;

/// Shared caches for every stage of the evaluation pipeline.
///
/// Create one per dataset/session with [`EvalContext::new`] and attach
/// it to simulators via [`Simulator::with_context`] (or let
/// [`EvalContext::simulator`] do both). Thread-safe; share the `Arc`
/// freely.
///
/// Residency is unbounded by default; long-running consumers bound it
/// with [`EvalContext::with_capacity`] or
/// [`EvalContext::set_max_cache_bytes`] (the CLI's `--max-cache-mb`).
/// Bounding evicts least-recently-used artifacts — since every key is a
/// content hash, an evicted artifact is rebuilt bit-identically on its
/// next miss, so eviction never changes results.
pub struct EvalContext {
    /// `source_hash → ParsedSpec` (tiny; never bounded).
    specs: Mutex<HashMap<u64, Arc<TeaalSpec>>>,
    /// `spec_hash → LoweredPlan`.
    plans: ByteLru<CompiledPlan>,
    /// `(plan, ops, extents, energy, inputs) → SimReport`.
    reports: ByteLru<SimReport>,
    /// `(tensor hash, transform chain) → PreparedInputs`.
    transforms: Arc<TransformCache>,
    /// Memoized per-tensor statistics for the analytical estimator.
    stats: Arc<StatsCache>,
}

impl Default for EvalContext {
    fn default() -> Self {
        EvalContext {
            specs: Mutex::new(HashMap::new()),
            plans: ByteLru::with_stats(telemetry::plan_cache_stats()),
            reports: ByteLru::with_stats(telemetry::report_cache_stats()),
            transforms: Arc::new(TransformCache::new()),
            stats: Arc::new(StatsCache::default()),
        }
    }
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("specs", &self.specs.lock().map(|m| m.len()).unwrap_or(0))
            .field("plans", &self.plans.len())
            .field("reports", &self.reports.len())
            .field("transforms", &self.transforms.len())
            .finish()
    }
}

impl EvalContext {
    /// Creates an empty context behind the `Arc` every consumer shares.
    pub fn new() -> Arc<Self> {
        Arc::new(EvalContext::default())
    }

    /// An empty context whose caches are bounded to roughly
    /// `max_bytes` resident bytes total (see
    /// [`EvalContext::set_max_cache_bytes`] for the split).
    pub fn with_capacity(max_bytes: u64) -> Arc<Self> {
        let ctx = EvalContext::new();
        ctx.set_max_cache_bytes(max_bytes);
        ctx
    }

    /// Bounds the context's resident cache bytes: half the budget goes
    /// to transformed inputs, a quarter each to whole reports and
    /// compiled plans. Shrinking below current residency evicts
    /// immediately (LRU first); eviction counts surface per stage in
    /// `--cache-stats`.
    pub fn set_max_cache_bytes(&self, max_bytes: u64) {
        let transform_share = max_bytes / 100 * TRANSFORM_SHARE_PCT;
        let report_share = max_bytes / 100 * REPORT_SHARE_PCT;
        let plan_share = max_bytes
            .saturating_sub(transform_share)
            .saturating_sub(report_share);
        self.transforms.set_capacity_bytes(transform_share);
        self.reports.set_capacity_bytes(report_share);
        self.plans.set_capacity_bytes(plan_share);
    }

    /// Artifacts evicted across all bounded stages so far (monotonic).
    pub fn evictions(&self) -> u64 {
        self.transforms.evictions() + self.reports.evictions() + self.plans.evictions()
    }

    /// Parses specification source, cached by
    /// [`canon::source_hash`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when parsing fails (never cached).
    pub fn parse(&self, source: &str) -> Result<Arc<TeaalSpec>, SimError> {
        let key = canon::source_hash(source);
        if let Some(spec) = self.specs.lock().expect("spec cache poisoned").get(&key) {
            telemetry::spec_cache_stats().hit();
            return Ok(Arc::clone(spec));
        }
        let spec = Arc::new(TeaalSpec::parse(source)?);
        telemetry::spec_cache_stats().miss(source.len() as u64);
        Ok(self
            .specs
            .lock()
            .expect("spec cache poisoned")
            .entry(key)
            .or_insert(spec)
            .clone())
    }

    /// Compiles a specification, cached by [`canon::spec_hash`] — two
    /// sources that parse to the same specification share one compiled
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when lowering fails (never cached).
    pub fn compiled(&self, spec: &TeaalSpec) -> Result<Arc<CompiledPlan>, SimError> {
        let key = canon::spec_hash(spec);
        if let Some(plan) = self.plans.get(key) {
            telemetry::plan_cache_stats().hit();
            return Ok(plan);
        }
        let plan = Arc::new(CompiledPlan::compile(spec.clone())?);
        let bytes = plan.approx_bytes();
        telemetry::plan_cache_stats().miss(bytes);
        Ok(self.plans.insert(key, plan, bytes))
    }

    /// A simulator over the (cached) compiled plan for `spec`, with this
    /// context attached so execution shares the transform and report
    /// caches.
    ///
    /// # Errors
    ///
    /// As [`EvalContext::compiled`].
    pub fn simulator(self: &Arc<Self>, spec: &TeaalSpec) -> Result<Simulator, SimError> {
        Ok(Simulator::from_compiled(self.compiled(spec)?).with_context(Arc::clone(self)))
    }

    /// The shared transformed-input cache.
    pub fn transforms(&self) -> &Arc<TransformCache> {
        &self.transforms
    }

    /// The shared per-tensor statistics cache (analytical estimator).
    pub fn stats(&self) -> &Arc<StatsCache> {
        &self.stats
    }

    /// Number of distinct compiled plans cached.
    pub fn compiled_len(&self) -> usize {
        self.plans.len()
    }

    pub(crate) fn cached_report(&self, key: u64) -> Option<Arc<SimReport>> {
        let hit = self.reports.get(key);
        if hit.is_some() {
            telemetry::report_cache_stats().hit();
        }
        hit
    }

    pub(crate) fn store_report(&self, key: u64, report: Arc<SimReport>) -> Arc<SimReport> {
        let bytes: u64 = report
            .outputs
            .values()
            .map(|t| (t.nnz() as u64) * (8 + 8 * t.order() as u64))
            .sum::<u64>()
            + 256;
        telemetry::report_cache_stats().miss(bytes);
        self.reports.insert(key, report, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPMSPM: &str = concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    );

    #[test]
    fn parse_is_cached_by_source_hash() {
        let ctx = EvalContext::new();
        let a = ctx.parse(SPMSPM).unwrap();
        let b = ctx.parse(SPMSPM).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn compile_is_cached_by_spec_hash_across_formatting() {
        let ctx = EvalContext::new();
        let a = ctx.parse(SPMSPM).unwrap();
        // A comment changes the source hash but not the parsed spec, so
        // the compiled plan is shared.
        let commented = format!("# cosmetic\n{SPMSPM}");
        let b = ctx.parse(&commented).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        let pa = ctx.compiled(&a).unwrap();
        let pb = ctx.compiled(&b).unwrap();
        assert!(Arc::ptr_eq(&pa, &pb));
        assert_eq!(ctx.compiled_len(), 1);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let ctx = EvalContext::new();
        assert!(ctx.parse("einsum: [not, a, spec]").is_err());
        // A second attempt re-parses (and fails again) rather than
        // returning a poisoned artifact.
        assert!(ctx.parse("einsum: [not, a, spec]").is_err());
    }
}
