//! The instrumented execution engine.
//!
//! Interprets an [`EinsumPlan`] over real tensors: applies the per-tensor
//! transform pipeline (publishing leader-follower partition boundaries),
//! then walks the mapped loop nest co-iterating fibers exactly as the
//! modelled hardware would — intersecting multiplicative operands,
//! unioning additive ones, projecting flattened coordinates, resolving
//! affine indices — while streaming every access into [`Instruments`].
//!
//! The nest is driven end-to-end by [`FiberView`] cursors over
//! [`TensorData`] inputs: untransformed tensors (owned or compressed) are
//! borrowed, never cloned, and each loop level consumes a lazy
//! intersection/union stream instead of materializing a match list — the
//! engine allocates per *level*, not per *step*.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use teaal_core::canon::Fnv1a;
use teaal_core::einsum::Rhs;
use teaal_core::ir::{Descent, EinsumPlan, PlanStep, RankDef, TensorPlan};
use teaal_fibertree::iterate::{
    intersect_stream, intersect_stream_bounded, union_stream, union_stream_bounded,
    IntersectStream, UnionStream,
};
use teaal_fibertree::partition::SplitKind;
use teaal_fibertree::swizzle::from_coord_entries;
use teaal_fibertree::{
    telemetry, BoundaryRecord, CompressedBuilder, CompressedTensor, Coord, FiberView,
    IntersectPolicy, MergeRecord, PayloadView, Shape, Tensor, TensorData, TransformCache,
    TransformedView,
};

use crate::counters::{Instruments, MergeGroup};
use crate::error::{panic_message, SimError};
use crate::limits::CancelToken;
use crate::ops::OpTable;

/// Boundary lists published by occupancy-partition leaders, keyed by
/// `(rank, leader tensor)`.
pub type BoundaryCache =
    BTreeMap<(String, String), std::collections::BTreeMap<Vec<Coord>, Vec<Coord>>>;

/// The engine executing one Einsum plan.
pub struct Engine<'p> {
    plan: &'p EinsumPlan,
    ops: OpTable,
    policy: IntersectPolicy,
    rank_extents: BTreeMap<String, u64>,
    threads: usize,
    /// Shared transformed-input cache (staged pipeline), when attached.
    transforms: Option<Arc<TransformCache>>,
    /// Cooperative budget/cancellation handle, when attached. `None`
    /// keeps the hot loop free of charging entirely.
    cancel: Option<CancelToken>,
}

/// One prepared input: either the untransformed tensor borrowed straight
/// from the environment, a freshly transformed tensor this execution
/// owns, or a shared transformed view out of the pipeline's
/// [`TransformCache`]. The nest walk only ever needs `&TensorData`.
enum PreparedInput<'t> {
    Borrowed(&'t TensorData),
    Owned(TensorData),
    Shared(Arc<TransformedView>),
}

impl PreparedInput<'_> {
    fn data(&self) -> &TensorData {
        match self {
            PreparedInput::Borrowed(t) => t,
            PreparedInput::Owned(t) => t,
            PreparedInput::Shared(v) => &v.tensor,
        }
    }
}

#[derive(Clone)]
struct Exec<'e, 'p> {
    engine: &'e Engine<'p>,
    union_mode: bool,
    take_which: Option<usize>,
    /// Maps access index → tensor index in `tensors`.
    access_tensor: Vec<usize>,
    /// Working rank consumed by each access at each descent (parallel to
    /// roles): resolved lazily from tensor plans.
    access_rank_names: Vec<Vec<String>>,
    /// When executing one shard of a partitioned top rank, the top-level
    /// stream only emits coordinates in `[lo, hi)` (absolute positions,
    /// shard-exact charging).
    top_bounds: Option<(u64, u64)>,
    /// Whether leaf() must remember the space id of each output key's
    /// first write — needed to reconstitute the sequential reduction
    /// counts when shards overlap on output keys.
    record_first_space: bool,
}

/// The engine's output accumulator. `Map` buffers every point (the
/// general path); `Stream` drains straight into a [`CompressedBuilder`]
/// when the loop order is concordant with the output rank order, so
/// leaf visits arrive key-sorted with equal keys adjacent and only one
/// pending entry ever needs buffering.
enum OutAcc {
    Map(BTreeMap<Vec<u64>, f64>),
    Stream {
        builder: CompressedBuilder,
        pending: Option<(Vec<u64>, f64)>,
    },
}

struct State<'t> {
    nodes: Vec<Option<PayloadView<'t>>>,
    binds: Vec<(String, u64)>,
    space: Vec<u64>,
    out: OutAcc,
    /// Space id at each output key's first write (shard-overlap merges
    /// only; see [`Exec::record_first_space`]).
    first_space: BTreeMap<Vec<u64>, Vec<u64>>,
}

/// How a shard-parallel execution was planned: the top-rank coordinate
/// ranges, per-channel fill-merge modes, and the output merge strategy.
struct ShardPlan {
    /// Half-open top-coordinate ranges, one per worker, in coordinate
    /// order; together they cover every top coordinate.
    ranges: Vec<(u64, u64)>,
    /// Per-tensor: whether the shard channel logs fills for merge-time
    /// first-wins deduplication (single buffet epoch spanning shards).
    log_fills: BTreeMap<String, bool>,
    /// Whether shards write disjoint output key sets (the top coordinate
    /// is an output coordinate), making all output counters additive.
    disjoint: bool,
    /// Whether shards stream their outputs into per-shard
    /// [`CompressedBuilder`]s merged by k-way concatenation.
    stream_out: bool,
}

/// The per-level coordinate source: a dense counter for affine kernels, a
/// lazy union or intersection stream otherwise.
enum LevelStream<'v> {
    Dense { next: u64, extent: u64 },
    Union(UnionStream<'v>),
    Intersect(IntersectStream<'v>),
    Empty,
}

impl<'p> Engine<'p> {
    /// Creates an engine for one plan.
    pub fn new(
        plan: &'p EinsumPlan,
        ops: OpTable,
        policy: IntersectPolicy,
        rank_extents: BTreeMap<String, u64>,
    ) -> Self {
        Engine {
            plan,
            ops,
            policy,
            rank_extents,
            threads: 1,
            transforms: None,
            cancel: None,
        }
    }

    /// Attaches a cooperative cancellation/budget token. The walk
    /// charges one engine step per loop-rank visit and one output
    /// entry per materialized key, and polls the token at stream,
    /// shard, and transform boundaries; a tripped budget surfaces as
    /// the matching structured [`SimError`] with partial telemetry.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a shared [`TransformCache`]: input transform chains whose
    /// results are content-determined are served from (and published to)
    /// the cache instead of re-running. Recorded side effects — merge
    /// groups and leader boundary publications — are replayed from the
    /// cached view, so instruments and boundary visibility are
    /// bit-identical to an uncached run.
    pub fn with_transform_cache(mut self, cache: Arc<TransformCache>) -> Self {
        self.transforms = Some(cache);
        self
    }

    /// Sets the worker count for shard-parallel execution (default 1).
    ///
    /// With `n > 1`, eligible plans partition their top loop rank into up
    /// to `n` coordinate ranges executed on scoped threads and merged
    /// deterministically — instruments and outputs are bit-identical to
    /// the sequential run (pinned by the `parallel_sharding` suite).
    /// Plans the shard-exactness analysis cannot prove simply run
    /// sequentially; `n` is a cap, never a requirement.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Executes the plan, assembling an owned output tensor.
    ///
    /// Convenience wrapper over [`Engine::execute_data`] with an owned
    /// output.
    ///
    /// # Errors
    ///
    /// As [`Engine::execute_data`].
    pub fn execute(
        &self,
        inputs: &BTreeMap<String, &TensorData>,
        instruments: &mut Instruments,
        boundaries: &mut BoundaryCache,
    ) -> Result<Tensor, SimError> {
        self.execute_data(inputs, instruments, boundaries, false)
            .map(TensorData::into_tensor)
    }

    /// Executes the plan.
    ///
    /// `inputs` must contain every input tensor (cascade inputs and
    /// already-produced intermediates) in either representation;
    /// `instruments` receives the access stream; `boundaries` carries
    /// leader partition boundaries across tensors. With
    /// `compressed_output`, the accumulated output drains through a
    /// [`CompressedBuilder`] into CSF storage instead of an owned tree —
    /// `O(output nnz)` allocations, no tree build.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when inputs are missing, a transform fails, a
    /// dense loop rank has no known extent, or the plan descends deeper
    /// than a tensor's working order ([`SimError::PhantomRank`]).
    pub fn execute_data<'t>(
        &self,
        inputs: &BTreeMap<String, &'t TensorData>,
        instruments: &mut Instruments,
        boundaries: &mut BoundaryCache,
        compressed_output: bool,
    ) -> Result<TensorData, SimError> {
        // 1. Transform inputs per plan (leaders first — plan order).
        // Untransformed inputs are borrowed rather than cloned — the graph
        // driver re-executes cascades every superstep against the same
        // multi-million-entry compressed adjacency. Compressed inputs run
        // the transform pipeline compressed-natively whenever the result
        // is representable (everything except flattening beyond pair
        // coordinates); only then does the owned path serve as fallback,
        // and the choice is decided *up front* so no instrument effects
        // are ever half-applied. With a [`TransformCache`] attached,
        // content-determined chains are served from the cache and their
        // recorded side effects replayed.
        let mut tensors: Vec<PreparedInput<'t>> = Vec::new();
        let mut tensor_names: Vec<String> = Vec::new();
        for tp in &self.plan.tensor_plans {
            // Transform-step boundary: a budget that trips between input
            // chains returns before the next (possibly large) transform.
            if let Some(token) = &self.cancel {
                token.checkpoint()?;
            }
            let input: &TensorData =
                inputs
                    .get(&tp.tensor)
                    .copied()
                    .ok_or_else(|| SimError::MissingTensor {
                        tensor: tp.tensor.clone(),
                    })?;
            let needs_swizzle = input.rank_ids() != tp.initial_order.as_slice();
            let t = if needs_swizzle || !tp.steps.is_empty() {
                let native = matches!(
                    input, TensorData::Compressed(c) if compressed_pipeline_supported(c, tp));
                let cached = self.transforms.as_ref().and_then(|cache| {
                    let key = self.transform_key(input, tp, needs_swizzle, native, boundaries)?;
                    Some(cache.get_or_build(key, || {
                        self.run_transform_chain(input, tp, needs_swizzle, native, boundaries)
                    }))
                });
                match cached {
                    Some(view) => {
                        let view = view?;
                        apply_view_effects(&view, instruments, boundaries);
                        PreparedInput::Shared(view)
                    }
                    None => {
                        let view =
                            self.run_transform_chain(input, tp, needs_swizzle, native, boundaries)?;
                        apply_view_effects(&view, instruments, boundaries);
                        PreparedInput::Owned(view.tensor)
                    }
                }
            } else {
                PreparedInput::Borrowed(input)
            };
            tensor_names.push(tp.tensor.clone());
            tensors.push(t);
        }

        // 2. Access → tensor resolution and per-descent rank names.
        let accesses = self.plan.equation.rhs.accesses();
        let mut access_tensor = Vec::with_capacity(accesses.len());
        let mut access_rank_names = Vec::with_capacity(accesses.len());
        for (ai, a) in accesses.iter().enumerate() {
            let ti = tensor_names
                .iter()
                .position(|n| *n == a.tensor)
                .ok_or_else(|| SimError::MissingTensor {
                    tensor: a.tensor.clone(),
                })?;
            access_tensor.push(ti);
            // The working rank consumed by the access's k-th descent is the
            // k-th rank of the tensor's working order. Descending past the
            // working order means the plan is malformed: fail loudly
            // instead of instrumenting phantom ranks.
            let wo = self.plan.tensor_plans[ti].working_order.clone();
            let mut per_level = Vec::new();
            let mut k = 0usize;
            for level in &self.plan.access_roles[ai].roles {
                let mut names = Vec::with_capacity(level.len());
                for _ in level {
                    let name = wo.get(k).cloned().ok_or_else(|| SimError::PhantomRank {
                        tensor: self.plan.tensor_plans[ti].tensor.clone(),
                        depth: k,
                        working_order: wo.clone(),
                    })?;
                    names.push(name);
                    k += 1;
                }
                per_level.push(names.join("/"));
            }
            access_rank_names.push(per_level);
        }

        let (union_mode, take_which) = match &self.plan.equation.rhs {
            Rhs::SumOfProducts(terms) => (terms.len() > 1, None),
            Rhs::Take { which, .. } => (false, Some(*which)),
        };

        let exec = Exec {
            engine: self,
            union_mode,
            take_which,
            access_tensor,
            access_rank_names,
            top_bounds: None,
            record_first_space: false,
        };

        // 3. Walk the nest — shard-parallel when the exactness analysis
        // allows it, sequentially otherwise. A panicking shard worker is
        // isolated (`catch_unwind`), the partially-absorbed instruments
        // are rolled back to this pre-shard snapshot, and the plan is
        // retried once sequentially — degradation, not failure.
        let concordant = self.output_concordant();
        if let Some(token) = &self.cancel {
            token.checkpoint()?;
        }
        if let Some(shard_plan) = self.plan_shards(&exec, &tensors, instruments, compressed_output)
        {
            let snapshot = instruments.clone();
            match self.execute_sharded(&exec, &tensors, instruments, &shard_plan, compressed_output)
            {
                Err(SimError::WorkerPanic { .. }) => {
                    *instruments = snapshot;
                    telemetry::note_degraded_sequential();
                }
                other => return other,
            }
        }
        let mut state = State {
            nodes: exec
                .access_tensor
                .iter()
                .map(|&ti| Some(tensors[ti].data().root_view()))
                .collect(),
            binds: Vec::new(),
            space: Vec::new(),
            out: if compressed_output && concordant {
                OutAcc::Stream {
                    builder: self.output_builder()?,
                    pending: None,
                }
            } else {
                OutAcc::Map(BTreeMap::new())
            },
            first_space: BTreeMap::new(),
        };
        exec.level(0, &mut state, instruments)?;

        // 4. Assemble the output tensor.
        match state.out {
            OutAcc::Stream { builder, pending } => self
                .finish_stream(builder, pending)
                .map(TensorData::Compressed),
            OutAcc::Map(map) => {
                if compressed_output {
                    self.build_output_as::<CompressedTensor>(map, instruments)
                        .map(TensorData::Compressed)
                } else {
                    self.build_output_as::<Tensor>(map, instruments)
                        .map(TensorData::Owned)
                }
            }
        }
    }

    /// Whether the loop order is concordant with the output rank order:
    /// the first `target_order.len()` loop ranks each bind exactly their
    /// corresponding target root (component 0, a root rank's point
    /// coordinates) and no deeper loop rank rebinds any target root. Leaf
    /// visits then produce nondecreasing output keys with equal keys
    /// adjacent, so the accumulator can stream into a
    /// [`CompressedBuilder`] instead of buffering every point.
    fn output_concordant(&self) -> bool {
        let out = &self.plan.output;
        if out.online_swizzle {
            return false;
        }
        let t = out.target_order.len();
        if self.plan.loop_ranks.len() < t {
            return false;
        }
        for (i, r) in out.target_order.iter().enumerate() {
            let lr = &self.plan.loop_ranks[i];
            if lr.binds.len() != 1 || lr.binds[0].0 != *r || lr.binds[0].1 != 0 {
                return false;
            }
            if !matches!(self.plan.rank_space.def(&lr.name), Some(RankDef::Root)) {
                return false;
            }
        }
        self.plan.loop_ranks[t..].iter().all(|lr| {
            lr.binds
                .iter()
                .all(|(root, _)| !out.target_order.contains(root))
        })
    }

    /// A streaming output builder shaped exactly like
    /// [`Engine::build_output_as`]'s target-order sink, so streamed and
    /// buffered outputs are bit-identical.
    fn output_builder(&self) -> Result<CompressedBuilder, SimError> {
        let target = self.plan.output.target_order.clone();
        let shapes: Vec<Shape> = target
            .iter()
            .map(|r| Shape::Interval(self.rank_extents.get(r).copied().unwrap_or(u64::MAX / 2)))
            .collect();
        Ok(CompressedBuilder::new(
            &self.plan.output.tensor,
            target,
            shapes,
        )?)
    }

    /// Flushes a streaming accumulator's pending entry (dropping semiring
    /// zeros, like the buffered drain) and closes the builder.
    fn finish_stream(
        &self,
        mut builder: CompressedBuilder,
        pending: Option<(Vec<u64>, f64)>,
    ) -> Result<CompressedTensor, SimError> {
        let zero = self.ops.semiring.zero();
        if let Some((k, v)) = pending {
            if v != zero {
                builder.push_point(&k, v)?;
            }
        }
        Ok(builder.finish())
    }

    /// Decides whether this execution can shard its top loop rank across
    /// `self.threads` workers while staying bit-identical to the
    /// sequential run, and plans the shard ranges if so. Every `None`
    /// is a proof obligation the analysis could not discharge — the
    /// caller then runs sequentially, which is always correct.
    fn plan_shards(
        &self,
        exec: &Exec<'_, 'p>,
        tensors: &[PreparedInput<'_>],
        instruments: &Instruments,
        compressed_output: bool,
    ) -> Option<ShardPlan> {
        if self.threads < 2 {
            return None;
        }
        let top = self.plan.loop_ranks.first()?;

        // Top-level drivers and live fibers, exactly as level(0) sees
        // them.
        let driver_idx: Vec<usize> = self
            .plan
            .access_roles
            .iter()
            .enumerate()
            .filter(|(_, roles)| roles.roles[0].contains(&Descent::CoIterate))
            .map(|(ai, _)| ai)
            .collect();
        let live: Vec<FiberView<'_>> = driver_idx
            .iter()
            .filter_map(
                |&ai| match tensors[exec.access_tensor[ai]].data().root_view() {
                    PayloadView::Fiber(f) => Some(f),
                    _ => None,
                },
            )
            .collect();

        // Shard boundaries on the top coordinate axis, plus the exclusive
        // upper limit of the final range.
        let (boundaries, upper) = if driver_idx.is_empty() {
            // Dense top: split the extent evenly. A missing extent errors
            // identically on the sequential path, so fall back to it.
            let root = top
                .binds
                .first()
                .map(|(r, _)| r.clone())
                .unwrap_or_else(|| top.name.clone());
            let extent = self.rank_extents.get(&root).copied()?;
            if extent == 0 {
                return None;
            }
            let n = self.threads as u64;
            ((1..n).map(|i| i * extent / n).collect::<Vec<u64>>(), extent)
        } else {
            // Sparse top: bounded co-iteration is only shard-exact for
            // the stream shapes it was proved for.
            if exec.union_mode {
                if live.is_empty() {
                    return None;
                }
            } else if live.len() != driver_idx.len() || live.len() > 2 {
                return None;
            }
            // Bounded streams compare point coordinates; tuple-coordinate
            // roots (flattened ranks) fall back.
            if live
                .iter()
                .any(|f| f.occupancy() > 0 && f.coord_at(0).as_point().is_none())
            {
                return None;
            }
            let widest = live.iter().max_by_key(|f| f.occupancy())?;
            let occ = widest.occupancy();
            if occ == 0 {
                return None;
            }
            let bs: Vec<u64> = (1..self.threads)
                .map(|i| widest.coord_at(i * occ / self.threads).as_point())
                .collect::<Option<Vec<u64>>>()?;
            (bs, u64::MAX)
        };
        let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(boundaries.len() + 1);
        let mut lo = 0u64;
        for b in boundaries {
            if b > lo && b < upper {
                ranges.push((lo, b));
                lo = b;
            }
        }
        ranges.push((lo, upper));
        if ranges.len() < 2 {
            return None;
        }

        // Channel mergeability: caches replay an access order, which
        // sharding reorders; buffet epochs must either stay within one
        // shard (evict-on the top rank) or span the whole run (no
        // effective evict rank, merged by first-fill-wins deduplication).
        let loop_names: BTreeSet<&str> = self
            .plan
            .loop_ranks
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        let mut log_fills = BTreeMap::new();
        for (name, ch) in &instruments.tensors {
            let cfg = ch.cfg();
            if cfg.cache_lines.is_some() {
                return None;
            }
            let log = if !cfg.dram_backed {
                false
            } else {
                match cfg.evict_on.as_deref() {
                    Some(r) if r == top.name => false,
                    Some(r) if loop_names.contains(r) => return None,
                    _ => true,
                }
            };
            log_fills.insert(name.clone(), log);
        }

        // Output merge strategy. Disjoint: the top coordinate is an
        // output coordinate, so shards write disjoint keys and every
        // output counter is additive. Overlap: shards reduce into the
        // same keys, which is only reconstitutable without partial-output
        // epochs and with an exact (order-insensitive) reduction — or a
        // take, where the first shard's value wins as it would
        // sequentially.
        let out = &self.plan.output;
        let disjoint = top.binds.len() == 1
            && top.binds[0].1 == 0
            && out.target_order.contains(&top.binds[0].0)
            && !self.plan.loop_ranks[1..]
                .iter()
                .any(|lr| lr.binds.iter().any(|(r, _)| *r == top.binds[0].0));
        if !disjoint {
            let overlap_ok = instruments.output.evict_on.is_none()
                && (exec.take_which.is_some() || self.ops.exact_add);
            if !overlap_ok {
                return None;
            }
        }
        let stream_out = disjoint && compressed_output && self.output_concordant();

        Some(ShardPlan {
            ranges,
            log_fills,
            disjoint,
            stream_out,
        })
    }

    /// Runs the planned shards on scoped threads and merges their
    /// instruments and outputs deterministically, in shard (coordinate)
    /// order.
    fn execute_sharded(
        &self,
        exec: &Exec<'_, 'p>,
        tensors: &[PreparedInput<'_>],
        instruments: &mut Instruments,
        shard_plan: &ShardPlan,
        compressed_output: bool,
    ) -> Result<TensorData, SimError> {
        let stream_out = shard_plan.stream_out;
        let is_take = exec.take_which.is_some();
        let record_first_space = !shard_plan.disjoint && !is_take;
        let forks: Vec<Instruments> = shard_plan
            .ranges
            .iter()
            .map(|_| {
                instruments
                    .fork_shard(|name, _| shard_plan.log_fills.get(name).copied().unwrap_or(false))
            })
            .collect();

        type ShardOut = (OutAcc, BTreeMap<Vec<u64>, Vec<u64>>, Instruments);
        let worker_out: Vec<Result<ShardOut, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_plan
                .ranges
                .iter()
                .zip(forks)
                .map(|(&(lo, hi), mut si)| {
                    scope.spawn(move || {
                        // Panic isolation: a panicking shard must not tear
                        // down the evaluation — it converts to a structured
                        // error and the caller retries sequentially.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            move || -> Result<ShardOut, SimError> {
                                if let Err(m) = teaal_core::failpoint::hit("engine.shard") {
                                    return Err(SimError::Fibertree(m));
                                }
                                let shard_exec = Exec {
                                    top_bounds: Some((lo, hi)),
                                    record_first_space,
                                    ..exec.clone()
                                };
                                let mut st = State {
                                    nodes: shard_exec
                                        .access_tensor
                                        .iter()
                                        .map(|&ti| Some(tensors[ti].data().root_view()))
                                        .collect(),
                                    binds: Vec::new(),
                                    space: Vec::new(),
                                    out: if stream_out {
                                        OutAcc::Stream {
                                            builder: self.output_builder()?,
                                            pending: None,
                                        }
                                    } else {
                                        OutAcc::Map(BTreeMap::new())
                                    },
                                    first_space: BTreeMap::new(),
                                };
                                shard_exec.level(0, &mut st, &mut si)?;
                                Ok((st.out, st.first_space, si))
                            },
                        ))
                        .unwrap_or_else(|payload| {
                            Err(SimError::WorkerPanic {
                                site: "shard".into(),
                                message: panic_message(&payload),
                            })
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(SimError::WorkerPanic {
                            site: "shard".into(),
                            message: panic_message(&payload),
                        })
                    })
                })
                .collect()
        });

        // Merge, strictly in shard order.
        let top = &self.plan.loop_ranks[0];
        let top_is_space = top.is_space;
        let base_writes = instruments.output.writes;
        let base_updates = instruments.output.updates;
        let mut merged_out: BTreeMap<Vec<u64>, f64> = BTreeMap::new();
        let mut merged_builder = if stream_out {
            Some(self.output_builder()?)
        } else {
            None
        };
        let mut seen_keys: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut top_offset = 0u64;
        for res in worker_out {
            let (out, first_space, mut si) = res?;
            // Space ids carry the top rank's position index, which
            // restarts at zero in every shard: shift by the positions
            // consumed so far.
            if top_is_space && top_offset > 0 {
                si.compute.muls = shift_space_keys(si.compute.muls, top_offset);
                si.compute.adds = shift_space_keys(si.compute.adds, top_offset);
            }
            let shard_visits = si.loop_visits.get(&top.name).copied().unwrap_or(0);
            instruments.absorb_shard(si);
            match out {
                OutAcc::Stream { builder, pending } => {
                    let t = self.finish_stream(builder, pending)?;
                    merged_builder
                        .as_mut()
                        .expect("stream shards merge into a builder")
                        .append_tensor(&t)?;
                }
                OutAcc::Map(map) => {
                    for (k, v) in map {
                        match merged_out.entry(k) {
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(v);
                            }
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                // Take keeps the first (sequentially
                                // earliest) shard's value; reductions fold
                                // shard partials with the exact ⊕.
                                if !is_take {
                                    let folded = self.ops.semiring.add(*e.get(), v);
                                    e.insert(folded);
                                }
                            }
                        }
                    }
                }
            }
            // Overlap fixup: a key first written in an earlier shard
            // makes this shard's local first write a reduction update
            // sequentially — one extra add at the space where it
            // happened.
            for (k, mut space) in first_space {
                if seen_keys.contains(&k) {
                    if top_is_space && top_offset > 0 {
                        if let Some(c0) = space.first_mut() {
                            *c0 += top_offset;
                        }
                    }
                    *instruments.compute.adds.entry(space).or_insert(0) += 1;
                } else {
                    seen_keys.insert(k);
                }
            }
            top_offset += shard_visits;
        }
        if !shard_plan.disjoint {
            // Reconstitute first-write/update splits from the merged key
            // set: sequentially, only one record per key is a write.
            let total_w = instruments.output.writes - base_writes;
            let total_u = instruments.output.updates - base_updates;
            let writes = merged_out.len() as u64;
            instruments.output.writes = base_writes + writes;
            instruments.output.updates = base_updates + (total_w + total_u - writes);
        }

        if let Some(builder) = merged_builder {
            return Ok(TensorData::Compressed(builder.finish()));
        }
        // Buffered shards assemble through the shared drain, exactly like
        // a sequential run over the merged accumulator.
        if compressed_output {
            self.build_output_as::<CompressedTensor>(merged_out, instruments)
                .map(TensorData::Compressed)
        } else {
            self.build_output_as::<Tensor>(merged_out, instruments)
                .map(TensorData::Owned)
        }
    }

    /// The content-address of one input's transform chain, or `None` when
    /// the result is not content-determined (a follower step whose leader
    /// boundaries are neither published by this chain nor already in
    /// `outer` — the uncached run then reports the identical
    /// [`SimError::MissingBoundaries`]).
    ///
    /// The key covers everything [`Engine::run_transform_chain`] reads:
    /// the input's content hash, the plan's initial order and steps, the
    /// online-swizzle flag (it decides merge recording), the native/owned
    /// path choice (it decides the result representation), and — for
    /// followers resolved from `outer` — the exact boundary lists.
    fn transform_key(
        &self,
        input: &TensorData,
        tp: &TensorPlan,
        needs_swizzle: bool,
        native: bool,
        outer: &BoundaryCache,
    ) -> Option<u64> {
        let mut h = Fnv1a::new();
        h.write_str("transform-chain-v1");
        h.write_u64(input.content_hash());
        h.write_str(&tp.tensor);
        h.write_u64(tp.initial_order.len() as u64);
        for r in &tp.initial_order {
            h.write_str(r);
        }
        h.write_u64(u64::from(needs_swizzle));
        h.write_u64(u64::from(tp.online_swizzle));
        h.write_u64(u64::from(native));
        // Ranks this chain's own leader steps publish; follower steps
        // reading them are content-determined.
        let mut local_leaders: BTreeSet<(&str, &str)> = BTreeSet::new();
        for step in &tp.steps {
            h.write_str(&format!("{step:?}"));
            match step {
                PlanStep::SplitOccLeader { rank, .. } => {
                    local_leaders.insert((rank.as_str(), tp.tensor.as_str()));
                }
                PlanStep::SplitOccFollower { rank, leader, .. }
                    if !local_leaders.contains(&(rank.as_str(), leader.as_str())) =>
                {
                    let bounds = outer.get(&(rank.clone(), leader.clone()))?;
                    h.write_str(&format!("{bounds:?}"));
                }
                _ => {}
            }
        }
        Some(h.finish())
    }

    /// Runs one input's whole transform chain, recording its side effects
    /// — merge groups and leader boundary publications — as data in the
    /// returned [`TransformedView`] so a cache hit can replay them
    /// ([`apply_view_effects`]) instead of re-running the chain. Counts
    /// one real execution in [`telemetry::transform_exec_count`].
    fn run_transform_chain(
        &self,
        input: &TensorData,
        tp: &TensorPlan,
        needs_swizzle: bool,
        native: bool,
        outer: &BoundaryCache,
    ) -> Result<TransformedView, SimError> {
        teaal_core::failpoint::hit("transform.swizzle").map_err(SimError::Fibertree)?;
        telemetry::note_transform_exec();
        let mut merges: Vec<MergeGroup> = Vec::new();
        let mut published: Vec<BoundaryRecord> = Vec::new();
        // Followers see outer leaders plus any this chain publishes.
        let mut local: BoundaryCache = outer.clone();
        let tensor = if native {
            let TensorData::Compressed(c) = input else {
                unreachable!("native path implies compressed input");
            };
            let ct = self.transform_compressed(
                c,
                tp,
                needs_swizzle,
                &mut merges,
                &mut local,
                &mut published,
            )?;
            TensorData::Compressed(ct)
        } else {
            let mut t = input.to_tensor();
            if needs_swizzle {
                let want: Vec<&str> = tp.initial_order.iter().map(String::as_str).collect();
                t = t.swizzle(&want)?;
            }
            for step in &tp.steps {
                t = self.apply_step(
                    t,
                    tp.online_swizzle,
                    step,
                    &mut merges,
                    &mut local,
                    &mut published,
                )?;
            }
            TensorData::Owned(t)
        };
        Ok(TransformedView {
            tensor,
            merges: merges
                .into_iter()
                .map(|g| MergeRecord {
                    tensor: g.tensor,
                    elems: g.elems,
                    ways: g.ways,
                })
                .collect(),
            boundaries: published,
        })
    }

    /// Applies a compressed input's transform pipeline entirely on CSF
    /// arrays. [`compressed_pipeline_supported`] must have approved the
    /// plan; failures here are real errors, never silent fallbacks.
    fn transform_compressed(
        &self,
        input: &CompressedTensor,
        tp: &TensorPlan,
        needs_swizzle: bool,
        merges: &mut Vec<MergeGroup>,
        boundaries: &mut BoundaryCache,
        published: &mut Vec<BoundaryRecord>,
    ) -> Result<CompressedTensor, SimError> {
        let mut cur: std::borrow::Cow<'_, CompressedTensor> = if needs_swizzle {
            let want: Vec<&str> = tp.initial_order.iter().map(String::as_str).collect();
            std::borrow::Cow::Owned(input.swizzle(&want)?)
        } else {
            std::borrow::Cow::Borrowed(input)
        };
        for step in &tp.steps {
            let next = match step {
                PlanStep::Swizzle(order) => {
                    if tp.online_swizzle {
                        record_merge_groups_view(
                            cur.name(),
                            cur.rank_ids(),
                            FiberView::of_compressed(&cur),
                            order,
                            merges,
                        );
                    }
                    let o: Vec<&str> = order.iter().map(String::as_str).collect();
                    cur.swizzle(&o)?
                }
                PlanStep::Flatten { upper, new_name } => cur.flatten_rank(upper, new_name)?,
                PlanStep::SplitShape {
                    rank,
                    size,
                    upper,
                    lower,
                } => cur.partition_rank(rank, SplitKind::UniformShape(*size), upper, lower)?,
                PlanStep::SplitOccLeader {
                    rank,
                    size,
                    upper,
                    lower,
                } => {
                    let bounds = cur.occupancy_boundaries_by_path(rank, *size)?;
                    published.push(BoundaryRecord {
                        rank: rank.clone(),
                        leader: cur.name().to_string(),
                        bounds: bounds.clone(),
                    });
                    boundaries.insert((rank.clone(), cur.name().to_string()), bounds);
                    cur.partition_rank(rank, SplitKind::UniformOccupancy(*size), upper, lower)?
                }
                PlanStep::SplitOccFollower {
                    rank,
                    leader,
                    size: _,
                    upper,
                    lower,
                } => {
                    let bounds = boundaries
                        .get(&(rank.clone(), leader.clone()))
                        .cloned()
                        .ok_or_else(|| SimError::MissingBoundaries {
                            rank: rank.clone(),
                            leader: leader.clone(),
                        })?;
                    cur.partition_rank(rank, SplitKind::BoundariesByPath(bounds), upper, lower)?
                }
            };
            cur = std::borrow::Cow::Owned(next);
        }
        Ok(cur.into_owned())
    }

    fn apply_step(
        &self,
        t: Tensor,
        online: bool,
        step: &PlanStep,
        merges: &mut Vec<MergeGroup>,
        boundaries: &mut BoundaryCache,
        published: &mut Vec<BoundaryRecord>,
    ) -> Result<Tensor, SimError> {
        Ok(match step {
            PlanStep::Swizzle(order) => {
                if online {
                    record_merge_groups(&t, order, merges);
                }
                let o: Vec<&str> = order.iter().map(String::as_str).collect();
                t.swizzle(&o)?
            }
            PlanStep::Flatten { upper, new_name } => t.flatten_rank(upper, new_name)?,
            PlanStep::SplitShape {
                rank,
                size,
                upper,
                lower,
            } => t.partition_rank(rank, SplitKind::UniformShape(*size), upper, lower)?,
            PlanStep::SplitOccLeader {
                rank,
                size,
                upper,
                lower,
            } => {
                let bounds = t.occupancy_boundaries_by_path(rank, *size)?;
                published.push(BoundaryRecord {
                    rank: rank.clone(),
                    leader: t.name().to_string(),
                    bounds: bounds.clone(),
                });
                boundaries.insert((rank.clone(), t.name().to_string()), bounds);
                t.partition_rank(rank, SplitKind::UniformOccupancy(*size), upper, lower)?
            }
            PlanStep::SplitOccFollower {
                rank,
                leader,
                size: _,
                upper,
                lower,
            } => {
                let bounds = boundaries
                    .get(&(rank.clone(), leader.clone()))
                    .cloned()
                    .ok_or_else(|| SimError::MissingBoundaries {
                        rank: rank.clone(),
                        leader: leader.clone(),
                    })?;
                t.partition_rank(rank, SplitKind::BoundariesByPath(bounds), upper, lower)?
            }
        })
    }

    /// Assembles the output through one drain shared by both
    /// representations: filter semiring zeros, optionally permute to
    /// production order, build via the sink, record online-swizzle merge
    /// groups, and swizzle back to the target order. Owned and compressed
    /// outputs therefore stay in lockstep by construction — the
    /// bit-identical-instruments guarantee cannot drift between two
    /// copies of this logic.
    fn build_output_as<S: OutputSink>(
        &self,
        acc: BTreeMap<Vec<u64>, f64>,
        instruments: &mut Instruments,
    ) -> Result<S, SimError> {
        let out_plan = &self.plan.output;
        let target: Vec<String> = out_plan.target_order.clone();
        let shapes: Vec<Shape> = target
            .iter()
            .map(|r| Shape::Interval(self.rank_extents.get(r).copied().unwrap_or(u64::MAX / 2)))
            .collect();
        let zero = self.ops.semiring.zero();
        let filtered = acc.into_iter().filter(|(_, v)| *v != zero);

        if out_plan.online_swizzle {
            // Build in production order first so the merge fan-in reflects
            // how the hardware sees the data, then swizzle.
            let produced = &out_plan.produced_order;
            let perm: Vec<usize> = produced
                .iter()
                .map(|r| {
                    target
                        .iter()
                        .position(|t| t == r)
                        .expect("produced ⊆ target")
                })
                .collect();
            let mut prod_entries: Vec<(Vec<u64>, f64)> = filtered
                .map(|(k, v)| (perm.iter().map(|&i| k[i]).collect(), v))
                .collect();
            prod_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let prod_shapes: Vec<Shape> = perm.iter().map(|&i| shapes[i].clone()).collect();
            let prod = S::build(
                &out_plan.tensor,
                produced.clone(),
                prod_shapes,
                prod_entries,
            )?;
            prod.record_merges(&target, &mut instruments.merges);
            let o: Vec<&str> = target.iter().map(String::as_str).collect();
            return prod.swizzled(&o);
        }

        S::build(&out_plan.tensor, target, shapes, filtered.collect())
    }
}

/// An output representation the engine can drain its accumulator into.
/// The sink sees sorted, zero-filtered point entries; both
/// implementations must stay content-equivalent (pinned by the
/// `owned_vs_compressed` and `compressed_native` suites).
trait OutputSink: Sized {
    fn build(
        name: &str,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, SimError>;
    fn record_merges(&self, new_order: &[String], merges: &mut Vec<MergeGroup>);
    fn swizzled(&self, order: &[&str]) -> Result<Self, SimError>;
}

impl OutputSink for Tensor {
    fn build(
        name: &str,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, SimError> {
        let coords: Vec<(Vec<Coord>, f64)> = entries
            .into_iter()
            .map(|(k, v)| (k.into_iter().map(Coord::Point).collect(), v))
            .collect();
        Ok(from_coord_entries(name, rank_ids, rank_shapes, coords))
    }

    fn record_merges(&self, new_order: &[String], merges: &mut Vec<MergeGroup>) {
        record_merge_groups(self, new_order, merges);
    }

    fn swizzled(&self, order: &[&str]) -> Result<Self, SimError> {
        Ok(self.swizzle(order)?)
    }
}

impl OutputSink for CompressedTensor {
    fn build(
        name: &str,
        rank_ids: Vec<String>,
        rank_shapes: Vec<Shape>,
        entries: Vec<(Vec<u64>, f64)>,
    ) -> Result<Self, SimError> {
        let mut b = CompressedBuilder::new(name, rank_ids, rank_shapes)?;
        for (k, v) in entries {
            b.push_point(&k, v)?;
        }
        Ok(b.finish())
    }

    fn record_merges(&self, new_order: &[String], merges: &mut Vec<MergeGroup>) {
        record_merge_groups_view(
            self.name(),
            self.rank_ids(),
            FiberView::of_compressed(self),
            new_order,
            merges,
        );
    }

    fn swizzled(&self, order: &[&str]) -> Result<Self, SimError> {
        Ok(self.swizzle(order)?)
    }
}

/// Whether a compressed input's whole transform pipeline is representable
/// in CSF storage, decided before any step runs. The only structural
/// limit is coordinate depth: a flatten whose operands would fuse into
/// more than a pair needs the owned path. Steps that would *error* the
/// same way on both paths (unknown ranks, shape-splitting a pair rank)
/// count as supported — the compressed path reports the identical
/// failure instead of quietly decompressing.
fn compressed_pipeline_supported(c: &CompressedTensor, tp: &TensorPlan) -> bool {
    // Track (rank, coordinate arity) through the pipeline. Steps run
    // *after* the offline swizzle to the plan's initial order, and
    // flatten pairs adjacent ranks, so the simulation must lay ranks out
    // in `tp.initial_order` — not storage order. A bad initial order
    // errors identically on both paths, so it counts as supported.
    if tp.initial_order.len() != c.rank_ids().len() {
        return true;
    }
    let mut ranks: Vec<(String, usize)> = Vec::with_capacity(tp.initial_order.len());
    for r in &tp.initial_order {
        let Some(i) = c.rank_ids().iter().position(|n| n == r) else {
            return true; // both paths reject the permutation
        };
        let arity = match &c.rank_shapes()[i] {
            teaal_fibertree::Shape::Interval(_) => 1,
            teaal_fibertree::Shape::Tuple(cs) => cs.len(),
        };
        ranks.push((r.clone(), arity));
    }
    if ranks.iter().any(|(_, a)| *a > 2) {
        return false;
    }
    for step in &tp.steps {
        match step {
            PlanStep::Swizzle(order) => {
                let mut next = Vec::with_capacity(ranks.len());
                for r in order {
                    match ranks.iter().find(|(n, _)| n == r) {
                        Some(pair) => next.push(pair.clone()),
                        None => return true, // both paths reject the permutation
                    }
                }
                ranks = next;
            }
            PlanStep::Flatten { upper, new_name } => {
                let Some(i) = ranks.iter().position(|(n, _)| n == upper) else {
                    return true; // both paths report the unknown rank
                };
                if i + 1 >= ranks.len() {
                    return true; // both paths reject flattening the bottom rank
                }
                let fused = ranks[i].1 + ranks[i + 1].1;
                if fused > 2 {
                    return false; // owned path required: deeper than pairs
                }
                ranks.splice(i..=i + 1, [(new_name.clone(), fused)]);
            }
            PlanStep::SplitShape {
                rank, upper, lower, ..
            }
            | PlanStep::SplitOccLeader {
                rank, upper, lower, ..
            }
            | PlanStep::SplitOccFollower {
                rank, upper, lower, ..
            } => {
                let Some(i) = ranks.iter().position(|(n, _)| n == rank) else {
                    return true; // both paths report the unknown rank
                };
                let arity = ranks[i].1;
                ranks.splice(i..=i, [(upper.clone(), arity), (lower.clone(), arity)]);
            }
        }
    }
    true
}

/// FNV-1a over the output point's coordinate words.
///
/// The output channel deduplicates partial-output drains by key hash;
/// `DefaultHasher`'s algorithm is explicitly unspecified and has changed
/// across Rust releases, so instrument reports hashed with it were not
/// reproducible across toolchains. FNV-1a is pinned by a regression test.
fn fnv1a_hash(words: &[u64]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET_BASIS;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Shifts the leading (top space rank) component of every space id by
/// `offset`: shard-local top positions restart at zero, and the merge
/// renumbers them into the sequential run's global position space.
fn shift_space_keys(m: BTreeMap<Vec<u64>, u64>, offset: u64) -> BTreeMap<Vec<u64>, u64> {
    m.into_iter()
        .map(|(mut k, v)| {
            if let Some(c0) = k.first_mut() {
                *c0 += offset;
            }
            (k, v)
        })
        .collect()
}

/// Replays a transformed view's recorded side effects into this
/// execution's instruments and boundary cache — the step that makes a
/// cache hit observationally identical to running the chain.
fn apply_view_effects(
    view: &TransformedView,
    instruments: &mut Instruments,
    boundaries: &mut BoundaryCache,
) {
    for m in &view.merges {
        instruments.merges.push(MergeGroup {
            tensor: m.tensor.clone(),
            elems: m.elems,
            ways: m.ways,
        });
    }
    for b in &view.boundaries {
        boundaries.insert((b.rank.clone(), b.leader.clone()), b.bounds.clone());
    }
}

/// Records the merge work of reordering an owned tensor into `new_order`.
fn record_merge_groups(t: &Tensor, new_order: &[String], merges: &mut Vec<MergeGroup>) {
    record_merge_groups_view(
        t.name(),
        t.rank_ids(),
        t.root_fiber().map(FiberView::Owned),
        new_order,
        merges,
    );
}

/// Records the merge work of reordering a tensor (in either
/// representation, via its root cursor) into `new_order`: one group per
/// fiber at the common-prefix depth, with fan-in equal to that fiber's
/// occupancy (the number of sorted runs the merger combines).
fn record_merge_groups_view(
    name: &str,
    rank_ids: &[String],
    root: Option<FiberView<'_>>,
    new_order: &[String],
    merges: &mut Vec<MergeGroup>,
) {
    let prefix = rank_ids
        .iter()
        .zip(new_order)
        .take_while(|(a, b)| a == b)
        .count();
    if prefix >= rank_ids.len() {
        return;
    }
    let Some(root) = root else { return };
    fn walk(
        f: FiberView<'_>,
        depth: usize,
        target: usize,
        merges: &mut Vec<MergeGroup>,
        name: &str,
    ) {
        if depth == target {
            let elems = f.leaf_count() as u64;
            let ways = f.occupancy() as u64;
            if elems > 0 && ways > 1 {
                merges.push(MergeGroup {
                    tensor: name.to_string(),
                    elems,
                    ways,
                });
            }
            return;
        }
        for pos in 0..f.occupancy() {
            if let PayloadView::Fiber(child) = f.payload_at(pos) {
                walk(child, depth + 1, target, merges, name);
            }
        }
    }
    walk(root, 0, prefix, merges, name);
}

impl<'e, 'p> Exec<'e, 'p> {
    fn level(
        &self,
        li: usize,
        state: &mut State<'_>,
        inst: &mut Instruments,
    ) -> Result<(), SimError> {
        let plan = self.engine.plan;
        if li == plan.loop_ranks.len() {
            return self.leaf(state, inst);
        }
        let lr = &plan.loop_ranks[li];
        // Shard bounds apply to the top level only: streams start at the
        // first in-range coordinate (absolute positions, so charge
        // accounting partitions the sequential run's) and stop, uncharged,
        // at the first coordinate past the range.
        let bound = if li == 0 { self.top_bounds } else { None };

        // Identify drivers (accesses co-iterating here with live fibers).
        let mut driver_idx: Vec<usize> = Vec::new();
        for (ai, roles) in plan.access_roles.iter().enumerate() {
            if roles.roles[li].contains(&Descent::CoIterate) {
                driver_idx.push(ai);
            }
        }

        // Open the iteration stream for this level.
        let live: Vec<(usize, FiberView<'_>)> = driver_idx
            .iter()
            .filter_map(|&ai| match state.nodes[ai] {
                Some(PayloadView::Fiber(f)) => Some((ai, f)),
                _ => None,
            })
            .collect();
        let mut stream = if driver_idx.is_empty() {
            // Dense iteration over the rank's extent (affine kernels).
            let root = lr
                .binds
                .first()
                .map(|(r, _)| r.clone())
                .unwrap_or_else(|| lr.name.clone());
            let extent = self
                .engine
                .rank_extents
                .get(&root)
                .copied()
                .ok_or(SimError::MissingExtent { rank: root })?;
            match bound {
                Some((lo, hi)) => LevelStream::Dense {
                    next: lo.min(extent),
                    extent: hi.min(extent),
                },
                None => LevelStream::Dense { next: 0, extent },
            }
        } else if self.union_mode {
            if live.is_empty() {
                LevelStream::Empty
            } else {
                let fibers: Vec<FiberView<'_>> = live.iter().map(|(_, f)| *f).collect();
                LevelStream::Union(match bound {
                    Some((lo, hi)) => union_stream_bounded(&fibers, lo, hi),
                    None => union_stream(&fibers),
                })
            }
        } else {
            // Intersection mode: a dead driver kills the whole subtree.
            if live.len() != driver_idx.len() {
                return Ok(());
            }
            let fibers: Vec<FiberView<'_>> = live.iter().map(|(_, f)| *f).collect();
            LevelStream::Intersect(match bound {
                Some((lo, hi)) => intersect_stream_bounded(&fibers, self.engine.policy, lo, hi),
                None => intersect_stream(&fibers, self.engine.policy),
            })
        };

        let binds_depth = state.binds.len();
        let mut visits = 0u64;
        let mut pi = 0usize;
        loop {
            // Pull the next coordinate, normalizing positions to one
            // `Option<usize>` per driver (dead union drivers stay `None`).
            let item = match &mut stream {
                LevelStream::Dense { next, extent } => {
                    if next < extent {
                        let c = Coord::Point(*next);
                        *next += 1;
                        Some((c, Vec::new()))
                    } else {
                        None
                    }
                }
                LevelStream::Union(u) => u.next().map(|(c, pos)| {
                    let mut full = Vec::with_capacity(driver_idx.len());
                    let mut lp = 0usize;
                    for &ai in &driver_idx {
                        if live.iter().any(|(lai, _)| *lai == ai) {
                            full.push(pos[lp]);
                            lp += 1;
                        } else {
                            full.push(None);
                        }
                    }
                    (c, full)
                }),
                LevelStream::Intersect(s) => s
                    .next()
                    .map(|(c, pos)| (c, pos.into_iter().map(Some).collect())),
                LevelStream::Empty => None,
            };
            let Some((coord, positions)) = item else {
                break;
            };
            visits += 1;
            inst.rank_advanced(&lr.name);
            // One engine step per loop-rank visit; the token amortizes
            // its own deadline polling, so this is one relaxed
            // fetch_add + compare on the hot path.
            if let Some(token) = &self.engine.cancel {
                token.charge_steps(1)?;
            }

            // Bind loop variables (needed by affine descents below).
            for (root, comp) in &lr.binds {
                let comps = coord.components();
                let Some(v) = comps.get(*comp).and_then(Coord::as_point) else {
                    continue;
                };
                state.binds.push((root.clone(), v));
            }

            let saved_nodes = state.nodes.clone();
            let mut dead_product = false;

            // Drivers descend.
            for (di, &ai) in driver_idx.iter().enumerate() {
                match positions.get(di).copied().flatten() {
                    Some(p) => {
                        let (_, fiber) = live
                            .iter()
                            .find(|(lai, _)| *lai == ai)
                            .expect("driver with a position is live");
                        let pv = fiber.payload_at(p);
                        self.touch(ai, li, fiber.payload_key(p), pv, inst);
                        state.nodes[ai] = Some(pv);
                    }
                    None => {
                        state.nodes[ai] = None;
                        if !self.union_mode {
                            dead_product = true;
                        }
                    }
                }
            }

            // Non-driver descents: projections and affine lookups.
            if !dead_product {
                for (ai, roles) in plan.access_roles.iter().enumerate() {
                    for d in &roles.roles[li] {
                        match d {
                            Descent::CoIterate => {}
                            Descent::Project { component } => {
                                let next = match state.nodes[ai] {
                                    Some(PayloadView::Fiber(f)) => {
                                        let comps = coord.components();
                                        let key = comps
                                            .get(*component)
                                            .cloned()
                                            .unwrap_or_else(|| coord.clone());
                                        match f.position(&key) {
                                            Some(p) => {
                                                let pv = f.payload_at(p);
                                                self.touch(ai, li, f.payload_key(p), pv, inst);
                                                Some(pv)
                                            }
                                            None => None,
                                        }
                                    }
                                    _ => None,
                                };
                                state.nodes[ai] = next;
                                if next.is_none() && !self.union_mode {
                                    dead_product = true;
                                }
                            }
                            Descent::Affine { index_pos } => {
                                let access = &plan.equation.rhs.accesses()[ai].clone();
                                let ix = &access.indices[*index_pos];
                                let val = ix.eval(|v| {
                                    let upper = v.to_uppercase();
                                    state
                                        .binds
                                        .iter()
                                        .rev()
                                        .find(|(r, _)| *r == upper)
                                        .map(|(_, x)| *x as i64)
                                });
                                let next = match (state.nodes[ai], val) {
                                    (Some(PayloadView::Fiber(f)), Some(c)) => {
                                        match f.position(&Coord::Point(c)) {
                                            Some(p) => {
                                                let pv = f.payload_at(p);
                                                self.touch(ai, li, f.payload_key(p), pv, inst);
                                                Some(pv)
                                            }
                                            None => None,
                                        }
                                    }
                                    _ => None,
                                };
                                state.nodes[ai] = next;
                                if next.is_none() && !self.union_mode {
                                    dead_product = true;
                                }
                            }
                        }
                        if dead_product {
                            break;
                        }
                    }
                    if dead_product {
                        break;
                    }
                }
            }

            let all_dead = state.nodes.iter().all(Option::is_none);
            if !dead_product && !all_dead {
                if lr.is_space {
                    state.space.push(pi as u64);
                }
                self.level(li + 1, state, inst)?;
                if lr.is_space {
                    state.space.pop();
                }
            }

            state.nodes = saved_nodes;
            state.binds.truncate(binds_depth);
            pi += 1;
        }

        *inst.loop_visits.entry(lr.name.clone()).or_insert(0) += visits;
        // Intersection-unit work, now that the stream is drained. A single
        // live operand co-iterates without an intersection unit.
        match &stream {
            LevelStream::Union(u) => {
                *inst.intersect_by_rank.entry(lr.name.clone()).or_insert(0) += if live.len() > 1 {
                    u.stats().comparisons
                } else {
                    0
                };
            }
            LevelStream::Intersect(s) if live.len() > 1 => {
                *inst.intersect_by_rank.entry(lr.name.clone()).or_insert(0) +=
                    s.stats().comparisons;
            }
            _ => {}
        }
        Ok(())
    }

    fn touch(
        &self,
        ai: usize,
        li: usize,
        key: usize,
        payload: PayloadView<'_>,
        inst: &mut Instruments,
    ) {
        let tensor = &self.engine.plan.tensor_plans[self.access_tensor[ai]].tensor;
        let rank = &self.access_rank_names[ai][li];
        if let Some(ch) = inst.tensors.get_mut(tensor) {
            ch.touch(rank, key, Some(payload));
        }
    }

    fn leaf(&self, state: &mut State<'_>, inst: &mut Instruments) -> Result<(), SimError> {
        let plan = self.engine.plan;
        let ops = &self.engine.ops;
        let zero = ops.semiring.zero();

        let scalar = |n: &Option<PayloadView<'_>>| -> Option<f64> {
            match n {
                Some(PayloadView::Val(v)) => Some(*v),
                _ => None,
            }
        };

        let (value, muls, term_adds) = match &plan.equation.rhs {
            Rhs::Take { args: _, which } => {
                if state.nodes.iter().any(Option::is_none) {
                    return Ok(());
                }
                let w = self.take_which.unwrap_or(*which);
                match scalar(&state.nodes[w]) {
                    Some(v) => (v, 0u64, 0u64),
                    None => return Ok(()),
                }
            }
            Rhs::SumOfProducts(terms) => {
                let mut acc = zero;
                let mut present_terms = 0u64;
                let mut muls = 0u64;
                let mut ai = 0usize;
                for (sign, product) in terms {
                    let mut tv = ops.semiring.one();
                    let mut present = true;
                    let mut factors = 0u64;
                    for _ in &product.factors {
                        match scalar(&state.nodes[ai]) {
                            Some(v) => {
                                tv = ops.semiring.mul(tv, v);
                                factors += 1;
                            }
                            None => present = false,
                        }
                        ai += 1;
                    }
                    if present {
                        muls += factors.saturating_sub(1);
                        present_terms += 1;
                        acc = match sign {
                            teaal_core::einsum::Sign::Plus => ops.semiring.add(acc, tv),
                            teaal_core::einsum::Sign::Minus => (ops.sub)(acc, tv),
                        };
                    } else if matches!(sign, teaal_core::einsum::Sign::Minus) && !self.union_mode {
                        return Ok(());
                    }
                }
                if present_terms == 0 || ops.is_zero(acc) {
                    return Ok(());
                }
                // Combining k present terms costs k−1 additions (the apply
                // operations of vertex-centric cascades).
                (acc, muls, present_terms - 1)
            }
        };

        // Output key in target rank order.
        let mut key = Vec::with_capacity(plan.output.target_order.len());
        for r in &plan.output.target_order {
            match state.binds.iter().rev().find(|(b, _)| b == r) {
                Some((_, v)) => key.push(*v),
                None => return Ok(()), // unbound output rank: outside iteration
            }
        }

        let key_hash = fnv1a_hash(&key);

        let is_take = self.take_which.is_some();
        let mut adds = term_adds;
        match &mut state.out {
            OutAcc::Map(map) => match map.get_mut(&key) {
                Some(existing) => {
                    if !is_take {
                        *existing = ops.semiring.add(*existing, value);
                        adds += 1;
                    }
                    inst.output.record(key_hash, false);
                }
                None => {
                    if let Some(token) = &self.engine.cancel {
                        token.charge_outputs(1)?;
                    }
                    if self.record_first_space {
                        state.first_space.insert(key.clone(), state.space.clone());
                    }
                    map.insert(key, value);
                    inst.output.record(key_hash, true);
                }
            },
            OutAcc::Stream { builder, pending } => match pending {
                // Concordance makes equal keys adjacent: reduce in place
                // while the key repeats, push the finished entry when it
                // changes.
                Some((pk, pv)) if *pk == key => {
                    if !is_take {
                        *pv = ops.semiring.add(*pv, value);
                        adds += 1;
                    }
                    inst.output.record(key_hash, false);
                }
                _ => {
                    if let Some(token) = &self.engine.cancel {
                        token.charge_outputs(1)?;
                    }
                    if let Some((pk, pv)) = pending.take() {
                        if pv != zero {
                            builder.push_point(&pk, pv)?;
                        }
                    }
                    *pending = Some((key, value));
                    inst.output.record(key_hash, true);
                }
            },
        }

        let space_id = state.space.clone();
        if muls > 0 {
            *inst.compute.muls.entry(space_id.clone()).or_insert(0) += muls;
        }
        if adds > 0 {
            *inst.compute.adds.entry(space_id).or_insert(0) += adds;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned FNV-1a values: these must never change, or instrument
    /// reports stop being comparable across toolchains and releases.
    #[test]
    fn fnv1a_hash_is_pinned() {
        // Offset basis: hashing nothing.
        assert_eq!(fnv1a_hash(&[]), 0xcbf2_9ce4_8422_2325);
        // Reference values computed from the FNV-1a definition over the
        // little-endian byte expansion of each word.
        assert_eq!(fnv1a_hash(&[0]), 0xa8c7_f832_281a_39c5);
        assert_eq!(fnv1a_hash(&[1, 2, 3]), 0xda2b_fb22_5e0d_1f05);
        assert_eq!(fnv1a_hash(&[u64::MAX]), 0x8cf5_1a8b_fca3_883d);
    }

    #[test]
    fn fnv1a_hash_distinguishes_order_and_length() {
        assert_ne!(fnv1a_hash(&[1, 2]), fnv1a_hash(&[2, 1]));
        assert_ne!(fnv1a_hash(&[1]), fnv1a_hash(&[1, 0]));
    }

    fn plan_for(initial_order: &[&str], steps: Vec<PlanStep>) -> TensorPlan {
        TensorPlan {
            tensor: "T".into(),
            initial_order: initial_order.iter().map(|s| s.to_string()).collect(),
            steps,
            working_order: Vec::new(),
            online_swizzle: false,
        }
    }

    /// Regression: the support check must simulate the pipeline in the
    /// plan's *initial* order (the offline swizzle runs before the
    /// steps), not the input's storage order — flatten adjacency depends
    /// on it.
    #[test]
    fn pipeline_support_simulates_in_initial_order() {
        // T arrives as [A, CB] where CB is a pair rank.
        let owned = teaal_fibertree::TensorBuilder::new("T", &["A", "C", "B"], &[4, 4, 4])
            .entry(&[0, 1, 2], 1.0)
            .entry(&[3, 0, 1], 2.0)
            .build()
            .unwrap()
            .flatten_rank("C", "CB")
            .unwrap();
        let c = CompressedTensor::from_tensor(&owned).unwrap();

        // Plan swizzles to [CB, A] and then flattens CB with A — arity 3,
        // owned path required. In storage order [A, CB] the flatten
        // target looks like the bottom rank, which used to fool the check
        // into approving a pipeline the compressed path must reject.
        let flatten = PlanStep::Flatten {
            upper: "CB".into(),
            new_name: "CBA".into(),
        };
        assert!(!compressed_pipeline_supported(
            &c,
            &plan_for(&["CB", "A"], vec![flatten.clone()])
        ));
        // Same flatten without a swizzle: fusing A with CB is equally
        // unsupported.
        let flatten_a = PlanStep::Flatten {
            upper: "A".into(),
            new_name: "ACB".into(),
        };
        assert!(!compressed_pipeline_supported(
            &c,
            &plan_for(&["A", "CB"], vec![flatten_a])
        ));
        // Point-only pipelines behind a swizzle stay supported, and a
        // flatten of the true bottom rank is "supported" because both
        // paths report the same error.
        let split = PlanStep::SplitShape {
            rank: "A".into(),
            size: 2,
            upper: "A1".into(),
            lower: "A0".into(),
        };
        assert!(compressed_pipeline_supported(
            &c,
            &plan_for(&["CB", "A"], vec![split])
        ));
        assert!(compressed_pipeline_supported(
            &c,
            &plan_for(&["A", "CB"], vec![flatten])
        ));
    }
}
