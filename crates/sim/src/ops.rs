//! Operator tables: how an Einsum's syntactic `*`, `+`, and `-` map to
//! concrete arithmetic.
//!
//! Tensor algebra uses the arithmetic semiring; vertex-centric graph
//! kernels redefine the operators (paper §8, Fig. 12): SSSP maps `×` to
//! addition and `+` to minimum, and uses `-` as change detection when
//! building the update mask `M = P1 - P0`.

use teaal_fibertree::Semiring;

/// The operator table used when evaluating a cascade.
#[derive(Clone, Copy, Debug)]
pub struct OpTable {
    /// The `(⊕, ⊗)` pair with identities.
    pub semiring: Semiring,
    /// Interpretation of the syntactic `-` operator.
    pub sub: fn(f64, f64) -> f64,
    /// Whether the reduction `⊕` is exact (associative and commutative)
    /// on `f64`, so a cross-shard fold in any grouping yields the same
    /// bits as the sequential reduction. True for `min`, false for
    /// floating-point `+`, whose rounding depends on association order.
    pub exact_add: bool,
}

impl OpTable {
    /// Standard tensor algebra: `a - b` is arithmetic subtraction.
    pub fn arithmetic() -> Self {
        OpTable {
            semiring: Semiring::arithmetic(),
            sub: |a, b| a - b,
            exact_add: false,
        }
    }

    /// SSSP over the min-plus semiring; `-` detects changed values
    /// (returns the new value when it differs, else the empty value `+∞`).
    pub fn sssp() -> Self {
        OpTable {
            semiring: Semiring::min_plus(),
            sub: |a, b| if a == b { f64::INFINITY } else { a },
            exact_add: true,
        }
    }

    /// BFS: identical algebra to SSSP (all edge weights are 1, so the
    /// min-plus relaxation computes hop counts).
    pub fn bfs() -> Self {
        Self::sssp()
    }

    /// Whether `v` is the empty (implicit) value.
    pub fn is_zero(&self, v: f64) -> bool {
        self.semiring.is_zero(v)
    }
}

impl Default for OpTable {
    fn default() -> Self {
        OpTable::arithmetic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_sub_is_subtraction() {
        let t = OpTable::arithmetic();
        assert_eq!((t.sub)(5.0, 3.0), 2.0);
        assert!(t.is_zero(0.0));
    }

    #[test]
    fn sssp_sub_detects_change() {
        let t = OpTable::sssp();
        assert_eq!((t.sub)(4.0, 4.0), f64::INFINITY); // unchanged → empty
        assert_eq!((t.sub)(3.0, 4.0), 3.0); // changed → new value
        assert!(t.is_zero(f64::INFINITY));
        assert_eq!(t.semiring.mul(2.0, 3.0), 5.0);
        assert_eq!(t.semiring.add(2.0, 3.0), 2.0);
    }
}
