//! # teaal-sim
//!
//! The TeAAL simulator: executes lowered Einsum plans on real sparse
//! tensors with full instrumentation, then derives memory traffic,
//! per-component action counts, bottleneck-analysis execution time, and
//! energy (paper §4.3).
//!
//! The main entry point is [`Simulator`]; see its documentation for a
//! worked example. Evaluation is staged — `SpecSource → ParsedSpec →
//! LoweredPlan → PreparedInputs → SimReport` — with a content-addressed
//! cache boundary at every stage; [`EvalContext`] (see [`pipeline`]) is
//! the shared cache handle.

#![warn(missing_docs)]

pub mod compile;
pub mod counters;
pub mod energy;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod explore;
pub mod limits;
pub mod model;
pub mod ops;
pub mod pipeline;
pub mod report;

pub use compile::CompiledPlan;
pub use counters::{ChannelCfg, Instruments, Lru, MergeGroup, OutputChannel, TensorChannel};
pub use energy::{ActionCounts, EnergyTable};
pub use engine::Engine;
pub use error::SimError;
pub use estimate::{estimate, estimate_data, estimate_with_stats};
pub use explore::{
    explore_fast, explore_fast_with_context, explore_loop_orders, explore_loop_orders_with_context,
    explore_loop_orders_with_threads, Candidate, ExploreConfig, ExploreOutcome, Objective,
};
pub use limits::{BudgetKind, CancelToken, EvalLimits, Progress};
pub use model::{default_threads, Simulator};
pub use ops::OpTable;
pub use pipeline::EvalContext;
pub use report::{BlockStats, EinsumStats, SimReport, TensorTraffic};
