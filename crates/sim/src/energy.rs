//! Per-action energy characterization (Accelergy substitute).
//!
//! The paper uses Accelergy to translate action counts into energy.
//! Accelergy is itself a table-driven estimator, so this module inlines an
//! equivalent table of 45 nm-class per-action energies. All values are
//! overridable for calibration against a published design.

/// Per-action energy costs in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyTable {
    /// DRAM transfer energy per bit.
    pub dram_pj_per_bit: f64,
    /// On-chip buffer access energy per bit.
    pub buffer_pj_per_bit: f64,
    /// One multiply.
    pub mul_pj: f64,
    /// One addition / reduction update.
    pub add_pj: f64,
    /// One intersection-unit coordinate comparison.
    pub intersect_pj: f64,
    /// One merger element-pass (an element moving through one merge
    /// stage).
    pub merge_pj_per_elem: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        // DRAM ≈ 7 pJ/bit (HBM-class); SRAM ≈ 0.08 pJ/bit for tens-of-kB
        // arrays; 64-bit FP multiply ≈ 4 pJ; add ≈ 0.9 pJ; small
        // comparators well under 1 pJ.
        EnergyTable {
            dram_pj_per_bit: 7.0,
            buffer_pj_per_bit: 0.08,
            mul_pj: 4.0,
            add_pj: 0.9,
            intersect_pj: 0.3,
            merge_pj_per_elem: 0.6,
        }
    }
}

/// Action counts aggregated for energy accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ActionCounts {
    /// Bits moved to/from DRAM.
    pub dram_bits: u64,
    /// Bits read or written on-chip.
    pub buffer_bits: u64,
    /// Multiplies.
    pub muls: u64,
    /// Adds.
    pub adds: u64,
    /// Intersection comparisons.
    pub intersections: u64,
    /// Merger element-passes.
    pub merge_elem_passes: u64,
}

impl ActionCounts {
    /// Total energy in joules under `table`.
    pub fn energy_joules(&self, table: &EnergyTable) -> f64 {
        let pj = self.dram_bits as f64 * table.dram_pj_per_bit
            + self.buffer_bits as f64 * table.buffer_pj_per_bit
            + self.muls as f64 * table.mul_pj
            + self.adds as f64 * table.add_pj
            + self.intersections as f64 * table.intersect_pj
            + self.merge_elem_passes as f64 * table.merge_pj_per_elem;
        pj * 1e-12
    }

    /// Adds another set of counts.
    pub fn accumulate(&mut self, other: &ActionCounts) {
        self.dram_bits += other.dram_bits;
        self.buffer_bits += other.buffer_bits;
        self.muls += other.muls;
        self.adds += other.adds;
        self.intersections += other.intersections;
        self.merge_elem_passes += other.merge_elem_passes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_for_memory_bound_kernels() {
        let t = EnergyTable::default();
        let counts = ActionCounts {
            dram_bits: 1_000_000,
            buffer_bits: 1_000_000,
            muls: 1000,
            ..ActionCounts::default()
        };
        let e = counts.energy_joules(&t);
        let dram_only = ActionCounts {
            dram_bits: 1_000_000,
            ..ActionCounts::default()
        }
        .energy_joules(&t);
        assert!(dram_only / e > 0.9);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = ActionCounts {
            muls: 1,
            ..ActionCounts::default()
        };
        a.accumulate(&ActionCounts {
            muls: 2,
            adds: 3,
            ..ActionCounts::default()
        });
        assert_eq!(a.muls, 3);
        assert_eq!(a.adds, 3);
    }

    #[test]
    fn energy_is_linear() {
        let t = EnergyTable::default();
        let one = ActionCounts {
            muls: 1,
            ..ActionCounts::default()
        };
        let ten = ActionCounts {
            muls: 10,
            ..ActionCounts::default()
        };
        let e1 = one.energy_joules(&t);
        let e10 = ten.energy_joules(&t);
        assert!((e10 - 10.0 * e1).abs() < 1e-18);
    }
}
