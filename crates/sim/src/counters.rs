//! Instrumentation: the engine's trace consumers.
//!
//! Rather than materializing full access traces and replaying them (the
//! Python TeAAL flow), the engine streams every access event into
//! [`Instruments`] as it executes. Channels apply the binding semantics on
//! line (buffet epoch dedup, cache replay, eager subtree fills) so that
//! the per-component action counts of paper §4.3 fall out at the end.

use std::collections::{BTreeMap, HashMap};

use teaal_fibertree::{FiberView, PayloadView};

/// LRU cache model with a fixed number of lines (fully associative; caches
/// in the modelled accelerators are small scratchpad-like structures).
#[derive(Clone, Debug, Default)]
pub struct Lru {
    capacity_lines: usize,
    // line id -> last-use stamp
    lines: HashMap<u64, u64>,
    clock: u64,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed (each miss is a line fill).
    pub misses: u64,
}

impl Lru {
    /// Creates a cache with the given line capacity.
    pub fn new(capacity_lines: usize) -> Self {
        Lru {
            capacity_lines: capacity_lines.max(1),
            ..Lru::default()
        }
    }

    /// Accesses a line, recording a hit or a miss (with LRU eviction).
    pub fn access(&mut self, line: u64) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.lines.get_mut(&line) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.lines.len() >= self.capacity_lines {
            if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &s)| s) {
                self.lines.remove(&victim);
            }
        }
        self.lines.insert(line, self.clock);
        false
    }
}

/// Static configuration of one tensor's traffic channel, resolved from the
/// binding specification by the model layer.
#[derive(Clone, Debug, Default)]
pub struct ChannelCfg {
    /// Bits moved per element touch, per working rank — ordered
    /// top-to-bottom (the tensor's working rank order).
    pub rank_bits: Vec<(String, u64)>,
    /// Explicitly managed buffer: data re-fills when this loop rank's
    /// iteration advances (buffet `evict-on`).
    pub evict_on: Option<String>,
    /// Eager binding: touching an element of this rank fills the entire
    /// subtree below it.
    pub eager_rank: Option<String>,
    /// Whether misses/fills count as DRAM traffic.
    pub dram_backed: bool,
    /// Optional cache in front of DRAM: capacity in lines and line size.
    pub cache_lines: Option<usize>,
    /// Cache line size in bits.
    pub line_bits: u64,
}

impl ChannelCfg {
    /// A fully-buffered default: every element is fetched from DRAM once.
    pub fn fully_buffered(rank_bits: Vec<(String, u64)>) -> Self {
        ChannelCfg {
            rank_bits,
            dram_backed: true,
            line_bits: 512,
            ..ChannelCfg::default()
        }
    }

    pub(crate) fn bits_of(&self, rank: &str) -> u64 {
        self.rank_bits
            .iter()
            .find(|(r, _)| r == rank)
            .map(|(_, b)| *b)
            .unwrap_or(96)
    }

    fn rank_pos(&self, rank: &str) -> Option<usize> {
        self.rank_bits.iter().position(|(r, _)| r == rank)
    }
}

/// Per-tensor traffic accounting.
#[derive(Clone, Debug, Default)]
pub struct TensorChannel {
    cfg: ChannelCfg,
    /// Element touches per working rank.
    pub reads_by_rank: BTreeMap<String, u64>,
    /// Bits filled from DRAM.
    pub fill_bits: u64,
    /// Bits read on-chip (buffer-side traffic).
    pub buffer_read_bits: u64,
    /// The cache model, when configured.
    pub cache: Option<Lru>,
    seen: HashMap<usize, u64>,
    epoch: u64,
    next_line: u64,
    line_of: HashMap<usize, u64>,
    line_fill: u64,
    /// When this channel runs inside a shard whose fills must be
    /// deduplicated against other shards (fully-buffered tensors, whose
    /// single epoch spans all shards), every fill event is also logged
    /// here so the merge can keep only each key's first fill in shard
    /// order — exactly the fill the sequential run would charge.
    shard_log: Option<Vec<(usize, u64)>>,
}

impl TensorChannel {
    /// Creates a channel with the given configuration.
    pub fn new(cfg: ChannelCfg) -> Self {
        let cache = cfg.cache_lines.map(Lru::new);
        TensorChannel {
            cfg,
            cache,
            ..TensorChannel::default()
        }
    }

    /// The channel's configuration.
    pub fn cfg(&self) -> &ChannelCfg {
        &self.cfg
    }

    /// Called by the engine when the loop advances on `rank`.
    pub fn rank_advanced(&mut self, rank: &str) {
        if self.cfg.evict_on.as_deref() == Some(rank) {
            self.epoch += 1;
        }
    }

    /// Records an element touch at `rank`. `key` identifies the element
    /// stably (the engine passes [`FiberView::payload_key`]); `payload`
    /// lets eager bindings size the subtree fill and may come from either
    /// tensor representation.
    pub fn touch(&mut self, rank: &str, key: usize, payload: Option<PayloadView<'_>>) {
        *self.reads_by_rank.entry(rank.to_string()).or_insert(0) += 1;
        let bits = self.cfg.bits_of(rank);
        self.buffer_read_bits += bits;

        let eager = self.cfg.eager_rank.as_deref();
        // Under an eager binding, only the eager rank generates fills;
        // deeper touches are on-chip.
        if let Some(er) = eager {
            if rank != er {
                let deeper = self.deeper_than(er, rank);
                if deeper {
                    return;
                }
            }
        }

        if let Some(cache) = &mut self.cache {
            let bits_per_line = self.cfg.line_bits.max(bits);
            let per_line = (bits_per_line / bits.max(1)).max(1);
            let id = match self.line_of.get(&key) {
                Some(&id) => id,
                None => {
                    let id = self.next_line;
                    self.next_line += 1;
                    self.line_of.insert(key, id);
                    id
                }
            };
            let line = id / per_line;
            if !cache.access(line) && self.cfg.dram_backed {
                let fill = match (eager, payload) {
                    (Some(er), Some(p)) if rank == er => self.subtree_bits(er, p),
                    _ => bits_per_line,
                };
                self.fill_bits += fill;
            }
            return;
        }

        // Buffet / default path: first touch per epoch fills from DRAM.
        if self.cfg.dram_backed && self.seen.get(&key) != Some(&self.epoch) {
            self.seen.insert(key, self.epoch);
            let fill = match (eager, payload) {
                (Some(er), Some(p)) if rank == er => self.subtree_bits(er, p),
                _ => bits,
            };
            self.fill_bits += fill;
            self.line_fill += 1;
            if let Some(log) = &mut self.shard_log {
                log.push((key, fill));
            }
        }
    }

    /// Starts a fresh per-shard channel with the same configuration.
    /// `log_fills` enables the fill log for merge-time deduplication
    /// (required when the channel's buffet epoch spans shard boundaries,
    /// i.e. the effective `evict_on` is no loop rank). Channels with a
    /// cache cannot shard — the engine falls back to sequential first.
    pub(crate) fn fork_shard(&self, log_fills: bool) -> TensorChannel {
        debug_assert!(self.cache.is_none(), "cached channels are not shardable");
        let mut ch = TensorChannel::new(self.cfg.clone());
        if log_fills {
            ch.shard_log = Some(Vec::new());
        }
        ch
    }

    /// Folds a drained shard channel into this one (shards absorbed in
    /// shard order). Touch counters are purely additive; fills are
    /// additive when the shard ran without a fill log (per-shard epochs
    /// partition the sequential epochs) and first-fill-wins deduplicated
    /// against `self.seen` otherwise. After absorbing, only the public
    /// counters are meaningful — the internal dedup state is merge
    /// bookkeeping, not a resumable simulation state.
    pub(crate) fn absorb_shard(&mut self, shard: TensorChannel) {
        for (r, n) in shard.reads_by_rank {
            *self.reads_by_rank.entry(r).or_insert(0) += n;
        }
        self.buffer_read_bits += shard.buffer_read_bits;
        match shard.shard_log {
            Some(log) => {
                for (key, bits) in log {
                    if let std::collections::hash_map::Entry::Vacant(e) = self.seen.entry(key) {
                        e.insert(0);
                        self.fill_bits += bits;
                        self.line_fill += 1;
                    }
                }
            }
            None => {
                self.fill_bits += shard.fill_bits;
                self.line_fill += shard.line_fill;
            }
        }
    }

    /// Whether `rank` sits strictly below `eager_rank` in the working
    /// order.
    fn deeper_than(&self, eager_rank: &str, rank: &str) -> bool {
        match (self.cfg.rank_pos(eager_rank), self.cfg.rank_pos(rank)) {
            (Some(e), Some(r)) => r > e,
            _ => false,
        }
    }

    fn subtree_bits(&self, rank: &str, payload: PayloadView<'_>) -> u64 {
        // Sum element bits over the subtree, charging each deeper rank
        // its configured element width (working-order depth).
        fn walk(f: FiberView<'_>, ranks: &[(String, u64)], depth: usize, acc: &mut u64) {
            if depth >= ranks.len() {
                return;
            }
            let bits = ranks[depth].1;
            *acc += bits * f.occupancy() as u64;
            for pos in 0..f.occupancy() {
                if let PayloadView::Fiber(child) = f.payload_at(pos) {
                    walk(child, ranks, depth + 1, acc);
                }
            }
        }
        let start = self.cfg.rank_pos(rank).unwrap_or(0);
        match payload {
            PayloadView::Val(_) => self.cfg.bits_of(rank),
            PayloadView::Fiber(f) => {
                let mut acc = self.cfg.bits_of(rank);
                walk(f, &self.cfg.rank_bits[start..], 1, &mut acc);
                acc
            }
        }
    }

    /// DRAM fill events (element- or line-granular depending on config).
    pub fn fills(&self) -> u64 {
        match &self.cache {
            Some(c) => c.misses,
            None => self.line_fill,
        }
    }
}

/// Output-side accounting: first writes, reduction updates, and partial
/// output drains across reduction epochs.
#[derive(Clone, Debug, Default)]
pub struct OutputChannel {
    /// Bits per output element (leaf coordinate + payload).
    pub elem_bits: u64,
    /// Partial outputs drain when this loop rank advances.
    pub evict_on: Option<String>,
    /// First writes of each output point.
    pub writes: u64,
    /// Reduction updates of existing points.
    pub updates: u64,
    /// Bits drained to DRAM before the final write (partial outputs).
    pub drain_bits: u64,
    /// Bits re-filled from DRAM for revisited partial outputs.
    pub refill_bits: u64,
    epoch: u64,
    last_epoch: HashMap<u64, u64>,
}

impl OutputChannel {
    /// Creates an output channel.
    pub fn new(elem_bits: u64, evict_on: Option<String>) -> Self {
        OutputChannel {
            elem_bits,
            evict_on,
            ..OutputChannel::default()
        }
    }

    /// Called when the loop advances on `rank`.
    pub fn rank_advanced(&mut self, rank: &str) {
        if self.evict_on.as_deref() == Some(rank) {
            self.epoch += 1;
        }
    }

    /// Records a write/update of the output point identified by `key`
    /// (a hash of the output coordinates). `first` marks a fresh point.
    pub fn record(&mut self, key: u64, first: bool) {
        if first {
            self.writes += 1;
        } else {
            self.updates += 1;
        }
        if self.evict_on.is_some() {
            match self.last_epoch.get(&key) {
                Some(&e) if e == self.epoch => {}
                Some(_) => {
                    // Revisited in a later epoch: the partial value was
                    // drained and must return.
                    self.drain_bits += self.elem_bits;
                    self.refill_bits += self.elem_bits;
                }
                None => {}
            }
            self.last_epoch.insert(key, self.epoch);
        }
    }

    /// Starts a fresh per-shard output channel with the same
    /// configuration.
    pub(crate) fn fork_shard(&self) -> OutputChannel {
        OutputChannel::new(self.elem_bits, self.evict_on.clone())
    }

    /// Folds a drained shard output channel into this one, additively.
    /// Exact when shards write disjoint output keys: every record of a
    /// key stays within one shard, so first-write/update splits and
    /// epoch-delta drain/refill events are preserved per key. When
    /// shards overlap on keys, the engine instead reconstitutes `writes`
    /// and `updates` from the merged accumulators before reporting.
    pub(crate) fn absorb_shard(&mut self, shard: OutputChannel) {
        self.writes += shard.writes;
        self.updates += shard.updates;
        self.drain_bits += shard.drain_bits;
        self.refill_bits += shard.refill_bits;
    }
}

/// One online merge/sort job (a costed rank swizzle).
#[derive(Clone, Debug, PartialEq)]
pub struct MergeGroup {
    /// Tensor being reordered.
    pub tensor: String,
    /// Elements flowing through the merger.
    pub elems: u64,
    /// Number of sorted lists merged together (fan-in).
    pub ways: u64,
}

/// Per-space-id compute counting, for load-imbalance-aware timing.
#[derive(Clone, Debug, Default)]
pub struct ComputeCounter {
    /// Multiplies per space id.
    pub muls: BTreeMap<Vec<u64>, u64>,
    /// Additions (reductions) per space id.
    pub adds: BTreeMap<Vec<u64>, u64>,
}

impl ComputeCounter {
    /// Total multiplies.
    pub fn total_muls(&self) -> u64 {
        self.muls.values().sum()
    }

    /// Total additions.
    pub fn total_adds(&self) -> u64 {
        self.adds.values().sum()
    }

    /// The busiest PE's operation count (mul + add per space id).
    pub fn max_per_pe(&self) -> u64 {
        let mut per: BTreeMap<&Vec<u64>, u64> = BTreeMap::new();
        for (k, v) in &self.muls {
            *per.entry(k).or_insert(0) += v;
        }
        for (k, v) in &self.adds {
            *per.entry(k).or_insert(0) += v;
        }
        per.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct space ids observed.
    pub fn spaces(&self) -> usize {
        let mut keys: Vec<&Vec<u64>> = self.muls.keys().chain(self.adds.keys()).collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }
}

/// All instrumentation for one Einsum execution.
#[derive(Clone, Debug, Default)]
pub struct Instruments {
    /// Per-input-tensor channels.
    pub tensors: BTreeMap<String, TensorChannel>,
    /// Output accounting.
    pub output: OutputChannel,
    /// Intersection-unit comparisons per loop rank.
    pub intersect_by_rank: BTreeMap<String, u64>,
    /// Coordinate visits per loop rank (sequencer work).
    pub loop_visits: BTreeMap<String, u64>,
    /// Compute operations per space id.
    pub compute: ComputeCounter,
    /// Online merge jobs.
    pub merges: Vec<MergeGroup>,
}

impl Instruments {
    /// Registers a channel for a tensor.
    pub fn add_tensor(&mut self, tensor: &str, cfg: ChannelCfg) {
        self.tensors
            .insert(tensor.to_string(), TensorChannel::new(cfg));
    }

    /// Signals that the loop advanced on `rank` (epoch boundaries).
    pub fn rank_advanced(&mut self, rank: &str) {
        for ch in self.tensors.values_mut() {
            ch.rank_advanced(rank);
        }
        self.output.rank_advanced(rank);
    }

    /// Starts a fresh per-shard instrument set mirroring this one's
    /// channel configurations. `log_fills(tensor, cfg)` decides, per
    /// channel, whether fills must be logged for merge-time
    /// deduplication (see [`TensorChannel::fork_shard`]).
    pub(crate) fn fork_shard<F>(&self, log_fills: F) -> Instruments
    where
        F: Fn(&str, &ChannelCfg) -> bool,
    {
        Instruments {
            tensors: self
                .tensors
                .iter()
                .map(|(name, ch)| (name.clone(), ch.fork_shard(log_fills(name, ch.cfg()))))
                .collect(),
            output: self.output.fork_shard(),
            ..Instruments::default()
        }
    }

    /// Folds a drained shard's instruments into this one. Shards must be
    /// absorbed in shard order — fill deduplication and the output
    /// channel's merge semantics are first-wins. Per-rank counters merge
    /// additively and preserve entry creation (a rank visited zero times
    /// in a shard still materializes its entry, as in the sequential
    /// run).
    pub(crate) fn absorb_shard(&mut self, shard: Instruments) {
        for (name, ch) in shard.tensors {
            self.tensors
                .get_mut(&name)
                .expect("shard channels mirror the parent's")
                .absorb_shard(ch);
        }
        self.output.absorb_shard(shard.output);
        for (r, n) in shard.intersect_by_rank {
            *self.intersect_by_rank.entry(r).or_insert(0) += n;
        }
        for (r, n) in shard.loop_visits {
            *self.loop_visits.entry(r).or_insert(0) += n;
        }
        for (k, n) in shard.compute.muls {
            *self.compute.muls.entry(k).or_insert(0) += n;
        }
        for (k, n) in shard.compute.adds {
            *self.compute.adds.entry(k).or_insert(0) += n;
        }
        debug_assert!(shard.merges.is_empty(), "shards do not run online merges");
    }

    /// Total intersection comparisons.
    pub fn total_intersections(&self) -> u64 {
        self.intersect_by_rank.values().sum()
    }

    /// Total DRAM traffic in bytes (fills of all inputs plus output
    /// partials; the final output write is added by the model from the
    /// format footprint).
    pub fn input_fill_bytes(&self) -> u64 {
        let bits: u64 = self.tensors.values().map(|c| c.fill_bits).sum();
        bits.div_ceil(8)
    }
}

/// Analytical (expected-value) counterpart of one [`TensorChannel`]: the
/// same traffic quantities the instrumented channel counts, carried as
/// real numbers because a statistical model produces fractional expected
/// counts.
#[derive(Clone, Debug, Default)]
pub struct EstimatedChannel {
    /// Expected element touches (counterpart of `reads_by_rank` summed).
    pub reads: f64,
    /// Expected on-chip bits read (counterpart of `buffer_read_bits`).
    pub buffer_read_bits: f64,
    /// Expected bits filled from DRAM (counterpart of `fill_bits`).
    pub fill_bits: f64,
}

/// Analytical counterparts of one Einsum's [`Instruments`]: everything
/// [`crate::report::EinsumStats`] carries, as expected values. Built by
/// `sim::estimate` from per-tensor rank statistics instead of execution;
/// [`EstimatedCounts::into_einsum_stats`] rounds it into the exact report
/// shape so the measured and modeled paths share one time/energy
/// analysis.
#[derive(Clone, Debug, Default)]
pub struct EstimatedCounts {
    /// Per-tensor expected traffic, keyed by tensor name.
    pub tensors: BTreeMap<String, EstimatedChannel>,
    /// Expected visits per loop rank (counterpart of `loop_visits`).
    pub loop_visits: BTreeMap<String, f64>,
    /// Expected intersection-unit comparisons per loop rank.
    pub intersect_by_rank: BTreeMap<String, f64>,
    /// Expected multiplications.
    pub muls: f64,
    /// Expected additions (term combines plus reduction updates).
    pub adds: f64,
    /// Expected ops on the busiest PE (counterpart of `max_per_pe`).
    pub max_pe_ops: f64,
    /// Expected distinct spatial positions (counterpart of `spaces`).
    pub spaces: f64,
    /// Expected first writes of output elements.
    pub output_writes: f64,
    /// Expected in-place reduction updates.
    pub output_updates: f64,
    /// Expected partial-output drain+refill bits across epochs.
    pub output_partial_bits: f64,
    /// Expected output footprint bits written to DRAM.
    pub output_write_bits: f64,
    /// Expected merge work as `(tensor, elements, ways)` groups
    /// (counterpart of [`MergeGroup`], fractional fan-in allowed).
    pub merges: Vec<(String, f64, f64)>,
}

impl EstimatedCounts {
    /// Rounds the expected values into an [`crate::report::EinsumStats`],
    /// listing tensors in `tensor_order` (the plan's tensor-plan order,
    /// matching the instrumented path).
    pub fn into_einsum_stats(
        self,
        einsum: &str,
        tensor_order: &[String],
    ) -> crate::report::EinsumStats {
        let r = |v: f64| -> u64 {
            if v.is_finite() && v > 0.0 {
                v.round() as u64
            } else {
                0
            }
        };
        let traffic = tensor_order
            .iter()
            .map(|t| {
                let ch = self.tensors.get(t).cloned().unwrap_or_default();
                crate::report::TensorTraffic {
                    tensor: t.clone(),
                    fill_bytes: r(ch.fill_bits / 8.0),
                    buffer_read_bytes: r(ch.buffer_read_bits / 8.0),
                    reads: r(ch.reads),
                }
            })
            .collect();
        let merges = self
            .merges
            .iter()
            .filter(|(_, e, w)| *e >= 0.5 && *w > 1.0)
            .map(|(t, e, w)| MergeGroup {
                tensor: t.clone(),
                elems: r(*e),
                ways: r(w.max(2.0)),
            })
            .collect();
        crate::report::EinsumStats {
            einsum: einsum.to_string(),
            traffic,
            output_write_bytes: r(self.output_write_bits / 8.0),
            output_partial_bytes: r(self.output_partial_bits / 8.0),
            output_writes: r(self.output_writes),
            output_updates: r(self.output_updates),
            muls: r(self.muls),
            adds: r(self.adds),
            max_pe_ops: r(self.max_pe_ops),
            spaces: r(self.spaces) as usize,
            intersections: r(self.intersect_by_rank.values().sum()),
            merges,
            loop_visits: self
                .loop_visits
                .iter()
                .map(|(k, v)| (k.clone(), r(*v)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_and_misses() {
        let mut c = Lru::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1));
        assert!(!c.access(3)); // evicts 2 (LRU)
        assert!(!c.access(2));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 4);
    }

    #[test]
    fn buffet_epoch_dedup() {
        let mut cfg = ChannelCfg::fully_buffered(vec![("K".to_string(), 64)]);
        cfg.evict_on = Some("M".into());
        let mut ch = TensorChannel::new(cfg);
        ch.touch("K", 1, None);
        ch.touch("K", 1, None); // same epoch: no refill
        assert_eq!(ch.fill_bits, 64);
        ch.rank_advanced("M");
        ch.touch("K", 1, None); // new epoch: refill
        assert_eq!(ch.fill_bits, 128);
        assert_eq!(ch.reads_by_rank["K"], 3);
        assert_eq!(ch.buffer_read_bits, 3 * 64);
    }

    #[test]
    fn fully_buffered_fetches_once() {
        let cfg = ChannelCfg::fully_buffered(vec![("K".to_string(), 32)]);
        let mut ch = TensorChannel::new(cfg);
        for _ in 0..10 {
            ch.touch("K", 7, None);
        }
        ch.touch("K", 8, None);
        assert_eq!(ch.fill_bits, 64); // two distinct elements
    }

    #[test]
    fn cached_channel_counts_line_misses() {
        let mut cfg = ChannelCfg::fully_buffered(vec![("K".to_string(), 64)]);
        cfg.cache_lines = Some(1);
        cfg.line_bits = 128; // two elements per line
        let mut ch = TensorChannel::new(cfg);
        ch.touch("K", 1, None); // line 0 miss
        ch.touch("K", 2, None); // line 0 hit
        ch.touch("K", 3, None); // line 1 miss (evicts line 0)
        ch.touch("K", 1, None); // line 0 miss again
        assert_eq!(ch.fills(), 3);
        assert_eq!(ch.fill_bits, 3 * 128);
    }

    #[test]
    fn output_partial_drains_across_epochs() {
        let mut out = OutputChannel::new(96, Some("K2".into()));
        out.record(42, true);
        out.rank_advanced("K2");
        out.record(42, false); // revisited → drain + refill
        out.record(42, false); // same epoch → no extra traffic
        assert_eq!(out.writes, 1);
        assert_eq!(out.updates, 2);
        assert_eq!(out.drain_bits, 96);
        assert_eq!(out.refill_bits, 96);
    }

    #[test]
    fn compute_counter_tracks_imbalance() {
        let mut c = ComputeCounter::default();
        *c.muls.entry(vec![0]).or_insert(0) += 10;
        *c.muls.entry(vec![1]).or_insert(0) += 2;
        *c.adds.entry(vec![1]).or_insert(0) += 3;
        assert_eq!(c.total_muls(), 12);
        assert_eq!(c.total_adds(), 3);
        assert_eq!(c.max_per_pe(), 10);
        assert_eq!(c.spaces(), 2);
    }
}
