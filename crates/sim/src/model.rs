//! The top-level performance model (paper §4.3, Fig. 6).
//!
//! [`Simulator`] composes the back half of the staged evaluation
//! pipeline: given a [`CompiledPlan`] (lowering, fusion blocks, bindings
//! resolved — the data-free front half), execute each Einsum on real
//! tensors with the instrumented engine, convert the resulting action
//! counts into per-component busy times, apply the per-block bottleneck
//! analysis (blocks inferred by the §4.3 fusion criteria), and translate
//! action counts into energy.
//!
//! The compiled plan is shared behind an [`Arc`]: a mapper probing
//! hundreds of loop orders or a batch of requests builds many cheap
//! `Simulator` values over one compilation. Attaching an
//! [`EvalContext`] ([`Simulator::with_context`]) additionally routes
//! input transforms through the shared
//! [`TransformCache`](teaal_fibertree::TransformCache)
//! and enables whole-report caching ([`Simulator::run_data_cached`]) —
//! without changing any result bit.

use std::collections::BTreeMap;
use std::sync::Arc;

use teaal_core::ir::{EinsumBlock, EinsumPlan};
use teaal_core::spec::{ComponentClass, ComputeOp, TeaalSpec};
use teaal_core::TeaalSpec as Spec;
use teaal_fibertree::{IntersectPolicy, Tensor, TensorData};

use crate::compile::CompiledPlan;
use crate::counters::Instruments;
use crate::energy::{ActionCounts, EnergyTable};
use crate::engine::{BoundaryCache, Engine};
use crate::error::{panic_message, SimError};
use crate::limits::{CancelToken, EvalLimits};
use crate::ops::OpTable;
use crate::pipeline::EvalContext;
use crate::report::{passes_for, BlockStats, EinsumStats, SimReport, TensorTraffic};

/// A configured simulator for one TeAAL specification.
///
/// # Examples
///
/// ```
/// use teaal_sim::Simulator;
/// use teaal_core::TeaalSpec;
/// use teaal_fibertree::Tensor;
///
/// let spec = TeaalSpec::parse(concat!(
///     "einsum:\n",
///     "  declaration:\n",
///     "    A: [K, M]\n",
///     "    B: [K, N]\n",
///     "    Z: [M, N]\n",
///     "  expressions:\n",
///     "    - Z[m, n] = A[k, m] * B[k, n]\n",
/// ))?;
/// let sim = Simulator::new(spec)?;
/// let a = Tensor::from_entries("A", &["K", "M"], &[2, 2],
///     vec![(vec![0, 0], 1.0), (vec![1, 1], 2.0)]).unwrap();
/// let b = Tensor::from_entries("B", &["K", "N"], &[2, 2],
///     vec![(vec![0, 1], 3.0), (vec![1, 0], 4.0)]).unwrap();
/// let report = sim.run(&[a, b])?;
/// let z = report.final_output().unwrap();
/// assert_eq!(z.get(&[0, 1]), Some(3.0)); // A[0,0] * B[0,1]
/// assert_eq!(z.get(&[1, 0]), Some(8.0)); // A[1,1] * B[1,0]
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulator {
    compiled: Arc<CompiledPlan>,
    ops: OpTable,
    extent_overrides: BTreeMap<String, u64>,
    energy: EnergyTable,
    /// Worker cap for shard- and cascade-parallel execution.
    threads: usize,
    /// Shared pipeline caches, when attached.
    context: Option<Arc<EvalContext>>,
    /// Cooperative budget/cancellation token, when attached.
    cancel: Option<CancelToken>,
    /// The limits the token enforces (kept for cache-bound plumbing).
    limits: EvalLimits,
}

/// The default worker count for parallel execution: the `TEAAL_THREADS`
/// environment variable when set to a positive integer, otherwise 1
/// (sequential). The CLI's `--threads` flag overrides it.
pub fn default_threads() -> usize {
    std::env::var("TEAAL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Simulator {
    /// Lowers the specification and prepares a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when lowering fails.
    pub fn new(spec: Spec) -> Result<Self, SimError> {
        Ok(Simulator::from_compiled(Arc::new(CompiledPlan::compile(
            spec,
        )?)))
    }

    /// Wraps an already-compiled plan — the cheap constructor the staged
    /// pipeline uses: compilation happens once
    /// ([`EvalContext::compiled`]), execution state many times.
    pub fn from_compiled(compiled: Arc<CompiledPlan>) -> Self {
        Simulator {
            compiled,
            ops: OpTable::arithmetic(),
            extent_overrides: BTreeMap::new(),
            energy: EnergyTable::default(),
            threads: default_threads(),
            context: None,
            cancel: None,
            limits: EvalLimits::default(),
        }
    }

    /// Attaches shared pipeline caches: input transforms route through
    /// the context's [`TransformCache`](teaal_fibertree::TransformCache)
    /// and [`Simulator::run_data_cached`] can reuse whole reports.
    /// Results are bit-identical with or without a context.
    pub fn with_context(mut self, context: Arc<EvalContext>) -> Self {
        self.context = Some(context);
        self
    }

    /// Attaches resource budgets ([`EvalLimits`]). The cancellation
    /// token is created *now* — the deadline clock starts at this call
    /// and spans every subsequent `run_*`, so a multi-run session (graph
    /// supersteps, retries) shares one budget. A tripped budget returns
    /// the matching structured [`SimError`]
    /// ([`SimError::DeadlineExceeded`] / [`SimError::BudgetExceeded`])
    /// carrying the telemetry gathered so far; an attached context's
    /// caches are bounded by `max_resident_cache_bytes`.
    #[must_use]
    pub fn with_limits(mut self, limits: EvalLimits) -> Self {
        self.cancel = Some(CancelToken::new(&limits));
        self.limits = limits;
        self
    }

    /// Shares an existing cancellation token (e.g. one held by a server
    /// so in-flight evaluations can be cancelled externally).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The cancellation token attached by [`Simulator::with_limits`] /
    /// [`Simulator::with_cancel`], if any — hold a clone to cancel or
    /// inspect progress from another thread.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Replaces the operator table (e.g. [`OpTable::sssp`] for graph
    /// kernels).
    pub fn with_ops(mut self, ops: OpTable) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the worker cap for parallel execution (default:
    /// [`default_threads`]).
    ///
    /// With `n > 1`, independent Einsums of a cascade run concurrently
    /// and each eligible Einsum shards its top loop rank across up to `n`
    /// scoped threads ([`Engine::with_threads`]). Reports stay
    /// bit-identical to `n = 1` — the merge is deterministic and the
    /// shard-exactness analysis falls back to sequential execution
    /// whenever it cannot prove equality.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Declares the extent of a rank no input tensor carries (needed for
    /// dense/affine iteration, e.g. the output rank of a convolution).
    pub fn with_rank_extent(mut self, rank: &str, extent: u64) -> Self {
        self.extent_overrides.insert(rank.to_string(), extent);
        self
    }

    /// Replaces the energy table.
    pub fn with_energy(mut self, energy: EnergyTable) -> Self {
        self.energy = energy;
        self
    }

    /// The lowered plans (for inspection and tests).
    pub fn plans(&self) -> &[EinsumPlan] {
        self.compiled.plans()
    }

    /// The inferred fusion blocks.
    pub fn blocks(&self) -> &[EinsumBlock] {
        self.compiled.blocks()
    }

    /// The specification.
    pub fn spec(&self) -> &TeaalSpec {
        self.compiled.spec()
    }

    /// The shared compiled plan.
    pub fn compiled(&self) -> &Arc<CompiledPlan> {
        &self.compiled
    }

    /// Intermediates kept on-chip by fusion (no DRAM traffic).
    pub(crate) fn on_chip_set(&self) -> &std::collections::BTreeSet<String> {
        self.compiled.on_chip()
    }

    /// The declared extent overrides.
    pub(crate) fn extent_overrides(&self) -> &BTreeMap<String, u64> {
        &self.extent_overrides
    }

    /// Whether `component` is an explicitly-managed (buffet-class) buffer
    /// that data can be pinned in.
    pub(crate) fn is_pinnable_buffet(
        &self,
        binding: &teaal_core::spec::EinsumBinding,
        component: &str,
    ) -> bool {
        self.compiled.is_pinnable_buffet(binding, component)
    }

    /// Resolves the intersection policy for an Einsum (precomputed at
    /// compile time).
    pub(crate) fn intersect_policy(&self, plan: &EinsumPlan) -> IntersectPolicy {
        self.compiled.policy_for(plan)
    }

    /// A fresh instrumentation set for one Einsum execution (cloned from
    /// the compile-time template).
    pub(crate) fn build_instruments(&self, plan: &EinsumPlan) -> Instruments {
        self.compiled.instruments_for(plan)
    }

    /// Runs the cascade on the given input tensors (matched by name).
    ///
    /// Convenience wrapper over [`Simulator::run_data`] for owned
    /// tensors; each input is cloned into the execution environment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when inputs are missing or execution fails.
    pub fn run(&self, inputs: &[Tensor]) -> Result<SimReport, SimError> {
        let data: Vec<TensorData> = inputs
            .iter()
            .map(|t| TensorData::Owned(t.clone()))
            .collect();
        let refs: Vec<&TensorData> = data.iter().collect();
        self.run_data(&refs)
    }

    /// Runs the cascade on borrowed inputs in either representation,
    /// assembling owned output tensors.
    ///
    /// Inputs are *borrowed*, not cloned: a large compressed tensor (a
    /// graph adjacency, a SuiteSparse-scale matrix) can be reused across
    /// many runs — the graph driver re-executes its cascade every
    /// superstep against the same [`TensorData`]. Results are
    /// representation-independent: the same content yields bit-identical
    /// instrument counters and outputs whether inputs arrive owned or
    /// compressed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when inputs are missing or execution fails.
    pub fn run_data(&self, inputs: &[&TensorData]) -> Result<SimReport, SimError> {
        self.run_impl(inputs, false)
    }

    /// [`Simulator::run_data`] behind the report cache: with a context
    /// attached, a repeated evaluation of the same `(plan, operator
    /// table, extents, energy, inputs)` returns the shared report
    /// without executing anything. Without a context this is exactly
    /// `run_data` in an [`Arc`].
    ///
    /// The cache key deliberately excludes the thread count — parallel
    /// execution is pinned bit-identical to sequential, so any `n` may
    /// serve any other's report. Keying hashes every input's content
    /// (one O(nnz) walk per input per call), so this entry point is for
    /// request-level reuse (`teaal batch`, services), not inner loops.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run_data`] (errors are never cached).
    pub fn run_data_cached(&self, inputs: &[&TensorData]) -> Result<Arc<SimReport>, SimError> {
        let Some(ctx) = self.context.clone() else {
            return self.run_data(inputs).map(Arc::new);
        };
        let key = self.report_key(inputs);
        if let Some(report) = ctx.cached_report(key) {
            return Ok(report);
        }
        let report = self.run_data(inputs)?;
        Ok(ctx.store_report(key, Arc::new(report)))
    }

    /// Runs the cascade end-to-end in compressed storage: outputs (and
    /// therefore intermediates) are assembled through a streaming
    /// [`CompressedBuilder`](teaal_fibertree::CompressedBuilder) instead
    /// of owned trees, and compressed inputs run their transform
    /// pipelines compressed-natively. The hot loop allocates
    /// `O(output nnz)` flat arrays per Einsum — no intermediate trees —
    /// which is what lets the graph driver re-run a cascade every
    /// superstep without rebuilding owned storage.
    ///
    /// Reports are bit-identical to [`Simulator::run_data`] on the same
    /// content: every instrument counter, traffic figure, and output
    /// entry agrees; only the representation inside
    /// [`SimReport::outputs`] differs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when inputs are missing or execution fails.
    pub fn run_data_compressed(&self, inputs: &[&TensorData]) -> Result<SimReport, SimError> {
        self.run_impl(inputs, true)
    }

    /// The content key [`Simulator::run_data_cached`] stores reports
    /// under: plan hash, operator-table identity, extent overrides,
    /// energy table bits, and every input's content hash (name-sorted —
    /// input order never affects results).
    fn report_key(&self, inputs: &[&TensorData]) -> u64 {
        let mut h = teaal_core::canon::Fnv1a::new();
        h.write_str("sim-report-v1");
        h.write_u64(self.compiled.spec_hash());
        h.write_str(self.ops.semiring.name());
        // Closures without captures coerce to unique fn items: the
        // pointer identifies the `-` interpretation within this process
        // (the cache is process-local, like every other stage).
        h.write_u64(self.ops.sub as usize as u64);
        h.write_u64(u64::from(self.ops.exact_add));
        for (rank, extent) in &self.extent_overrides {
            h.write_str(rank);
            h.write_u64(*extent);
        }
        for v in [
            self.energy.dram_pj_per_bit,
            self.energy.buffer_pj_per_bit,
            self.energy.mul_pj,
            self.energy.add_pj,
            self.energy.intersect_pj,
            self.energy.merge_pj_per_elem,
        ] {
            h.write_f64(v);
        }
        let mut input_keys: Vec<(String, u64)> = inputs
            .iter()
            .map(|t| (t.name().to_string(), t.content_hash()))
            .collect();
        input_keys.sort();
        h.write_u64(input_keys.len() as u64);
        for (name, content) in input_keys {
            h.write_str(&name);
            h.write_u64(content);
        }
        h.finish()
    }

    fn run_impl(&self, inputs: &[&TensorData], compressed: bool) -> Result<SimReport, SimError> {
        if let (Some(bytes), Some(ctx)) = (self.limits.max_resident_cache_bytes, &self.context) {
            ctx.set_max_cache_bytes(bytes);
        }
        let plans = self.compiled.plans();
        // Rank extents from input shapes plus overrides.
        let mut base_extents: BTreeMap<String, u64> = BTreeMap::new();
        for t in inputs {
            for (i, r) in t.rank_ids().iter().enumerate() {
                let e = t.rank_shapes()[i].extent();
                let entry = base_extents.entry(r.clone()).or_insert(e);
                *entry = (*entry).max(e);
            }
        }
        base_extents.extend(self.extent_overrides.clone());

        // Execute the cascade in dependency waves: every Einsum whose
        // producers (data, write-after-write, and learned-extent
        // dependencies) have completed runs concurrently with the rest of
        // its wave. Each Einsum sees exactly the environment and extents
        // its sequential position would — outputs and learned extents of
        // plans *before* it, in plan order — so reports are bit-identical
        // to the sequential schedule.
        let n = plans.len();
        let deps = self.plan_dependencies(&base_extents);
        let mut outputs: Vec<Option<TensorData>> = (0..n).map(|_| None).collect();
        let mut stats: Vec<Option<EinsumStats>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        while remaining > 0 {
            // Wave boundary: a budget tripped by an earlier Einsum
            // returns before the next wave spawns workers.
            if let Some(token) = &self.cancel {
                token.checkpoint()?;
            }
            let wave: Vec<usize> = (0..n)
                .filter(|&i| outputs[i].is_none() && deps[i].iter().all(|&d| outputs[d].is_some()))
                .collect();
            debug_assert!(!wave.is_empty(), "intra-cascade dependencies are acyclic");

            let run_one = |i: usize| -> Result<(Instruments, TensorData), SimError> {
                let plan = &plans[i];
                // Extents as the sequential run would know them here:
                // base extents plus those learned from earlier outputs,
                // first introduction winning in plan order.
                let mut extents = base_extents.clone();
                for o in outputs[..i].iter().flatten() {
                    for (ri, r) in o.rank_ids().iter().enumerate() {
                        extents
                            .entry(r.clone())
                            .or_insert_with(|| o.rank_shapes()[ri].extent());
                    }
                }
                let mut instruments = self.build_instruments(plan);
                let policy = self.intersect_policy(plan);
                let mut engine =
                    Engine::new(plan, self.ops, policy, extents).with_threads(self.threads);
                if let Some(ctx) = &self.context {
                    engine = engine.with_transform_cache(Arc::clone(ctx.transforms()));
                }
                if let Some(token) = &self.cancel {
                    engine = engine.with_cancel(token.clone());
                }
                let mut boundaries = BoundaryCache::new();
                // Later entries shadow earlier ones, so intermediates win
                // over same-named inputs (as the cascade requires).
                let env: BTreeMap<String, &TensorData> = inputs
                    .iter()
                    .copied()
                    .chain(outputs[..i].iter().flatten())
                    .map(|t| (t.name().to_string(), t))
                    .collect();
                let out =
                    engine.execute_data(&env, &mut instruments, &mut boundaries, compressed)?;
                Ok((instruments, out))
            };

            let results: Vec<Result<(Instruments, TensorData), SimError>> = if self.threads > 1
                && wave.len() > 1
            {
                std::thread::scope(|s| {
                    let run_one = &run_one;
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&i| {
                            s.spawn(move || {
                                // Panic isolation: a panicking wave
                                // worker becomes a structured error
                                // instead of tearing down the run.
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_one(i)
                                }))
                                .unwrap_or_else(|payload| {
                                    Err(SimError::WorkerPanic {
                                        site: "wave".into(),
                                        message: panic_message(&payload),
                                    })
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|payload| {
                                Err(SimError::WorkerPanic {
                                    site: "wave".into(),
                                    message: panic_message(&payload),
                                })
                            })
                        })
                        .collect()
                })
            } else {
                wave.iter().map(|&i| run_one(i)).collect()
            };

            for (&i, res) in wave.iter().zip(results) {
                let (instruments, output) = res?;
                stats[i] = Some(self.collect_stats(&plans[i], &instruments, &output));
                outputs[i] = Some(output);
                remaining -= 1;
            }
        }

        let mut report = SimReport::default();
        for i in 0..n {
            let output = outputs[i].take().expect("every plan completed");
            report
                .einsums
                .push(stats[i].take().expect("stats follow outputs"));
            report.outputs.insert(output.name().to_string(), output);
        }

        self.analyze_time(&mut report)?;
        self.analyze_energy(&mut report);
        Ok(report)
    }

    /// Per-plan dependency sets over earlier plans: data (reads an
    /// earlier output), write-after-write (same output name), and
    /// learned-extent (an earlier output introduces an extent for a rank
    /// this plan references that no input tensor declares).
    fn plan_dependencies(&self, known_extents: &BTreeMap<String, u64>) -> Vec<Vec<usize>> {
        let plans = self.compiled.plans();
        let n = plans.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, dj) in deps.iter_mut().enumerate().take(n) {
            let pj = &plans[j];
            let reads: std::collections::BTreeSet<&str> = pj
                .tensor_plans
                .iter()
                .map(|tp| tp.tensor.as_str())
                .collect();
            let mut refs: std::collections::BTreeSet<&str> =
                pj.output.target_order.iter().map(String::as_str).collect();
            for lr in &pj.loop_ranks {
                refs.insert(lr.name.as_str());
                for (r, _) in &lr.binds {
                    refs.insert(r.as_str());
                }
            }
            for (i, pi) in plans.iter().enumerate().take(j) {
                let data = reads.contains(pi.output.tensor.as_str());
                let waw = pi.output.tensor == pj.output.tensor;
                let extent = pi.output.target_order.iter().any(|r| {
                    !known_extents.contains_key(r)
                        && !self.extent_overrides.contains_key(r)
                        && refs.contains(r.as_str())
                });
                if data || waw || extent {
                    dj.push(i);
                }
            }
        }
        deps
    }

    fn collect_stats(
        &self,
        plan: &EinsumPlan,
        instruments: &Instruments,
        output: &TensorData,
    ) -> EinsumStats {
        let spec = self.compiled.spec();
        let name = plan.equation.name().to_string();
        let declared = plan.output.target_order.clone();
        let out_fmt = spec.format.config_or_default(&name, None, &declared);
        let binding = spec.binding.for_einsum(&name);
        let own_storage = binding.storage_for(&name);
        let output_pinned = !own_storage.is_empty()
            && own_storage
                .iter()
                .all(|s| s.evict_on.is_none() && self.is_pinnable_buffet(&binding, &s.component));
        let output_write_bytes = if self.on_chip_set().contains(&name) || output_pinned {
            0
        } else {
            out_fmt.footprint_bytes_data(output)
        };

        let mut traffic = Vec::new();
        for tp in &plan.tensor_plans {
            if let Some(ch) = instruments.tensors.get(&tp.tensor) {
                traffic.push(TensorTraffic {
                    tensor: tp.tensor.clone(),
                    fill_bytes: ch.fill_bits.div_ceil(8),
                    buffer_read_bytes: ch.buffer_read_bits.div_ceil(8),
                    reads: ch.reads_by_rank.values().sum(),
                });
            }
        }

        EinsumStats {
            einsum: name,
            traffic,
            output_write_bytes,
            output_partial_bytes: (instruments.output.drain_bits + instruments.output.refill_bits)
                .div_ceil(8),
            output_writes: instruments.output.writes,
            output_updates: instruments.output.updates,
            muls: instruments.compute.total_muls(),
            adds: instruments.compute.total_adds(),
            max_pe_ops: instruments.compute.max_per_pe(),
            spaces: instruments.compute.spaces(),
            intersections: instruments.total_intersections(),
            merges: instruments.merges.clone(),
            loop_visits: instruments.loop_visits.clone(),
        }
    }

    pub(crate) fn analyze_time(&self, report: &mut SimReport) -> Result<(), SimError> {
        let spec = self.compiled.spec();
        let clock = if spec.architecture.clock_hz > 0.0 {
            spec.architecture.clock_hz
        } else {
            1e9
        };
        for block in self.compiled.blocks() {
            let mut bs = BlockStats::default();
            let mut dram_bytes = 0u64;
            let mut buffer_bytes = 0u64;
            let mut muls = 0u64;
            let mut adds = 0u64;
            let mut max_pe = 0u64;
            let mut isect = 0u64;
            let mut visits = 0u64;
            let mut merge_elems: Vec<(u64, u64)> = Vec::new();
            let mut binding_cfg = None;
            for &m in &block.members {
                let stats = &report.einsums[m];
                bs.members.push(stats.einsum.clone());
                dram_bytes += stats.dram_bytes();
                buffer_bytes += stats
                    .traffic
                    .iter()
                    .map(|t| t.buffer_read_bytes)
                    .sum::<u64>();
                muls += stats.muls;
                adds += stats.adds;
                max_pe += stats.max_pe_ops;
                isect += stats.intersections;
                visits += stats.loop_visits.values().sum::<u64>();
                merge_elems.extend(stats.merges.iter().map(|g| (g.elems, g.ways)));
                if binding_cfg.is_none() {
                    binding_cfg = spec.binding.for_einsum(&stats.einsum).arch_config.clone();
                }
            }

            let arch = spec.architecture.config(binding_cfg.as_deref());

            // DRAM time.
            let dram_bw = arch
                .and_then(|a| {
                    a.all_components()
                        .into_iter()
                        .find_map(|(c, _)| match &c.class {
                            ComponentClass::Dram { bandwidth } => Some(*bandwidth),
                            _ => None,
                        })
                })
                .unwrap_or(64e9);
            bs.component_seconds
                .insert("DRAM".into(), dram_bytes as f64 / dram_bw);

            // Buffer time (aggregate across buffers).
            let buf_bw = arch
                .and_then(|a| {
                    a.all_components()
                        .into_iter()
                        .find_map(|(c, n)| match &c.class {
                            ComponentClass::Buffer { bandwidth, .. } => Some(*bandwidth * n as f64),
                            _ => None,
                        })
                })
                .unwrap_or(1e12);
            bs.component_seconds
                .insert("Buffers".into(), buffer_bytes as f64 / buf_bw);

            // Compute time: per-PE bottleneck with instance counts.
            let (mul_units, add_units) = arch
                .map(|a| {
                    let mut mu = 0u64;
                    let mut au = 0u64;
                    for (c, n) in a.all_components() {
                        if let ComponentClass::Compute { op } = &c.class {
                            match op {
                                ComputeOp::Mul => mu += n,
                                ComputeOp::Add => au += n,
                            }
                        }
                    }
                    (mu.max(1), au.max(1))
                })
                .unwrap_or((1, 1));
            let compute_cycles = (max_pe as f64)
                .max(muls as f64 / mul_units as f64)
                .max(adds as f64 / add_units as f64);
            bs.component_seconds
                .insert("Compute".into(), compute_cycles / clock);

            // Intersection time.
            let isect_units = arch
                .map(|a| {
                    a.all_components()
                        .into_iter()
                        .filter(|(c, _)| matches!(c.class, ComponentClass::Intersect { .. }))
                        .map(|(_, n)| n)
                        .sum::<u64>()
                })
                .filter(|&n| n > 0);
            if let Some(n) = isect_units {
                bs.component_seconds
                    .insert("Intersect".into(), isect as f64 / n as f64 / clock);
            } else if isect > 0 {
                // Intersections ride on the sequencers/PEs: one comparison
                // per cycle across the compute units.
                bs.component_seconds.insert(
                    "Intersect".into(),
                    isect as f64 / mul_units.max(1) as f64 / clock,
                );
            }

            // Sequencer time: one coordinate generated per cycle per
            // sequencer instance (Table 3's num_ranks scales throughput).
            let sequencer = arch.and_then(|a| {
                a.all_components()
                    .into_iter()
                    .find_map(|(c, n)| match &c.class {
                        ComponentClass::Sequencer { num_ranks } => {
                            Some(((*num_ranks).max(1), n.max(1)))
                        }
                        _ => None,
                    })
            });
            if let Some((num_ranks, seqs)) = sequencer {
                bs.component_seconds.insert(
                    "Sequencer".into(),
                    visits as f64 / num_ranks as f64 / seqs as f64 / clock,
                );
            }

            // Merger time — charged only when the architecture has merge
            // hardware; designs whose distribution network reorders data
            // in flight (SIGMA) absorb the swizzle in the dataflow.
            let merger = arch.and_then(|a| {
                a.all_components()
                    .into_iter()
                    .find_map(|(c, n)| match &c.class {
                        ComponentClass::Merger {
                            comparator_radix,
                            outputs,
                            ..
                        } => Some((*comparator_radix, (*outputs).max(1), n)),
                        _ => None,
                    })
            });
            if let Some((radix, outputs, mergers)) = merger {
                let merge_passes: u64 = merge_elems
                    .iter()
                    .map(|(e, w)| e * passes_for(*w, radix))
                    .sum();
                if merge_passes > 0 {
                    bs.component_seconds.insert(
                        "Merger".into(),
                        merge_passes as f64 / outputs as f64 / mergers as f64 / clock,
                    );
                }
            }

            // `total_cmp` orders NaN above +∞, so a degenerate component
            // time (e.g. 0/0 from a zero-bandwidth DRAM with no traffic)
            // surfaces as the maximum and is rejected below instead of
            // panicking mid-comparison or silently reporting NaN seconds.
            let (bottleneck, seconds) = bs
                .component_seconds
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(k, v)| (k.clone(), *v))
                .unwrap_or(("Compute".into(), 0.0));
            if !seconds.is_finite() {
                return Err(SimError::NonFiniteTime {
                    component: bottleneck,
                });
            }
            bs.bottleneck = bottleneck;
            bs.seconds = seconds;
            report.seconds += seconds;
            report.blocks.push(bs);
        }
        report.cycles = report.seconds * clock;
        Ok(())
    }

    pub(crate) fn analyze_energy(&self, report: &mut SimReport) {
        let mut actions = ActionCounts::default();
        for e in &report.einsums {
            actions.dram_bits += e.dram_bytes() * 8;
            actions.buffer_bits += e
                .traffic
                .iter()
                .map(|t| t.buffer_read_bytes * 8)
                .sum::<u64>();
            actions.muls += e.muls;
            actions.adds += e.adds;
            actions.intersections += e.intersections;
            actions.merge_elem_passes += e.merge_elem_passes(64);
        }
        report.energy_joules = actions.energy_joules(&self.energy);
        report.actions = actions;
    }
}
