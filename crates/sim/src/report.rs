//! Simulation reports: per-Einsum statistics, per-block bottleneck
//! analysis, and cascade-level summary metrics.

use std::collections::BTreeMap;
use std::fmt;

use teaal_fibertree::TensorData;

use crate::counters::MergeGroup;
use crate::energy::ActionCounts;

/// DRAM/buffer traffic attributed to one tensor within one Einsum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TensorTraffic {
    /// Tensor name.
    pub tensor: String,
    /// Bytes filled from DRAM.
    pub fill_bytes: u64,
    /// Bytes read on-chip.
    pub buffer_read_bytes: u64,
    /// Element touches.
    pub reads: u64,
}

/// Statistics for one executed Einsum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EinsumStats {
    /// The Einsum's name (output tensor).
    pub einsum: String,
    /// Input tensor traffic.
    pub traffic: Vec<TensorTraffic>,
    /// Bytes of the final output written to DRAM.
    pub output_write_bytes: u64,
    /// Bytes of partial-output drains + refills.
    pub output_partial_bytes: u64,
    /// Distinct output points written.
    pub output_writes: u64,
    /// Reduction updates to existing points.
    pub output_updates: u64,
    /// Multiplies performed.
    pub muls: u64,
    /// Adds performed.
    pub adds: u64,
    /// Operations on the busiest PE (load imbalance).
    pub max_pe_ops: u64,
    /// Distinct spatial positions used.
    pub spaces: usize,
    /// Intersection comparisons.
    pub intersections: u64,
    /// Online merge jobs (rank swizzles of intermediates/outputs).
    pub merges: Vec<MergeGroup>,
    /// Coordinate visits per loop rank.
    pub loop_visits: BTreeMap<String, u64>,
}

impl EinsumStats {
    /// Total DRAM bytes attributed to this Einsum (input fills + output
    /// writes + partial drains/refills).
    pub fn dram_bytes(&self) -> u64 {
        self.traffic.iter().map(|t| t.fill_bytes).sum::<u64>()
            + self.output_write_bytes
            + self.output_partial_bytes
    }

    /// DRAM bytes for one tensor (an input or this Einsum's output).
    pub fn dram_bytes_of(&self, tensor: &str) -> u64 {
        if tensor == self.einsum {
            return self.output_write_bytes + self.output_partial_bytes;
        }
        self.traffic
            .iter()
            .filter(|t| t.tensor == tensor)
            .map(|t| t.fill_bytes)
            .sum()
    }

    /// Total merge element-passes under the given comparator radix.
    pub fn merge_elem_passes(&self, radix: u64) -> u64 {
        self.merges
            .iter()
            .map(|g| g.elems * passes_for(g.ways, radix))
            .sum()
    }
}

/// Merge passes needed to combine `ways` sorted runs with a comparator of
/// the given radix: `ceil(log_radix(ways))`.
pub fn passes_for(ways: u64, radix: u64) -> u64 {
    if ways <= 1 {
        return 0;
    }
    let r = radix.max(2) as f64;
    (ways as f64).log(r).ceil() as u64
}

/// Per-component execution time within one fused block.
#[derive(Clone, Debug, Default)]
pub struct BlockStats {
    /// Einsums fused in this block.
    pub members: Vec<String>,
    /// Seconds of busy time per component.
    pub component_seconds: BTreeMap<String, f64>,
    /// The block's execution time (the bottleneck component).
    pub seconds: f64,
    /// Which component was the bottleneck.
    pub bottleneck: String,
}

/// The full simulation report for one cascade execution.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Per-Einsum statistics, in cascade order.
    pub einsums: Vec<EinsumStats>,
    /// Fused blocks with bottleneck analysis.
    pub blocks: Vec<BlockStats>,
    /// Total execution time in seconds (sum over blocks).
    pub seconds: f64,
    /// Total execution cycles at the specification's clock.
    pub cycles: f64,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Aggregated action counts.
    pub actions: ActionCounts,
    /// Output tensors by name (every Einsum's output): owned trees from
    /// [`Simulator::run`](crate::Simulator::run) /
    /// [`run_data`](crate::Simulator::run_data), compressed (CSF) storage
    /// from [`run_data_compressed`](crate::Simulator::run_data_compressed).
    pub outputs: BTreeMap<String, TensorData>,
}

impl SimReport {
    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.einsums.iter().map(EinsumStats::dram_bytes).sum()
    }

    /// DRAM traffic of one tensor summed across Einsums (reads as an
    /// input plus writes as an output).
    pub fn dram_bytes_of(&self, tensor: &str) -> u64 {
        self.einsums.iter().map(|e| e.dram_bytes_of(tensor)).sum()
    }

    /// The final Einsum's output tensor, in whichever representation the
    /// run produced.
    pub fn final_output(&self) -> Option<&TensorData> {
        let last = self.einsums.last()?;
        self.outputs.get(&last.einsum)
    }

    /// Total compute operations.
    pub fn total_ops(&self) -> u64 {
        self.einsums.iter().map(|e| e.muls + e.adds).sum()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "simulation report")?;
        writeln!(
            f,
            "  time: {:.6e} s ({:.3e} cycles)   energy: {:.6e} J   DRAM: {} bytes",
            self.seconds,
            self.cycles,
            self.energy_joules,
            self.dram_bytes()
        )?;
        for e in &self.einsums {
            writeln!(
                f,
                "  einsum {}: muls={} adds={} isect={} out_writes={} out_updates={}",
                e.einsum, e.muls, e.adds, e.intersections, e.output_writes, e.output_updates
            )?;
            for t in &e.traffic {
                writeln!(
                    f,
                    "    {}: fills={}B buffer={}B reads={}",
                    t.tensor, t.fill_bytes, t.buffer_read_bytes, t.reads
                )?;
            }
            writeln!(
                f,
                "    {} (output): final={}B partial={}B",
                e.einsum, e.output_write_bytes, e.output_partial_bytes
            )?;
        }
        for b in &self.blocks {
            writeln!(
                f,
                "  block [{}]: {:.6e} s, bottleneck: {}",
                b.members.join(", "),
                b.seconds,
                b.bottleneck
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_pass_counts() {
        assert_eq!(passes_for(1, 64), 0);
        assert_eq!(passes_for(64, 64), 1);
        assert_eq!(passes_for(65, 64), 2);
        assert_eq!(passes_for(4096, 64), 2);
        assert_eq!(passes_for(8, 2), 3);
    }

    #[test]
    fn dram_accounting_sums_components() {
        let mut e = EinsumStats {
            einsum: "Z".into(),
            output_write_bytes: 100,
            output_partial_bytes: 20,
            ..EinsumStats::default()
        };
        e.traffic.push(TensorTraffic {
            tensor: "A".into(),
            fill_bytes: 50,
            ..TensorTraffic::default()
        });
        assert_eq!(e.dram_bytes(), 170);
        assert_eq!(e.dram_bytes_of("A"), 50);
        assert_eq!(e.dram_bytes_of("Z"), 120);
    }
}
