//! Analytical cost estimation — the mapper's fast path.
//!
//! Predicts what the instrumented engine would measure for a lowered
//! [`EinsumPlan`] from per-tensor rank statistics alone
//! ([`TensorStats`]: extents, occupancies, fiber-length distributions),
//! in the spirit of Sparseloop's stochastic density models: no tensor
//! data is touched, so a candidate mapping costs microseconds instead of
//! a full simulation.
//!
//! The estimator mirrors the engine's semantics level by level:
//!
//! - **Co-iteration**: per loop rank, expected intersection matches
//!   (`E · Π cᵢ/E`) or union coordinates (`E · (1 − Π (1 − cᵢ/E))`) from
//!   the drivers' expected fiber occupancies, which come from
//!   distinct-prefix counts — exact where the working prefix covers the
//!   same ranks as a storage prefix, a uniform-grid occupancy model
//!   (`U·(1−(1−1/U)^N)`) elsewhere.
//! - **Transforms**: swizzle reorders levels; shape and occupancy splits
//!   reshape extents (occupancy splits consult the modeled occupancy at
//!   their depth, follower splits adopt the leader's boundary count);
//!   flattening multiplies extents.
//! - **Skipping**: leader-follower and skip-ahead intersection charge the
//!   policy's comparison count, not the two-finger sum.
//! - **Traffic**: buffet epoch dedup, eager subtree fills, LRU cache
//!   compulsory+capacity misses, and partial-output drains are modeled in
//!   expectation against the same [`ChannelCfg`] the engine instruments.
//!
//! The result is assembled into the exact [`SimReport`] shape and pushed
//! through the *same* time/energy analysis as measured runs, so modeled
//! and measured numbers are directly comparable. Remaining sources of
//! error (documented deliberately): coordinate distributions are assumed
//! uniform and independent across ranks, value cancellation (`is_zero`)
//! is ignored, spatial work is assumed balanced across PEs, and
//! follower-split boundaries are approximated from the leader's chunk
//! count. `explore_fast` compensates with a safety margin before the
//! engine verifies the survivors.

use std::collections::BTreeMap;
use std::sync::Arc;

use teaal_core::einsum::Rhs;
use teaal_core::ir::{Descent, EinsumPlan, PlanStep, TensorPlan};
use teaal_fibertree::stats::{StatsCache, TensorStats};
use teaal_fibertree::{IntersectPolicy, Tensor, TensorData};

use crate::counters::{ChannelCfg, EstimatedChannel, EstimatedCounts};
use crate::error::SimError;
use crate::model::Simulator;
use crate::report::SimReport;

/// Estimates a full cascade report for owned input tensors.
///
/// Convenience wrapper over [`estimate_data`]; statistics are computed
/// fresh (use [`estimate_data`] with a shared [`StatsCache`] when
/// estimating many candidates over the same inputs).
///
/// # Errors
///
/// Returns [`SimError::MissingTensor`] / [`SimError::MissingExtent`] under
/// the same conditions as an engine run.
pub fn estimate(sim: &Simulator, inputs: &[Tensor]) -> Result<SimReport, SimError> {
    let datas: Vec<TensorData> = inputs
        .iter()
        .map(|t| TensorData::Owned(t.clone()))
        .collect();
    let refs: Vec<&TensorData> = datas.iter().collect();
    estimate_data(sim, &refs, &StatsCache::new())
}

/// Estimates a full cascade report, memoizing per-tensor statistics in
/// `cache` (one O(nnz) pass per distinct tensor, shared across all
/// candidate mappings).
///
/// # Errors
///
/// Returns [`SimError::MissingTensor`] / [`SimError::MissingExtent`] under
/// the same conditions as an engine run.
pub fn estimate_data(
    sim: &Simulator,
    inputs: &[&TensorData],
    cache: &StatsCache,
) -> Result<SimReport, SimError> {
    let mut stats = BTreeMap::new();
    for t in inputs {
        stats.insert(t.name().to_string(), cache.get_or_compute(t));
    }
    estimate_with_stats(sim, &stats)
}

/// Estimates a full cascade report from precomputed statistics (no tensor
/// data at all). Intermediates are modeled by synthesizing statistics for
/// each Einsum's estimated output and feeding them forward, mirroring the
/// engine's sequential extent/environment semantics.
///
/// The returned report carries no `outputs` (nothing was computed); all
/// counters, per-block component times, and energy are filled in by the
/// same analysis the measured path uses.
///
/// # Errors
///
/// Returns [`SimError::MissingTensor`] when a plan reads a tensor with no
/// statistics, and [`SimError::MissingExtent`] for dense iteration over an
/// undeclared rank — the same conditions that fail an engine run.
pub fn estimate_with_stats(
    sim: &Simulator,
    tensor_stats: &BTreeMap<String, Arc<TensorStats>>,
) -> Result<SimReport, SimError> {
    let mut extents: BTreeMap<String, u64> = BTreeMap::new();
    for ts in tensor_stats.values() {
        for r in &ts.ranks {
            let e = extents.entry(r.rank.clone()).or_insert(r.extent);
            *e = (*e).max(r.extent);
        }
    }
    extents.extend(sim.extent_overrides().clone());

    let mut env: BTreeMap<String, Arc<TensorStats>> = tensor_stats.clone();
    let mut report = SimReport::default();
    for plan in sim.plans() {
        let (stats, out_stats) = estimate_einsum(sim, plan, &env, &extents)?;
        for r in &out_stats.ranks {
            extents.entry(r.rank.clone()).or_insert(r.extent);
        }
        env.insert(out_stats.name.clone(), Arc::new(out_stats));
        report.einsums.push(stats);
    }
    sim.analyze_time(&mut report)?;
    sim.analyze_energy(&mut report);
    Ok(report)
}

/// Expected number of distinct cells occupied when `n` items land
/// uniformly and independently in a space of `u` cells:
/// `u·(1−(1−1/u)^n)`, evaluated stably via `expm1`/`ln_1p`.
fn distinct_estimate(u: f64, n: f64) -> f64 {
    if n <= 0.0 || u <= 0.0 || n.is_nan() || u.is_nan() {
        return 0.0;
    }
    if u <= 1.0 {
        return u.min(n);
    }
    let log_keep = (-1.0 / u).ln_1p(); // ln(1 − 1/u) < 0
    let d = u * -(n * log_keep).exp_m1();
    d.min(n).min(u)
}

/// One working-order level of a tensor model.
///
/// `extent` bounds the *fanout* (children per parent fiber) and `universe`
/// the *coordinate space* the level's values live in — they differ for
/// occupancy splits, whose lower level keeps the **original** coordinate
/// values (universe = the unsplit rank's extent) while holding at most
/// `size` of them per chunk. `origs` lists which original storage ranks
/// the level covers (`partial` marks split fragments that only jointly
/// reconstruct the original rank); `occ_cap` records an occupancy-split
/// lower's `(upper sibling, split size)` so spatial position counts can
/// be capped at the chunk size when the sibling is iterated above it.
#[derive(Clone, Debug)]
struct Level {
    name: String,
    extent: f64,
    universe: f64,
    origs: Vec<(String, bool)>,
    occ_cap: Option<(String, f64)>,
}

/// Per-access walk model: transformed levels, distinct-prefix counts, the
/// engine's per-loop-level joined rank names, and walk state (descent
/// depth and union-mode survival probability).
struct Model {
    tensor: String,
    levels: Vec<Level>,
    prefix: Vec<f64>,
    /// Joined rank name charged for touches at each working depth
    /// (descents sharing a loop level share the level's joined name).
    joined_by_depth: Vec<String>,
    depth: usize,
    presence: f64,
}

impl Model {
    /// Expected occupancy of the fiber this access currently points at.
    fn fiber_occ(&self) -> f64 {
        let p0 = self.prefix[self.depth].max(1e-30);
        (self.prefix[self.depth + 1] / p0).max(0.0)
    }

    /// Coordinate universe at the current depth (used to normalize
    /// occupancies into densities — occupancy-split lowers keep original
    /// coordinate values, so their universe is the unsplit extent).
    fn cur_extent(&self) -> f64 {
        self.levels
            .get(self.depth)
            .map(|l| l.universe)
            .unwrap_or(1.0)
            .max(1.0)
    }
}

/// Joint coordinate universe of a set of levels: the product of their
/// per-level universes, with a per-original-rank clamp — when several
/// single-orig split fragments of the same rank appear together, their
/// joint universe cannot exceed the original rank's extent (split parts
/// are functions of the original coordinate, not fresh dimensions). The
/// clamp applies when all parts are present, or when an occupancy-split
/// lower (which *is* the original coordinate) anchors the group.
fn universe_product<'a>(
    levels: impl Iterator<Item = &'a Level>,
    ts: &TensorStats,
    parts_of: &BTreeMap<String, usize>,
) -> f64 {
    let mut u = 1.0f64;
    // Per-orig: (part count seen, universe product, occ-lower anchor).
    let mut groups: BTreeMap<&str, (usize, f64, Option<f64>)> = BTreeMap::new();
    for l in levels {
        u = (u * l.universe.max(1.0)).min(1e300);
        if let [(o, true)] = l.origs.as_slice() {
            let g = groups.entry(o.as_str()).or_insert((0, 1.0, None));
            g.0 += 1;
            g.1 = (g.1 * l.universe.max(1.0)).min(1e300);
            if l.occ_cap.is_some() {
                g.2 = Some(g.2.map_or(l.universe, |a: f64| a.max(l.universe)));
            }
        }
    }
    for (o, (cnt, prod, anchor)) in groups {
        if cnt < 2 {
            continue;
        }
        let all_parts = cnt == parts_of.get(o).copied().unwrap_or(1);
        let cap = match anchor {
            Some(a) => Some(a.max(1.0)),
            None if all_parts => ts.rank(o).map(|r| (r.extent as f64).max(1.0)),
            None => None,
        };
        if let Some(c) = cap {
            if c < prod {
                u = u / prod * c;
            }
        }
    }
    u
}

/// Distinct-prefix counts `P[0..=d]` for a transformed level list:
/// `P[k]` is the expected number of distinct coordinate prefixes of the
/// first `k` levels. Exact (from the statistics) when the first `k`
/// levels wholly cover exactly the first `j` storage ranks; uniform-grid
/// estimated otherwise, bounded by every applicable marginal cap —
/// storage prefixes, per-rank distinct coordinates, and any producer
/// knowledge recorded in [`TensorStats::marginal_caps`] (for a cap
/// `(R, c)`, a prefix's count is at most `c` times the joint universe of
/// its levels *outside* `R`, since levels derived solely from ranks in
/// `R` cannot add distinctness beyond `c`). Always clamped monotone with
/// `P[d] = nnz` (transforms preserve leaves).
fn prefix_counts(
    levels: &[Level],
    ts: &TensorStats,
    parts_of: &BTreeMap<String, usize>,
) -> Vec<f64> {
    let d = levels.len();
    let nnz = ts.nnz as f64;
    let storage: Vec<&str> = ts.rank_order();
    // Marginal caps as (rank set, count): storage prefixes, single ranks,
    // and producer-declared marginals.
    let mut caps: Vec<(Vec<&str>, f64)> = Vec::new();
    for j in 1..storage.len() {
        caps.push((storage[..j].to_vec(), ts.prefix_elements(j) as f64));
    }
    for rs in &ts.ranks {
        caps.push((vec![rs.rank.as_str()], rs.distinct_coords as f64));
    }
    for (rset, c) in &ts.marginal_caps {
        caps.push((rset.iter().map(String::as_str).collect(), *c as f64));
    }
    let mut p = vec![1.0f64; d + 1];
    for k in 1..=d {
        let u = universe_product(levels[..k].iter(), ts, parts_of);
        // Which original ranks do the first k levels cover, and wholly?
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        let mut any_partial_orig = false;
        for l in &levels[..k] {
            for (o, partial) in &l.origs {
                *seen.entry(o.as_str()).or_insert(0) += 1;
                if *partial && seen[o.as_str()] < parts_of.get(o).copied().unwrap_or(1) {
                    any_partial_orig = true;
                }
            }
        }
        // Re-check completeness: an orig is whole iff we saw all its parts.
        let whole = !any_partial_orig
            && seen
                .iter()
                .all(|(o, n)| *n == parts_of.get(*o).copied().unwrap_or(1));
        let mut est = None;
        if whole {
            let j = seen.len();
            let prefix_match =
                j <= storage.len() && storage[..j].iter().all(|r| seen.contains_key(*r));
            if prefix_match {
                // Distinct prefix counts are order-invariant within the
                // prefix set: use the exact per-level occupancy.
                est = Some(ts.prefix_elements(j) as f64);
            } else if j == 1 {
                let orig = *seen.keys().next().expect("j == 1");
                if let Some(rs) = ts.rank(orig) {
                    est = Some(rs.distinct_coords as f64);
                }
            }
        }
        let mut pk = est.unwrap_or_else(|| distinct_estimate(u, nnz));
        // Marginal caps: levels whose origs all lie inside the cap's rank
        // set contribute no distinctness beyond the cap count.
        if est.is_none() {
            for (rset, c) in &caps {
                let outside: Vec<&Level> = levels[..k]
                    .iter()
                    .filter(|l| !l.origs.iter().all(|(o, _)| rset.contains(&o.as_str())))
                    .collect();
                if outside.len() == k {
                    continue; // no level inside the cap's rank set
                }
                let ou = universe_product(outside.into_iter(), ts, parts_of);
                pk = pk.min(c * ou);
            }
        }
        // Per-level growth cap and monotonicity.
        pk = pk
            .min(p[k - 1] * levels[k - 1].extent.max(1.0))
            .min(nnz)
            .max(p[k - 1].min(nnz));
        p[k] = pk;
    }
    if d > 0 {
        p[d] = nnz;
        for k in (1..d).rev() {
            p[k] = p[k].min(p[k + 1]);
        }
    }
    p
}

/// Transformed level list plus split part counts and online-swizzle merge
/// work (`(elems, ways)` pairs) accumulated while applying a tensor
/// plan's steps.
type LevelModel = (Vec<Level>, BTreeMap<String, usize>, Vec<(f64, f64)>);

/// Initial storage-order level list for a tensor plan.
fn initial_levels(tp: &TensorPlan, ts: &TensorStats) -> (Vec<Level>, BTreeMap<String, usize>) {
    let levels = tp
        .initial_order
        .iter()
        .map(|r| {
            let e = ts.rank(r).map(|s| s.extent as f64).unwrap_or(1.0).max(1.0);
            Level {
                name: r.clone(),
                extent: e,
                universe: e,
                origs: vec![(r.clone(), false)],
                occ_cap: None,
            }
        })
        .collect();
    let parts_of = tp
        .initial_order
        .iter()
        .map(|r| (r.clone(), 1usize))
        .collect();
    (levels, parts_of)
}

/// Applies a tensor plan's transform steps to the storage-order level
/// list, returning the working-order levels, the split part counts per
/// original rank, and any online-swizzle merge work encountered as
/// `(elems, ways)`.
fn build_levels(
    tp: &TensorPlan,
    ts: &TensorStats,
    leader_chunks: &BTreeMap<(String, String), f64>,
) -> LevelModel {
    let (mut levels, mut parts_of) = initial_levels(tp, ts);
    let mut merges = Vec::new();
    for step in &tp.steps {
        if let PlanStep::Swizzle(order) = step {
            let before: Vec<String> = levels.iter().map(|l| l.name.clone()).collect();
            if before != *order && tp.online_swizzle {
                let p = before
                    .iter()
                    .zip(order.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                let pc = prefix_counts(&levels, ts, &parts_of);
                if p < levels.len() {
                    let ways = pc[p + 1] / pc[p].max(1.0);
                    merges.push((ts.nnz as f64, ways));
                }
            }
        }
        let (next, next_parts) = apply_one_step(levels, parts_of, step, ts, leader_chunks);
        levels = next;
        parts_of = next_parts;
    }
    (levels, parts_of, merges)
}

/// Leader chunk counts published by this plan's occupancy-split leaders,
/// keyed `(rank, leader tensor)` — the analytical counterpart of the
/// engine's `BoundaryCache`.
fn leader_chunk_counts(
    plan: &EinsumPlan,
    env: &BTreeMap<String, Arc<TensorStats>>,
) -> BTreeMap<(String, String), f64> {
    let empty = BTreeMap::new();
    let mut out = BTreeMap::new();
    for tp in &plan.tensor_plans {
        let Some(ts) = env.get(&tp.tensor) else {
            continue;
        };
        if !tp
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::SplitOccLeader { .. }))
        {
            continue;
        }
        // Re-run the transform, recording the chunk count at each leader
        // split (the model computes it from the occupancy in place).
        let (mut levels, mut parts_of) = initial_levels(tp, ts);
        for step in &tp.steps {
            if let PlanStep::SplitOccLeader { rank, size, .. } = step {
                if let Some(i) = levels.iter().position(|l| l.name == *rank) {
                    let pc = prefix_counts(&levels, ts, &parts_of);
                    let c = (pc[i + 1] / pc[i].max(1.0)).max(1.0);
                    let chunks = (c / (*size as f64).max(1.0)).ceil().max(1.0);
                    out.insert((rank.clone(), tp.tensor.clone()), chunks);
                }
            }
            // Advance the level list exactly as build_levels would.
            let (next, next_parts) = apply_one_step(levels, parts_of, step, ts, &empty);
            levels = next;
            parts_of = next_parts;
        }
    }
    out
}

/// Applies one transform step (shared between [`build_levels`] and the
/// leader pre-pass so both see identical level evolution).
fn apply_one_step(
    levels: Vec<Level>,
    parts_of: BTreeMap<String, usize>,
    step: &PlanStep,
    ts: &TensorStats,
    leader_chunks: &BTreeMap<(String, String), f64>,
) -> (Vec<Level>, BTreeMap<String, usize>) {
    let mut levels = levels;
    let mut parts_of = parts_of;
    let pos = |levels: &[Level], name: &str| levels.iter().position(|l| l.name == name);
    match step {
        PlanStep::Swizzle(order) => {
            let mut next = Vec::with_capacity(levels.len());
            for name in order {
                if let Some(i) = pos(&levels, name) {
                    next.push(levels[i].clone());
                }
            }
            if next.len() == levels.len() {
                levels = next;
            }
        }
        PlanStep::Flatten { upper, new_name } => {
            if let Some(i) = pos(&levels, upper) {
                if i + 1 < levels.len() {
                    let lower = levels.remove(i + 1);
                    let up = &mut levels[i];
                    up.name = new_name.clone();
                    up.extent = (up.extent * lower.extent).max(1.0);
                    up.universe = (up.universe * lower.universe).clamp(1.0, 1e300);
                    up.origs.extend(lower.origs);
                    up.occ_cap = None;
                }
            }
        }
        PlanStep::SplitShape {
            rank,
            size,
            upper,
            lower,
        } => {
            if let Some(i) = pos(&levels, rank) {
                let e = levels[i].extent;
                let uv = levels[i].universe;
                let s = (*size as f64).max(1.0);
                let origs = levels[i].origs.clone();
                for (o, _) in &origs {
                    *parts_of.entry(o.clone()).or_insert(1) += 1;
                }
                let mk = |name: &str, extent: f64, universe: f64| Level {
                    name: name.to_string(),
                    extent: extent.max(1.0),
                    universe: universe.max(1.0),
                    origs: origs.iter().map(|(o, _)| (o.clone(), true)).collect(),
                    occ_cap: None,
                };
                let u = mk(upper, (e / s).ceil(), (uv / s).ceil());
                let l = mk(lower, s.min(e), s.min(uv));
                levels.splice(i..=i, [u, l]);
            }
        }
        PlanStep::SplitOccLeader {
            rank,
            size,
            upper,
            lower,
        }
        | PlanStep::SplitOccFollower {
            rank,
            size,
            upper,
            lower,
            ..
        } => {
            if let Some(i) = pos(&levels, rank) {
                let pc = prefix_counts(&levels, ts, &parts_of);
                let c = (pc[i + 1] / pc[i].max(1.0)).max(1.0);
                let s = (*size as f64).max(1.0);
                let is_leader = !matches!(step, PlanStep::SplitOccFollower { .. });
                let chunks = match step {
                    PlanStep::SplitOccFollower { leader, .. } => leader_chunks
                        .get(&(rank.clone(), leader.clone()))
                        .copied()
                        .unwrap_or_else(|| (c / s).ceil().max(1.0)),
                    _ => (c / s).ceil().max(1.0),
                };
                let e = levels[i].extent;
                let uv = levels[i].universe;
                let origs = levels[i].origs.clone();
                for (o, _) in &origs {
                    *parts_of.entry(o.clone()).or_insert(1) += 1;
                }
                let mk = |name: &str, extent: f64, universe: f64| Level {
                    name: name.to_string(),
                    extent: extent.max(1.0),
                    universe: universe.max(1.0),
                    origs: origs.iter().map(|(o, _)| (o.clone(), true)).collect(),
                    occ_cap: None,
                };
                // The upper level's coordinates are chunk ids; the lower
                // level keeps the ORIGINAL coordinate values (the engine
                // slices the fiber, it does not rebase coordinates), so
                // its universe stays the unsplit one while the leader's
                // per-chunk fanout is bounded by the split size.
                let u = mk(upper, chunks, chunks);
                let mut l = mk(lower, if is_leader { s.min(e) } else { e }, uv);
                l.occ_cap = Some((upper.clone(), s));
                levels.splice(i..=i, [u, l]);
            }
        }
    }
    (levels, parts_of)
}

/// Estimates one Einsum: returns its stats and synthetic statistics for
/// its output (for downstream cascade plans).
fn estimate_einsum(
    sim: &Simulator,
    plan: &EinsumPlan,
    env: &BTreeMap<String, Arc<TensorStats>>,
    extents: &BTreeMap<String, u64>,
) -> Result<(crate::report::EinsumStats, TensorStats), SimError> {
    let name = plan.equation.name().to_string();
    let instruments = sim.build_instruments(plan);
    let policy = sim.intersect_policy(plan);
    let accesses = plan.equation.rhs.accesses();
    let (union_mode, take_mode) = match &plan.equation.rhs {
        Rhs::SumOfProducts(terms) => (terms.len() > 1, false),
        Rhs::Take { .. } => (false, true),
    };

    let leader_chunks = leader_chunk_counts(plan, env);

    // Build one walk model per access.
    let mut counts = EstimatedCounts::default();
    let mut models: Vec<Model> = Vec::with_capacity(accesses.len());
    for a in &accesses {
        let tp = plan
            .tensor_plans
            .iter()
            .find(|tp| tp.tensor == a.tensor)
            .ok_or_else(|| SimError::MissingTensor {
                tensor: a.tensor.clone(),
            })?;
        let ts = env.get(&tp.tensor).ok_or_else(|| SimError::MissingTensor {
            tensor: tp.tensor.clone(),
        })?;
        let (levels, parts_of, merges) = build_levels(tp, ts, &leader_chunks);
        let prefix = prefix_counts(&levels, ts, &parts_of);
        for (e, w) in merges {
            counts.merges.push((tp.tensor.clone(), e, w));
        }

        // Joined rank names per descent depth (mirrors the engine's
        // access_rank_names, which joins multi-descent levels with "/").
        let ai = models.len();
        let wo = &tp.working_order;
        let order: Vec<String> = if wo.is_empty() {
            levels.iter().map(|l| l.name.clone()).collect()
        } else {
            wo.clone()
        };
        let mut joined_by_depth = Vec::new();
        let mut k = 0usize;
        for level in &plan.access_roles[ai].roles {
            let n = level.len();
            let names: Vec<String> = (k..k + n)
                .map(|d| order.get(d).cloned().ok_or(()))
                .collect::<Result<_, _>>()
                .map_err(|_| SimError::PhantomRank {
                    tensor: tp.tensor.clone(),
                    depth: k,
                    working_order: order.clone(),
                })?;
            let joined = names.join("/");
            for _ in 0..n {
                joined_by_depth.push(joined.clone());
            }
            k += n;
        }
        // Reorder levels to the working order by name when they diverge
        // (they match after the final swizzle step; this is a guard).
        let mut ordered = Vec::with_capacity(levels.len());
        for w in &order {
            if let Some(i) = levels.iter().position(|l| l.name == *w) {
                ordered.push(levels[i].clone());
            }
        }
        let levels = if ordered.len() == levels.len() {
            ordered
        } else {
            levels
        };
        let prefix = if levels.len() + 1 == prefix.len() {
            prefix_counts(&levels, ts, &parts_of)
        } else {
            prefix
        };

        models.push(Model {
            tensor: tp.tensor.clone(),
            levels,
            prefix,
            joined_by_depth,
            depth: 0,
            presence: 1.0,
        });
    }

    // Walk the loop nest in expectation.
    let mut body = 1.0f64;
    let mut space_positions = 1.0f64;
    // Touches per access: (depth, expected count).
    let mut touches: Vec<Vec<f64>> = models.iter().map(|m| vec![0.0; m.levels.len()]).collect();
    for (li, lr) in plan.loop_ranks.iter().enumerate() {
        let drivers: Vec<usize> = (0..accesses.len())
            .filter(|&ai| plan.access_roles[ai].roles[li].contains(&Descent::CoIterate))
            .collect();
        let opens = body;

        // Effective per-driver occupancies (presence-weighted in union
        // mode) and the normalizing coordinate extent.
        let cs: Vec<f64> = drivers
            .iter()
            .map(|&ai| models[ai].fiber_occ() * models[ai].presence)
            .collect();
        let per_open = if drivers.is_empty() {
            let root = lr
                .binds
                .first()
                .map(|(r, _)| r.clone())
                .unwrap_or_else(|| lr.name.clone());
            *extents
                .get(&root)
                .ok_or(SimError::MissingExtent { rank: root })? as f64
        } else {
            let e = drivers
                .iter()
                .map(|&ai| models[ai].cur_extent())
                .fold(1.0f64, f64::max)
                .max(cs.iter().cloned().fold(0.0f64, f64::max));
            if union_mode {
                let miss: f64 = cs.iter().map(|c| 1.0 - (c / e).clamp(0.0, 1.0)).product();
                (e * (1.0 - miss))
                    .max(cs.iter().cloned().fold(0.0, f64::max))
                    .min(cs.iter().sum())
            } else {
                // Nested patterns are not independent: when one driver's
                // pattern is known to lie inside another's
                // (`pattern_subset_of`, e.g. Gamma's Z co-iterates the
                // intermediate T against the very A that produced it),
                // the expected overlap is the subset's occupancy alone —
                // drop the containing driver's factor from the hit
                // product instead of undercounting by `c/E`.
                let mut redundant = vec![false; drivers.len()];
                for (i, &ai) in drivers.iter().enumerate() {
                    if redundant[i] {
                        continue;
                    }
                    let Some(ts) = env.get(&models[ai].tensor) else {
                        continue;
                    };
                    for (j, &aj) in drivers.iter().enumerate() {
                        if i != j && ts.pattern_subset_of.contains(&models[aj].tensor) {
                            redundant[j] = true;
                        }
                    }
                }
                let hit: f64 = cs
                    .iter()
                    .zip(&redundant)
                    .filter(|(_, r)| !**r)
                    .map(|(c, _)| (c / e).clamp(0.0, 1.0))
                    .product();
                (e * hit).min(cs.iter().cloned().fold(f64::INFINITY, f64::min))
            }
        };
        let visits = opens * per_open;
        *counts.loop_visits.entry(lr.name.clone()).or_insert(0.0) += visits;

        // Spatial position count: the engine indexes PEs by the position
        // of each emitted coordinate, so distinct positions per spatial
        // rank are bounded by the coordinate universe (an occupancy-split
        // lower holds at most `size` coordinates per chunk when its upper
        // sibling is iterated above it) and by the total visit count. We
        // assume the positions are fully utilized — optimistic, but
        // uniform across candidates, and the engine re-ranks survivors
        // exactly.
        if lr.is_space {
            let mut cap = f64::INFINITY;
            for &ai in &drivers {
                let m = &models[ai];
                if let Some(l) = m.levels.get(m.depth) {
                    let mut c = l.universe.max(1.0);
                    if let Some((upper, s)) = &l.occ_cap {
                        if plan.loop_ranks[..li].iter().any(|p| p.name == *upper) {
                            c = c.min(s.max(1.0));
                        }
                    }
                    cap = cap.min(c);
                }
            }
            if !cap.is_finite() {
                cap = per_open.max(1.0);
            }
            space_positions *= cap.min(visits.max(1.0)).max(1.0);
        }

        // Intersection-unit comparisons (charged only with >1 live
        // operand, like the engine).
        if drivers.len() > 1 {
            let sum: f64 = cs.iter().sum();
            let cmax = cs.iter().cloned().fold(0.0f64, f64::max);
            let cmin = cs.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
            let per_open_cmp = if union_mode {
                let stages = (drivers.len() as f64).log2().ceil().max(1.0);
                sum * stages
            } else {
                match policy {
                    IntersectPolicy::TwoFinger => (sum - per_open).max(cmax),
                    IntersectPolicy::LeaderFollower { leader } => {
                        cs.get(leader).copied().unwrap_or(cmax)
                    }
                    IntersectPolicy::SkipAhead => cmin * (1.0 + (1.0 + cmax / cmin).log2()),
                }
            };
            *counts
                .intersect_by_rank
                .entry(lr.name.clone())
                .or_insert(0.0) += opens * per_open_cmp;
        }

        // Drivers descend: each emitted coordinate touches each present
        // driver once.
        for (di, &ai) in drivers.iter().enumerate() {
            let frac = if union_mode && per_open > 0.0 {
                (cs[di] / per_open).min(1.0)
            } else {
                1.0
            };
            let d = models[ai].depth;
            if d < touches[ai].len() {
                touches[ai][d] += visits * frac;
            }
            if union_mode {
                models[ai].presence = frac;
            }
            models[ai].depth += 1;
        }

        // Non-driver descents: projections and affine lookups probe and
        // touch on hit; in intersection mode a miss kills the body.
        let mut after = visits;
        for (ai, roles) in plan.access_roles.iter().enumerate() {
            for dsc in &roles.roles[li] {
                match dsc {
                    Descent::CoIterate => {}
                    Descent::Project { .. } | Descent::Affine { .. } => {
                        let c = models[ai].fiber_occ();
                        let e = models[ai].cur_extent();
                        let p_hit = (c / e).clamp(0.0, 1.0);
                        let d = models[ai].depth;
                        if union_mode {
                            let charged = after * models[ai].presence * p_hit;
                            if d < touches[ai].len() {
                                touches[ai][d] += charged;
                            }
                            models[ai].presence *= p_hit;
                        } else {
                            if d < touches[ai].len() {
                                touches[ai][d] += after * p_hit;
                            }
                            after *= p_hit;
                        }
                        models[ai].depth += 1;
                    }
                }
            }
        }

        body = after;
    }

    // Leaf accounting.
    let (emitted, muls, term_adds) = match &plan.equation.rhs {
        Rhs::Take { .. } => (body, 0.0, 0.0),
        Rhs::SumOfProducts(terms) => {
            if terms.len() == 1 {
                let f = terms[0].1.factors.len() as f64;
                (body, body * (f - 1.0).max(0.0), 0.0)
            } else {
                let mut ai = 0usize;
                let mut sum_p = 0.0f64;
                let mut none_p = 1.0f64;
                let mut mul_rate = 0.0f64;
                for (_, product) in terms {
                    let mut p_term = 1.0f64;
                    for _ in &product.factors {
                        p_term *= models[ai].presence;
                        ai += 1;
                    }
                    sum_p += p_term;
                    none_p *= 1.0 - p_term.clamp(0.0, 1.0);
                    mul_rate += p_term * (product.factors.len() as f64 - 1.0).max(0.0);
                }
                let p_any = (1.0 - none_p).clamp(0.0, 1.0);
                let emitted = body * p_any;
                (emitted, body * mul_rate, (body * sum_p - emitted).max(0.0))
            }
        }
    };
    let _ = take_mode;

    // Distinct outputs via the uniform model over the target ranks.
    let target = &plan.output.target_order;
    let u_out: f64 = target
        .iter()
        .map(|r| extents.get(r).copied().unwrap_or(u64::MAX) as f64)
        .fold(1.0, |a, b| (a * b).min(1e300));
    let d_out = distinct_estimate(u_out, emitted).min(emitted);
    counts.output_writes = d_out;
    counts.output_updates = (emitted - d_out).max(0.0);
    counts.muls = muls;
    counts.adds = term_adds + counts.output_updates;
    let total_ops = counts.muls + counts.adds;
    counts.spaces = if total_ops > 0.0 {
        space_positions.round().max(1.0)
    } else {
        0.0
    };
    counts.max_pe_ops = if counts.spaces > 0.0 {
        (total_ops / counts.spaces).ceil()
    } else {
        0.0
    };

    // Partial-output drains across reduction epochs.
    let out_elem_bits = instruments.output.elem_bits as f64;
    if let Some(evict) = &instruments.output.evict_on {
        let epochs = 1.0 + counts.loop_visits.get(evict).copied().unwrap_or(0.0);
        if epochs > 1.0 && d_out > 0.0 {
            let visits_per_key = emitted / d_out;
            let epochs_touched = epochs.min(visits_per_key);
            let events = d_out * (epochs_touched - 1.0).max(0.0);
            counts.output_partial_bits = 2.0 * events * out_elem_bits;
        }
    }

    // Output footprint (exactly collect_stats' gating; the footprint
    // itself is the format formula over estimated per-level counts).
    let binding = sim.spec().binding.for_einsum(&name);
    let own_storage = binding.storage_for(&name);
    let output_pinned = !own_storage.is_empty()
        && own_storage
            .iter()
            .all(|s| s.evict_on.is_none() && sim.is_pinnable_buffet(&binding, &s.component));
    let out_prefix = uniform_prefix(target, extents, d_out);
    if !(sim.on_chip_set().contains(&name) || output_pinned) {
        let out_fmt = sim.spec().format.config_or_default(&name, None, target);
        counts.output_write_bits = footprint_bits(&out_fmt, target, extents, &out_prefix);
    }

    // Output online-swizzle merge work.
    if plan.output.online_swizzle && plan.output.produced_order != *target {
        let produced = &plan.output.produced_order;
        let p = produced
            .iter()
            .zip(target.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let pp = uniform_prefix(produced, extents, d_out);
        if p < produced.len() {
            let ways = pp[p + 1] / pp[p].max(1.0);
            counts.merges.push((name.clone(), d_out, ways));
        }
    }

    // Per-tensor traffic: aggregate touches over accesses, then apply the
    // channel model (buffet epochs, eager subtrees, cache misses).
    for tp in &plan.tensor_plans {
        let Some(ch) = instruments.tensors.get(&tp.tensor) else {
            continue;
        };
        let cfg = ch.cfg();
        let mut per_depth: Vec<(String, f64, f64)> = Vec::new(); // (joined, touches, elements)
        for (ai, m) in models.iter().enumerate() {
            if m.tensor != tp.tensor {
                continue;
            }
            for (d, t) in touches[ai].iter().enumerate() {
                let joined = m
                    .joined_by_depth
                    .get(d)
                    .cloned()
                    .unwrap_or_else(|| m.levels[d].name.clone());
                let elems = m.prefix[d + 1];
                match per_depth.iter_mut().find(|(j, _, _)| *j == joined) {
                    Some(slot) => slot.1 += t,
                    None => per_depth.push((joined, *t, elems)),
                }
            }
        }
        let est = estimate_channel(cfg, &per_depth, &counts.loop_visits, &models, &tp.tensor);
        counts.tensors.insert(tp.tensor.clone(), est);
    }

    // Synthetic output statistics for downstream plans.
    let out_levels: Vec<(String, u64, u64)> = target
        .iter()
        .enumerate()
        .map(|(k, r)| {
            (
                r.clone(),
                extents.get(r).copied().unwrap_or(1),
                out_prefix[k + 1].round() as u64,
            )
        })
        .collect();
    let mut out_stats = TensorStats::synthetic(&name, &out_levels);
    // Producer marginal caps: the output's projection onto the ranks one
    // rhs access binds has at most that access's nnz distinct tuples
    // (every emitted output coordinate restricted to those ranks is a
    // nonzero coordinate of that input). Downstream plans use these to
    // bound prefix counts the uniform model would overstate.
    for a in &accesses {
        let Some(ats) = env.get(&a.tensor) else {
            continue;
        };
        let bound: Vec<String> = a
            .vars()
            .iter()
            .map(|v| v.to_uppercase())
            .filter(|r| target.contains(r))
            .collect();
        if !bound.is_empty() && !out_stats.marginal_caps.contains(&(bound.clone(), ats.nnz)) {
            out_stats.marginal_caps.push((bound, ats.nnz));
        }
    }
    // Pattern nesting: a single-product (or take) output only has a
    // coordinate where every operand does, so its pattern nests inside
    // each operand's — and transitively inside the operands' own
    // ancestors. Downstream plans that co-iterate this output against one
    // of those tensors must not model the overlap as independent.
    let single_product = match &plan.equation.rhs {
        Rhs::SumOfProducts(terms) => terms.len() == 1,
        Rhs::Take { .. } => true,
    };
    if single_product {
        for a in &accesses {
            if !out_stats.pattern_subset_of.contains(&a.tensor) {
                out_stats.pattern_subset_of.push(a.tensor.clone());
            }
            if let Some(ats) = env.get(&a.tensor) {
                for anc in &ats.pattern_subset_of {
                    if !out_stats.pattern_subset_of.contains(anc) {
                        out_stats.pattern_subset_of.push(anc.clone());
                    }
                }
            }
        }
    }

    let tensor_order: Vec<String> = plan
        .tensor_plans
        .iter()
        .map(|tp| tp.tensor.clone())
        .collect();
    Ok((counts.into_einsum_stats(&name, &tensor_order), out_stats))
}

/// Uniform-model prefix counts for `n` items over the given rank order.
fn uniform_prefix(order: &[String], extents: &BTreeMap<String, u64>, n: f64) -> Vec<f64> {
    let mut p = vec![1.0f64];
    let mut u = 1.0f64;
    for r in order {
        u = (u * extents.get(r).copied().unwrap_or(1).max(1) as f64).min(1e300);
        let prev = *p.last().expect("non-empty");
        p.push(distinct_estimate(u, n).max(prev.min(n)));
    }
    if let Some(last) = p.last_mut() {
        *last = n;
    }
    let d = p.len() - 1;
    for k in (1..d).rev() {
        p[k] = p[k].min(p[k + 1]);
    }
    p
}

/// Expected format footprint in bits over estimated per-level counts
/// (mirrors `TensorFormat::footprint_from_parts`).
fn footprint_bits(
    fmt: &teaal_core::spec::TensorFormat,
    order: &[String],
    extents: &BTreeMap<String, u64>,
    prefix: &[f64],
) -> f64 {
    use teaal_core::spec::FormatType;
    let mut bits = 0.0f64;
    for (depth, rank) in order.iter().enumerate() {
        let default = teaal_core::spec::RankFormat::default();
        let rf = fmt.ranks.get(rank).unwrap_or(&default);
        let fibers = prefix[depth].max(0.0);
        let occ = prefix[depth + 1].max(0.0);
        let extent = extents.get(rank).copied().unwrap_or(0) as f64;
        bits += match rf.format {
            FormatType::C => rf.fhbits as f64 * fibers + (rf.cbits + rf.pbits) as f64 * occ,
            FormatType::U => rf.fhbits as f64 * fibers + rf.pbits as f64 * extent * fibers,
            FormatType::B => {
                rf.fhbits as f64 * fibers
                    + rf.cbits as f64 * extent * fibers
                    + rf.pbits as f64 * occ
            }
        };
    }
    bits
}

/// Applies the channel traffic model for one tensor: expected reads,
/// buffer bits, and DRAM fill bits under the buffet/eager/cache semantics
/// of [`crate::counters::TensorChannel`].
fn estimate_channel(
    cfg: &ChannelCfg,
    per_depth: &[(String, f64, f64)],
    loop_visits: &BTreeMap<String, f64>,
    models: &[Model],
    tensor: &str,
) -> EstimatedChannel {
    let mut est = EstimatedChannel::default();
    for (joined, t, _) in per_depth {
        est.reads += t;
        est.buffer_read_bits += t * cfg.bits_of(joined) as f64;
    }
    if !cfg.dram_backed {
        return est;
    }

    // Prefix counts of this tensor's model (for subtree sizing).
    let model = models.iter().find(|m| m.tensor == tensor);
    let eager_depth = cfg
        .eager_rank
        .as_deref()
        .and_then(|er| cfg.rank_bits.iter().position(|(r, _)| r == er));

    if let Some(lines) = cfg.cache_lines {
        // Cache: compulsory misses on distinct elements plus capacity
        // misses when the touched footprint exceeds the cache.
        let capacity = (lines as u64 * cfg.line_bits) as f64;
        let footprint: f64 = per_depth
            .iter()
            .map(|(j, _, n)| n * cfg.bits_of(j) as f64)
            .sum();
        let over = if footprint > capacity && footprint > 0.0 {
            1.0 - capacity / footprint
        } else {
            0.0
        };
        for (joined, t, n) in per_depth {
            let bits = cfg.bits_of(joined) as f64;
            let bits_per_line = (cfg.line_bits as f64).max(bits);
            let per_line = (bits_per_line / bits.max(1.0)).floor().max(1.0);
            let distinct = distinct_estimate(*n, *t);
            let miss_elems = distinct + (t - distinct).max(0.0) * over;
            est.fill_bits += miss_elems / per_line * bits_per_line;
        }
        return est;
    }

    // Buffet / fully-buffered path.
    let epochs = cfg
        .evict_on
        .as_deref()
        .map(|r| 1.0 + loop_visits.get(r).copied().unwrap_or(0.0))
        .unwrap_or(1.0);
    for (di, (joined, t, n)) in per_depth.iter().enumerate() {
        if let Some(ed) = eager_depth {
            if di > ed {
                continue; // deeper than the eager rank: on-chip only
            }
        }
        let distinct = distinct_estimate(*n, *t);
        let fills = if epochs > 1.0 {
            (epochs * distinct_estimate(*n, *t / epochs))
                .min(*t)
                .max(distinct)
        } else {
            distinct
        };
        let elem_bits = if eager_depth == Some(di) {
            // Eager: each fill brings the whole subtree below.
            let mut bits = cfg.bits_of(joined) as f64;
            if let Some(m) = model {
                let n_e = m.prefix.get(di + 1).copied().unwrap_or(1.0).max(1.0);
                for (j, (_, b)) in cfg.rank_bits.iter().enumerate().skip(di + 1) {
                    let n_j = m.prefix.get(j + 1).copied().unwrap_or(n_e);
                    bits += *b as f64 * (n_j / n_e);
                }
            }
            bits
        } else {
            cfg.bits_of(joined) as f64
        };
        est.fill_bits += fills * elem_bits;
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_core::TeaalSpec;
    use teaal_fibertree::TensorBuilder;

    fn base_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
        ))
        .unwrap()
    }

    fn inputs() -> Vec<Tensor> {
        let a = TensorBuilder::new("A", &["K", "M"], &[16, 16])
            .entries((0..40).map(|i| (vec![(i * 7) % 16, (i * 3) % 16], 1.0 + i as f64)))
            .build()
            .unwrap();
        let b = TensorBuilder::new("B", &["K", "N"], &[16, 16])
            .entries((0..40).map(|i| (vec![(i * 5) % 16, (i * 11) % 16], 2.0 + i as f64)))
            .build()
            .unwrap();
        vec![a, b]
    }

    #[test]
    fn estimate_tracks_measured_ranking_on_small_spmspm() {
        let spec = base_spec();
        let ins = inputs();
        let mut rows = Vec::new();
        for order in [
            ["M", "N", "K"],
            ["M", "K", "N"],
            ["N", "M", "K"],
            ["N", "K", "M"],
            ["K", "M", "N"],
            ["K", "N", "M"],
        ] {
            let mut s = spec.clone();
            s.mapping
                .loop_order
                .insert("Z".into(), order.iter().map(|r| r.to_string()).collect());
            let sim = Simulator::new(s).unwrap();
            let measured = sim.run(&ins).unwrap();
            let estimated = estimate(&sim, &ins).unwrap();
            rows.push((order, measured, estimated));
        }
        for (order, m, e) in &rows {
            let ms = &m.einsums[0];
            let es = &e.einsums[0];
            eprintln!(
                "{order:?}: time {:.3e}/{:.3e} muls {}/{} adds {}/{} isect {}/{} dram {}/{} bufrd {}/{}",
                m.seconds,
                e.seconds,
                ms.muls,
                es.muls,
                ms.adds,
                es.adds,
                ms.intersections,
                es.intersections,
                m.dram_bytes(),
                e.dram_bytes(),
                ms.traffic.iter().map(|t| t.buffer_read_bytes).sum::<u64>(),
                es.traffic.iter().map(|t| t.buffer_read_bytes).sum::<u64>(),
            );
        }
        // The estimated best candidate must be within 2x of the measured
        // best under the measured model (ranking fidelity, not absolute).
        let measured_best = rows
            .iter()
            .map(|(_, m, _)| m.seconds)
            .fold(f64::INFINITY, f64::min);
        let est_best_order = rows
            .iter()
            .min_by(|a, b| a.2.seconds.partial_cmp(&b.2.seconds).unwrap())
            .unwrap();
        assert!(
            est_best_order.1.seconds <= measured_best * 2.0 + 1e-12,
            "estimator-chosen order {:?} measures {:.3e}s vs true best {:.3e}s",
            est_best_order.0,
            est_best_order.1.seconds,
            measured_best
        );
    }
}
