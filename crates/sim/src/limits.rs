//! Resource budgets and cooperative cancellation.
//!
//! Long-running evaluation (batch requests, mapper searches, the future
//! `teaal serve` daemon) needs every run to be *interruptible*: a
//! pathological spec must degrade into a structured error carrying the
//! telemetry gathered so far — never a hang, an abort, or an unbounded
//! allocation. Two pieces provide that:
//!
//! - [`EvalLimits`] declares the budgets: a wall-clock deadline, a cap
//!   on engine steps (loop-rank visits), a cap on produced output
//!   entries, and a resident-byte bound for the shared caches.
//! - [`CancelToken`] enforces them cooperatively. It is a cheap shared
//!   handle (an `Arc` of atomics) charged by the engine's hot loop and
//!   polled at coarse boundaries — co-iteration streams, shard loops,
//!   transform steps, mapper candidates. The hot-loop cost is one
//!   relaxed `fetch_add` plus a compare; the `Instant::now()` deadline
//!   check is amortized to once per 1024 steps.
//!
//! Exceeding a budget surfaces as
//! [`SimError::DeadlineExceeded`] / [`SimError::BudgetExceeded`] /
//! [`SimError::Cancelled`], each carrying a [`Progress`] snapshot.
//! Because polls are amortized, enforcement is slightly lazy: a run may
//! overshoot a budget by up to one poll interval before the error
//! returns — the contract is prompt termination, not exact metering.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SimError;

/// How often (in engine steps) the token re-checks the wall clock and
/// the external cancel flag; budgets are checked on every charge.
const POLL_MASK_BITS: u32 = 10; // every 1024 steps

/// Declarative resource budgets for one evaluation (or one shared
/// session — attach the same limits to a context to bound its caches).
///
/// `None`/default means unbounded. Build with the `with_*` methods:
///
/// ```
/// use std::time::Duration;
/// let limits = teaal_sim::EvalLimits::default()
///     .with_deadline(Duration::from_millis(500))
///     .with_max_engine_steps(1_000_000);
/// assert!(limits.is_limited());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalLimits {
    /// Wall-clock budget, anchored when a [`CancelToken`] is created.
    pub deadline: Option<Duration>,
    /// Maximum engine steps (loop-rank visits across the whole run).
    pub max_engine_steps: Option<u64>,
    /// Maximum output entries materialized across all output tensors.
    pub max_output_entries: Option<u64>,
    /// Resident-byte bound shared by the evaluation caches (transform /
    /// plan / report); enforced by LRU eviction, not by erroring.
    pub max_resident_cache_bytes: Option<u64>,
}

impl EvalLimits {
    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the engine-step budget.
    #[must_use]
    pub fn with_max_engine_steps(mut self, steps: u64) -> Self {
        self.max_engine_steps = Some(steps);
        self
    }

    /// Sets the output-entry budget.
    #[must_use]
    pub fn with_max_output_entries(mut self, entries: u64) -> Self {
        self.max_output_entries = Some(entries);
        self
    }

    /// Sets the resident cache-byte bound.
    #[must_use]
    pub fn with_max_resident_cache_bytes(mut self, bytes: u64) -> Self {
        self.max_resident_cache_bytes = Some(bytes);
        self
    }

    /// Whether any budget is set (if not, the engine skips token
    /// plumbing entirely).
    pub fn is_limited(&self) -> bool {
        self != &EvalLimits::default()
    }

    /// Merges these limits against a server-side cap: each budget is
    /// the *tighter* of the two (`None` means unbounded on that side).
    ///
    /// This is how `teaal serve` derives per-request limits — the
    /// client's overrides can only shrink the daemon's defaults, never
    /// widen them:
    ///
    /// ```
    /// use std::time::Duration;
    /// use teaal_sim::EvalLimits;
    /// let server = EvalLimits::default()
    ///     .with_deadline(Duration::from_secs(5))
    ///     .with_max_engine_steps(1_000_000);
    /// let client = EvalLimits::default()
    ///     .with_deadline(Duration::from_secs(60))
    ///     .with_max_output_entries(10_000);
    /// let merged = client.clamped_by(&server);
    /// assert_eq!(merged.deadline, Some(Duration::from_secs(5)));
    /// assert_eq!(merged.max_engine_steps, Some(1_000_000));
    /// assert_eq!(merged.max_output_entries, Some(10_000));
    /// ```
    #[must_use]
    pub fn clamped_by(&self, cap: &EvalLimits) -> EvalLimits {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            }
        }
        EvalLimits {
            deadline: tighter(self.deadline, cap.deadline),
            max_engine_steps: tighter(self.max_engine_steps, cap.max_engine_steps),
            max_output_entries: tighter(self.max_output_entries, cap.max_output_entries),
            max_resident_cache_bytes: tighter(
                self.max_resident_cache_bytes,
                cap.max_resident_cache_bytes,
            ),
        }
    }
}

/// Work observed at the moment a budget tripped, carried inside the
/// structured error so callers keep partial telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Engine steps (loop-rank visits) performed.
    pub engine_steps: u64,
    /// Output entries materialized.
    pub output_entries: u64,
    /// Wall-clock milliseconds since the token was created.
    pub elapsed_ms: u64,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} engine steps, {} output entries, {} ms",
            self.engine_steps, self.output_entries, self.elapsed_ms
        )
    }
}

/// Which [`EvalLimits`] budget a [`SimError::BudgetExceeded`] names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// [`EvalLimits::max_engine_steps`].
    EngineSteps,
    /// [`EvalLimits::max_output_entries`].
    OutputEntries,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::EngineSteps => write!(f, "engine-step"),
            BudgetKind::OutputEntries => write!(f, "output-entry"),
        }
    }
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_outputs: Option<u64>,
    steps: AtomicU64,
    outputs: AtomicU64,
}

/// A shared cooperative-cancellation handle enforcing [`EvalLimits`].
///
/// Clones share one budget: charge it from any thread, cancel it from
/// any thread, and every holder observes the trip at its next poll.
/// The deadline is anchored at [`CancelToken::new`] — create the token
/// when the user's request starts, then share it across retries, graph
/// supersteps, or mapper candidates so the whole session shares one
/// clock.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// Creates a token enforcing `limits`, anchoring the deadline now.
    pub fn new(limits: &EvalLimits) -> Self {
        let start = Instant::now();
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                start,
                deadline: limits.deadline.map(|d| start + d),
                max_steps: limits.max_engine_steps,
                max_outputs: limits.max_output_entries,
                steps: AtomicU64::new(0),
                outputs: AtomicU64::new(0),
            }),
        }
    }

    /// A token with no budgets — it only trips if
    /// [`CancelToken::cancel`] is called.
    pub fn unlimited() -> Self {
        CancelToken::new(&EvalLimits::default())
    }

    /// Requests cancellation; every holder errors with
    /// [`SimError::Cancelled`] at its next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether external cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Work charged against this token so far.
    pub fn progress(&self) -> Progress {
        Progress {
            engine_steps: self.inner.steps.load(Ordering::Relaxed),
            output_entries: self.inner.outputs.load(Ordering::Relaxed),
            elapsed_ms: self.inner.start.elapsed().as_millis() as u64,
        }
    }

    /// Charges `n` engine steps; the hot-loop entry point.
    ///
    /// Cost is one relaxed `fetch_add` plus a compare. The wall-clock
    /// and external-cancel checks run only when the counter crosses a
    /// 1024-step boundary, so `Instant::now()` stays off the hot path.
    ///
    /// # Errors
    ///
    /// [`SimError::BudgetExceeded`] when the step budget is exhausted;
    /// [`SimError::Cancelled`] / [`SimError::DeadlineExceeded`] from
    /// the amortized poll.
    #[inline]
    pub fn charge_steps(&self, n: u64) -> Result<(), SimError> {
        let inner = &*self.inner;
        let old = inner.steps.fetch_add(n, Ordering::Relaxed);
        let new = old.saturating_add(n);
        if let Some(limit) = inner.max_steps {
            if new > limit {
                return Err(SimError::BudgetExceeded {
                    resource: BudgetKind::EngineSteps,
                    limit,
                    used: new,
                    progress: self.progress(),
                });
            }
        }
        if (old >> POLL_MASK_BITS) != (new >> POLL_MASK_BITS) {
            self.poll()?;
        }
        Ok(())
    }

    /// Charges `n` materialized output entries.
    ///
    /// # Errors
    ///
    /// [`SimError::BudgetExceeded`] when the output budget is
    /// exhausted.
    #[inline]
    pub fn charge_outputs(&self, n: u64) -> Result<(), SimError> {
        let inner = &*self.inner;
        let new = inner
            .outputs
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if let Some(limit) = inner.max_outputs {
            if new > limit {
                return Err(SimError::BudgetExceeded {
                    resource: BudgetKind::OutputEntries,
                    limit,
                    used: new,
                    progress: self.progress(),
                });
            }
        }
        Ok(())
    }

    /// Full check — external cancel flag, deadline, and both budgets.
    /// Called at coarse boundaries: stream starts, shard loops,
    /// transform steps, mapper candidates, graph supersteps.
    ///
    /// # Errors
    ///
    /// The matching [`SimError`] variant for whichever trip fires
    /// first, carrying a [`Progress`] snapshot.
    pub fn checkpoint(&self) -> Result<(), SimError> {
        self.poll()?;
        let inner = &*self.inner;
        if let Some(limit) = inner.max_steps {
            let used = inner.steps.load(Ordering::Relaxed);
            if used > limit {
                return Err(SimError::BudgetExceeded {
                    resource: BudgetKind::EngineSteps,
                    limit,
                    used,
                    progress: self.progress(),
                });
            }
        }
        if let Some(limit) = inner.max_outputs {
            let used = inner.outputs.load(Ordering::Relaxed);
            if used > limit {
                return Err(SimError::BudgetExceeded {
                    resource: BudgetKind::OutputEntries,
                    limit,
                    used,
                    progress: self.progress(),
                });
            }
        }
        Ok(())
    }

    /// The slow half of the amortized check: cancel flag + deadline.
    fn poll(&self) -> Result<(), SimError> {
        let inner = &*self.inner;
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(SimError::Cancelled {
                progress: self.progress(),
            });
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(SimError::DeadlineExceeded {
                    progress: self.progress(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_unbounded() {
        assert!(!EvalLimits::default().is_limited());
        let token = CancelToken::unlimited();
        for _ in 0..10 {
            token.charge_steps(10_000).unwrap();
        }
        token.charge_outputs(1 << 40).unwrap();
        token.checkpoint().unwrap();
    }

    #[test]
    fn clamping_takes_the_tighter_of_each_budget() {
        let server = EvalLimits::default()
            .with_deadline(Duration::from_millis(100))
            .with_max_engine_steps(50);
        let client = EvalLimits::default()
            .with_deadline(Duration::from_millis(500))
            .with_max_engine_steps(10)
            .with_max_output_entries(7);
        let merged = client.clamped_by(&server);
        assert_eq!(merged.deadline, Some(Duration::from_millis(100)));
        assert_eq!(merged.max_engine_steps, Some(10));
        assert_eq!(merged.max_output_entries, Some(7));
        assert_eq!(merged.max_resident_cache_bytes, None);
        // Clamping by unbounded caps is the identity.
        assert_eq!(client.clamped_by(&EvalLimits::default()), client);
        // Unbounded requests inherit the caps wholesale.
        assert_eq!(EvalLimits::default().clamped_by(&server), server);
    }

    #[test]
    fn step_budget_trips_with_progress() {
        let token = CancelToken::new(&EvalLimits::default().with_max_engine_steps(100));
        token.charge_steps(100).unwrap();
        let err = token.charge_steps(1).unwrap_err();
        match err {
            SimError::BudgetExceeded {
                resource: BudgetKind::EngineSteps,
                limit: 100,
                used: 101,
                progress,
            } => assert_eq!(progress.engine_steps, 101),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn output_budget_trips() {
        let token = CancelToken::new(&EvalLimits::default().with_max_output_entries(5));
        token.charge_outputs(5).unwrap();
        assert!(matches!(
            token.charge_outputs(1),
            Err(SimError::BudgetExceeded {
                resource: BudgetKind::OutputEntries,
                ..
            })
        ));
    }

    #[test]
    fn expired_deadline_fires_at_checkpoint() {
        let token = CancelToken::new(&EvalLimits::default().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            token.checkpoint(),
            Err(SimError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn deadline_fires_on_amortized_step_poll() {
        let token = CancelToken::new(&EvalLimits::default().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        // Single-step charges must still observe the deadline within one
        // poll interval (1024 steps).
        let mut tripped = None;
        for i in 0..2048 {
            if let Err(e) = token.charge_steps(1) {
                tripped = Some((i, e));
                break;
            }
        }
        let (steps, err) = tripped.expect("deadline observed within 2048 steps");
        assert!(steps < 2048);
        assert!(matches!(err, SimError::DeadlineExceeded { .. }));
    }

    #[test]
    fn external_cancel_is_shared_across_clones() {
        let token = CancelToken::unlimited();
        let clone = token.clone();
        clone.cancel();
        let err = token.checkpoint().unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }));
    }

    #[test]
    fn progress_display_is_humane() {
        let p = Progress {
            engine_steps: 7,
            output_entries: 3,
            elapsed_ms: 12,
        };
        assert_eq!(p.to_string(), "7 engine steps, 3 output entries, 12 ms");
    }
}
