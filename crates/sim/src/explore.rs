//! Mapping-space exploration (paper §10, future work).
//!
//! The paper positions TeAAL as the middle level of a hierarchical
//! design-space-exploration flow: faster than RTL, higher fidelity than
//! analytical models. This module provides the inner loop of such a flow:
//! enumerate candidate loop orders for one Einsum of a specification,
//! evaluate the candidates, and rank the mappings by the modeled
//! objective. Everything else in the specification (partitioning, formats,
//! architecture, bindings) stays fixed, demonstrating the separation of
//! concerns of Fig. 7.
//!
//! Two search modes share one candidate universe (permutations in Heap
//! order, skipping orders that fail to lower):
//!
//! - [`explore_loop_orders`] — the oracle: run every candidate through
//!   the executable engine on real tensors.
//! - [`explore_fast`] — the two-phase fast path: score every candidate
//!   with the analytical estimator ([`crate::estimate()`]), keep the top-K
//!   within a safety margin of the estimated best, and run only those
//!   survivors through the engine, re-ranked by exact results. Per
//!   candidate the estimator is O(plan size) instead of O(nnz), so large
//!   search spaces cost a handful of engine runs instead of hundreds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use teaal_core::TeaalSpec;
use teaal_fibertree::stats::StatsCache;
use teaal_fibertree::{Tensor, TensorData};

use crate::error::SimError;
use crate::estimate::estimate_data;
use crate::limits::{CancelToken, EvalLimits};
use crate::model::Simulator;
use crate::ops::OpTable;
use crate::pipeline::EvalContext;
use crate::report::SimReport;

/// What to optimize when ranking mappings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Objective {
    /// Modeled execution time (bottleneck analysis).
    #[default]
    Time,
    /// Modeled energy.
    Energy,
    /// DRAM traffic in bytes.
    Traffic,
}

/// One evaluated mapping candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The loop order tried (outermost first).
    pub loop_order: Vec<String>,
    /// Modeled execution time in seconds.
    pub seconds: f64,
    /// Modeled energy in joules.
    pub energy_joules: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Per-component busy seconds summed across fusion blocks (the
    /// bottleneck-analysis breakdown behind `seconds`) — what the CLI
    /// prints so a ranking explains *why* a mapping wins.
    pub component_seconds: BTreeMap<String, f64>,
}

/// Builds a [`Candidate`] from one report, folding the per-block
/// component times into a single breakdown.
fn candidate_from(loop_order: Vec<String>, report: &SimReport) -> Candidate {
    let mut component_seconds: BTreeMap<String, f64> = BTreeMap::new();
    for block in &report.blocks {
        for (component, secs) in &block.component_seconds {
            *component_seconds.entry(component.clone()).or_insert(0.0) += secs;
        }
    }
    Candidate {
        loop_order,
        seconds: report.seconds,
        energy_joules: report.energy_joules,
        dram_bytes: report.dram_bytes(),
        component_seconds,
    }
}

impl Candidate {
    /// The candidate's score under `objective` (lower is better).
    pub fn score(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Time => self.seconds,
            Objective::Energy => self.energy_joules,
            Objective::Traffic => self.dram_bytes as f64,
        }
    }
}

/// Configuration for the two-phase [`explore_fast`] search.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// What to optimize (both phases rank by this).
    pub objective: Objective,
    /// Maximum number of candidates admitted to the estimated universe
    /// (candidates that fail to lower are skipped, not charged).
    pub budget: usize,
    /// Maximum number of estimated candidates verified by the engine.
    /// The default (12) is sized for flat cost landscapes: when many
    /// mappings measure within a few percent of each other, estimator
    /// error exceeds the spread between candidates and the true winner
    /// can sit a handful of ranks down the estimated order.
    pub top_k: usize,
    /// Safety margin on the estimated best score: only candidates with
    /// `estimate ≤ best_estimate · margin` survive to verification (and
    /// at most `top_k` of them). Raise it when the estimator is expected
    /// to be less faithful (heavy value cancellation, skewed data).
    pub margin: f64,
    /// Worker threads for the engine-verification phase (the estimation
    /// sweep is sequential — it is orders of magnitude cheaper).
    pub threads: usize,
    /// Search-wide resource budgets. One [`CancelToken`] is created for
    /// the whole search and shared by every candidate evaluation, so
    /// the deadline and step budget bound the *search*, not each
    /// candidate; a trip aborts with the structured error.
    pub limits: EvalLimits,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            objective: Objective::Time,
            budget: 720,
            top_k: 12,
            margin: 1.5,
            threads: 1,
            limits: EvalLimits::default(),
        }
    }
}

/// Result of a two-phase [`explore_fast`] search.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Engine-verified survivors, re-ranked by *measured* objective
    /// (best first). `candidates[0]` is the search's answer.
    pub candidates: Vec<Candidate>,
    /// Every estimated candidate, ranked by *estimated* objective (best
    /// first) — the full pre-pruning picture, for margin diagnostics.
    pub estimated: Vec<Candidate>,
    /// Executable-engine evaluations performed (the expensive count).
    pub engine_evals: usize,
    /// Analytical estimator evaluations performed.
    pub estimator_evals: usize,
}

/// Explores loop orders for `einsum` within `spec`, evaluating each
/// candidate on `inputs` and returning candidates sorted by `objective`
/// (best first).
///
/// All permutations of the Einsum's derived iteration ranks are tried,
/// until `max_candidates` have been *successfully evaluated* (permutation
/// count grows factorially; 720 covers six ranks exhaustively).
/// Candidates whose loop order fails to lower — e.g. orders incompatible
/// with the fixed partitioning — are skipped and do not consume the
/// budget, so a small `max_candidates` still returns that many valid
/// mappings when they exist later in permutation order.
///
/// # Errors
///
/// Returns [`SimError`] if the base specification fails to lower or if
/// every candidate fails.
pub fn explore_loop_orders(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    objective: Objective,
    max_candidates: usize,
) -> Result<Vec<Candidate>, SimError> {
    explore_loop_orders_with_threads(spec, einsum, inputs, ops, objective, max_candidates, 1)
}

/// [`explore_loop_orders`] with candidate evaluation fanned out across up
/// to `threads` scoped workers.
///
/// Workers pull candidates from a shared work-stealing queue (an atomic
/// next-candidate index), so a slow mapping no longer stalls a whole
/// chunk of fast ones. Successes still count in permutation order until
/// the budget fills, so the returned set — and its ranking — is identical
/// to the sequential exploration for any thread count. Each candidate
/// simulation itself runs sequentially (the fan-out is across mappings,
/// not within one).
///
/// # Errors
///
/// As [`explore_loop_orders`].
pub fn explore_loop_orders_with_threads(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    objective: Objective,
    max_candidates: usize,
    threads: usize,
) -> Result<Vec<Candidate>, SimError> {
    explore_loop_orders_with_context(
        spec,
        einsum,
        inputs,
        ops,
        objective,
        max_candidates,
        threads,
        None,
    )
}

/// [`explore_loop_orders_with_threads`] with an optional shared
/// [`EvalContext`]: candidate specs compile through the context's plan
/// cache and every engine run shares the transform cache, so the search
/// never re-transforms an input it has already prepared. Results are
/// bit-identical with or without a context.
///
/// # Errors
///
/// As [`explore_loop_orders`].
#[allow(clippy::too_many_arguments)]
pub fn explore_loop_orders_with_context(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    objective: Objective,
    max_candidates: usize,
    threads: usize,
    context: Option<&Arc<EvalContext>>,
) -> Result<Vec<Candidate>, SimError> {
    let orders = candidate_orders(spec, einsum)?;

    // A candidate that fails to lower is skipped, not charged against the
    // budget (counting failures used to starve the budget and return
    // fewer valid mappings than exist). Spacetime entries may reference
    // ranks by name; they stay valid because the rank *set* is unchanged.
    let eval = |candidate: &[String]| -> Option<Candidate> {
        let mut s = spec.clone();
        s.mapping
            .loop_order
            .insert(einsum.to_string(), candidate.to_vec());
        let sim = match context {
            Some(ctx) => ctx.simulator(&s).ok()?,
            None => Simulator::new(s).ok()?,
        };
        let report = sim.with_ops(ops).with_threads(1).run(inputs).ok()?;
        Some(candidate_from(candidate.to_vec(), &report))
    };

    let mut results = evaluate_candidates(&orders, max_candidates, threads, &eval);
    if results.is_empty() {
        return Err(SimError::Spec(teaal_core::SpecError::Validation {
            context: format!("einsum {einsum}"),
            message: "no loop-order candidate lowered and executed successfully".into(),
        }));
    }
    sort_by_score(&mut results, objective);
    Ok(results)
}

/// Two-phase pruned search: estimate **all** candidates analytically,
/// keep the [`ExploreConfig::top_k`] best within
/// [`ExploreConfig::margin`] of the estimated optimum, and verify only
/// those survivors on the executable engine (the oracle), re-ranked by
/// exact results.
///
/// The estimator never touches tensor data — per-tensor statistics are
/// computed once (one O(nnz) pass per input, memoized) and every
/// candidate is then scored from statistics alone — so the sweep over
/// hundreds of loop orders costs about as much as a single engine run.
/// Pruning is heuristic: a mapping whose true cost the estimator
/// overstates by more than the margin can be cut. On the four SpMSpM
/// catalog specs the default margin keeps the true winner (pinned by
/// integration tests); widen it for adversarial value distributions.
///
/// # Errors
///
/// As [`explore_loop_orders`], plus the same error when every survivor
/// fails to execute.
pub fn explore_fast(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    config: &ExploreConfig,
) -> Result<ExploreOutcome, SimError> {
    explore_fast_with_context(spec, einsum, inputs, ops, config, None)
}

/// [`explore_fast`] with an optional shared [`EvalContext`]: the
/// estimation sweep reads per-tensor statistics from the context's
/// [`StatsCache`], candidate specs compile through the plan cache, and
/// the verification phase shares the transform cache — a warm context
/// re-runs the whole search with zero redundant input transforms (pinned
/// by the `pipeline_cache` suite). Results are bit-identical with or
/// without a context.
///
/// # Errors
///
/// As [`explore_fast`].
pub fn explore_fast_with_context(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    config: &ExploreConfig,
    context: Option<&Arc<EvalContext>>,
) -> Result<ExploreOutcome, SimError> {
    let orders = candidate_orders(spec, einsum)?;
    // One token for the whole search: the deadline anchors here and
    // every candidate (estimation or engine) charges the same budget.
    let token = config
        .limits
        .is_limited()
        .then(|| CancelToken::new(&config.limits));

    // Phase 1: estimate every lowerable candidate from cached statistics.
    let datas: Vec<TensorData> = inputs
        .iter()
        .map(|t| TensorData::Owned(t.clone()))
        .collect();
    let refs: Vec<&TensorData> = datas.iter().collect();
    let local_stats;
    let cache: &StatsCache = match context {
        Some(ctx) => ctx.stats(),
        None => {
            local_stats = StatsCache::new();
            &local_stats
        }
    };
    let mut estimated: Vec<Candidate> = Vec::new();
    let mut estimator_evals = 0usize;
    for candidate in &orders {
        if estimated.len() >= config.budget {
            break;
        }
        // Candidate boundary: a tripped search budget aborts between
        // estimates, never mid-way through one.
        if let Some(t) = &token {
            t.checkpoint()?;
        }
        let mut s = spec.clone();
        s.mapping
            .loop_order
            .insert(einsum.to_string(), candidate.clone());
        let sim = match context {
            Some(ctx) => {
                let Ok(sim) = ctx.simulator(&s) else {
                    continue;
                };
                sim
            }
            None => {
                let Ok(sim) = Simulator::new(s) else {
                    continue;
                };
                sim
            }
        };
        estimator_evals += 1;
        let Ok(report) = estimate_data(&sim, &refs, cache) else {
            continue;
        };
        estimated.push(candidate_from(candidate.clone(), &report));
    }
    if estimated.is_empty() {
        return Err(SimError::Spec(teaal_core::SpecError::Validation {
            context: format!("einsum {einsum}"),
            message: "no loop-order candidate lowered and estimated successfully".into(),
        }));
    }
    sort_by_score(&mut estimated, config.objective);

    // Phase 2: engine-verify the survivors within the safety margin.
    let best = estimated[0].score(config.objective);
    let cutoff = best * config.margin.max(1.0);
    let survivors: Vec<Vec<String>> = estimated
        .iter()
        .take(config.top_k.max(1))
        .filter(|c| c.score(config.objective) <= cutoff || best == 0.0)
        .map(|c| c.loop_order.clone())
        .collect();

    // A budget/deadline/cancel trip inside a candidate must abort the
    // whole search with that structured error, not silently skip the
    // candidate; the closure parks it here for the caller to propagate.
    let aborted: Mutex<Option<SimError>> = Mutex::new(None);
    let eval = |candidate: &[String]| -> Option<Candidate> {
        if let Some(t) = &token {
            if let Err(e) = t.checkpoint() {
                aborted
                    .lock()
                    .expect("abort slot poisoned")
                    .get_or_insert(e);
                return None;
            }
        }
        if teaal_core::failpoint::hit("explore.candidate").is_err() {
            return None;
        }
        let mut s = spec.clone();
        s.mapping
            .loop_order
            .insert(einsum.to_string(), candidate.to_vec());
        let sim = match context {
            Some(ctx) => ctx.simulator(&s).ok()?,
            None => Simulator::new(s).ok()?,
        };
        let mut sim = sim.with_ops(ops).with_threads(1);
        if let Some(t) = &token {
            sim = sim.with_cancel(t.clone());
        }
        match sim.run(inputs) {
            Ok(report) => Some(candidate_from(candidate.to_vec(), &report)),
            Err(
                e @ (SimError::DeadlineExceeded { .. }
                | SimError::BudgetExceeded { .. }
                | SimError::Cancelled { .. }),
            ) => {
                aborted
                    .lock()
                    .expect("abort slot poisoned")
                    .get_or_insert(e);
                None
            }
            Err(_) => None,
        }
    };
    let engine_evals = survivors.len();
    let mut candidates = evaluate_candidates(&survivors, survivors.len(), config.threads, &eval);
    if let Some(e) = aborted.into_inner().expect("abort slot poisoned") {
        return Err(e);
    }
    if candidates.is_empty() {
        return Err(SimError::Spec(teaal_core::SpecError::Validation {
            context: format!("einsum {einsum}"),
            message: "no surviving candidate executed successfully".into(),
        }));
    }
    sort_by_score(&mut candidates, config.objective);

    Ok(ExploreOutcome {
        candidates,
        estimated,
        engine_evals,
        estimator_evals,
    })
}

/// All loop-order permutations for `einsum` in Heap order — the shared
/// candidate universe of every search mode.
fn candidate_orders(spec: &TeaalSpec, einsum: &str) -> Result<Vec<Vec<String>>, SimError> {
    let base = Simulator::new(spec.clone())?;
    let plan = base
        .plans()
        .iter()
        .find(|p| p.equation.name() == einsum)
        .ok_or_else(|| SimError::MissingTensor {
            tensor: einsum.to_string(),
        })?;
    let ranks: Vec<String> = plan.loop_ranks.iter().map(|l| l.name.clone()).collect();
    let mut orders: Vec<Vec<String>> = Vec::new();
    let mut order = ranks;
    permute(&mut order, 0, &mut |candidate| {
        orders.push(candidate.to_vec());
    });
    Ok(orders)
}

/// Sorts candidates best-first under `objective`, breaking exact score
/// ties by loop order so the ranking is deterministic regardless of the
/// order candidates were evaluated in (the pruned and exhaustive searches
/// must agree on the winner even when two mappings cost the same).
fn sort_by_score(results: &mut [Candidate], objective: Objective) {
    // `total_cmp`, not `partial_cmp().expect(...)`: a degenerate spec
    // (zero bandwidth/clock) can model a NaN score, which must rank
    // deterministically (worst) instead of panicking mid-sort.
    results.sort_by(|a, b| {
        a.score(objective)
            .total_cmp(&b.score(objective))
            .then_with(|| a.loop_order.cmp(&b.loop_order))
    });
}

/// Evaluates `orders` in index order until `max_successes` candidates
/// succeed, fanning the work across up to `threads` workers that claim
/// candidates from a shared atomic queue (work stealing — no static
/// chunking, so one slow candidate never idles the other workers).
///
/// Deterministic for any thread count: results are collected in index
/// order, and early stopping triggers only when the *contiguous
/// completed prefix* already contains `max_successes` successes — exactly
/// the sequential stopping point. Work claimed past that point is wasted,
/// never observed.
fn evaluate_candidates(
    orders: &[Vec<String>],
    max_successes: usize,
    threads: usize,
    eval: &(impl Fn(&[String]) -> Option<Candidate> + Sync),
) -> Vec<Candidate> {
    let threads = threads.max(1).min(orders.len().max(1));
    let slots: Vec<OnceLock<Option<Candidate>>> =
        (0..orders.len()).map(|_| OnceLock::new()).collect();
    // Panic isolation: a candidate whose evaluation panics is skipped
    // (slot = None) instead of tearing down the search or poisoning the
    // worker pool.
    let eval_isolated = |order: &[String]| -> Option<Candidate> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval(order))).unwrap_or(None)
    };

    if threads <= 1 {
        let mut results = Vec::new();
        for (i, order) in orders.iter().enumerate() {
            let _ = slots[i].set(eval_isolated(order));
            if let Some(Some(c)) = slots[i].get() {
                results.push(c.clone());
                if results.len() >= max_successes {
                    break;
                }
            }
        }
        return results;
    }

    // Watermark = length of the contiguous prefix of evaluated slots;
    // successes counts within that prefix only.
    struct Progress {
        watermark: usize,
        successes: usize,
    }
    let progress = Mutex::new(Progress {
        watermark: 0,
        successes: 0,
    });
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= orders.len() {
                    break;
                }
                let result = eval_isolated(&orders[i]);
                let _ = slots[i].set(result);
                let mut p = progress.lock().expect("explore progress poisoned");
                while p.watermark < orders.len() {
                    let Some(done) = slots[p.watermark].get() else {
                        break;
                    };
                    if done.is_some() {
                        p.successes += 1;
                    }
                    p.watermark += 1;
                    if p.successes >= max_successes {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    // Collect in index order — identical to the sequential walk.
    let mut results = Vec::new();
    for slot in &slots {
        let Some(done) = slot.get() else {
            break;
        };
        if let Some(c) = done {
            results.push(c.clone());
            if results.len() >= max_successes {
                break;
            }
        }
    }
    results
}

/// Heap's algorithm, calling `visit` for every permutation of `items`.
fn permute(items: &mut [String], k: usize, visit: &mut impl FnMut(&[String])) {
    if k == items.len() {
        visit(items);
        return;
    }
    // Recursive Heap variant: stable enough for the small rank counts
    // mappings have (≤ 9 in every spec in this repository).
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_fibertree::TensorBuilder;

    fn base_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
        ))
        .unwrap()
    }

    fn inputs() -> Vec<Tensor> {
        let a = TensorBuilder::new("A", &["K", "M"], &[8, 8])
            .entries((0..8).map(|i| (vec![i, (i * 3) % 8], 1.0 + i as f64)))
            .build()
            .unwrap();
        let b = TensorBuilder::new("B", &["K", "N"], &[8, 8])
            .entries((0..8).map(|i| (vec![i, (i * 5) % 8], 2.0 + i as f64)))
            .build()
            .unwrap();
        vec![a, b]
    }

    #[test]
    fn explores_all_six_permutations_of_three_ranks() {
        let results = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        assert_eq!(results.len(), 6);
        // Sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
        // Every candidate is a permutation of {M, N, K}.
        for c in &results {
            let mut lo = c.loop_order.clone();
            lo.sort();
            assert_eq!(lo, vec!["K", "M", "N"]);
        }
    }

    #[test]
    fn candidate_cap_is_respected() {
        let results = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Traffic,
            2,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn objectives_rank_differently_when_models_disagree() {
        let by_time = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        let by_traffic = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Traffic,
            720,
        )
        .unwrap();
        // Same candidate set either way.
        assert_eq!(by_time.len(), by_traffic.len());
        // Traffic ordering is by dram_bytes.
        for w in by_traffic.windows(2) {
            assert!(w[0].dram_bytes <= w[1].dram_bytes);
        }
    }

    /// SIGMA-shaped spec: flattening (M, K0) leaves B's K0 coverable only
    /// when K1 precedes MK00 in the loop order, so 12 of the 24
    /// permutations fail to lower — including a contiguous block right
    /// after the first 8 successes in Heap order.
    fn partitioning_constrained_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
            "mapping:\n",
            "  partitioning:\n",
            "    Z:\n",
            "      K: [uniform_shape(4)]\n",
            "      (M, K0): [flatten()]\n",
            "      MK0: [uniform_occupancy(A.4)]\n",
            "  loop-order:\n",
            "    Z: [K1, MK01, MK00, N]\n",
        ))
        .unwrap()
    }

    #[test]
    fn failed_candidates_do_not_consume_the_budget() {
        // Heap order visits 8 lowerable candidates, then 3 that fail to
        // lower, and more lowerable ones after. A budget of 10 must
        // return 10 evaluated candidates — the buggy accounting charged
        // the failures against the budget and returned only 8.
        let results = explore_loop_orders(
            &partitioning_constrained_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            10,
        )
        .unwrap();
        assert_eq!(
            results.len(),
            10,
            "failing candidates must be skipped, not charged against max_candidates"
        );
        // Exhaustively, exactly the 12 valid permutations come back.
        let all = explore_loop_orders(
            &partitioning_constrained_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn threaded_exploration_matches_sequential() {
        // Fanning candidate evaluation across workers must not change the
        // candidate set, scores, or ranking — including when the budget
        // cuts off mid-chunk.
        for budget in [2usize, 10, 720] {
            let seq = explore_loop_orders(
                &partitioning_constrained_spec(),
                "Z",
                &inputs(),
                OpTable::arithmetic(),
                Objective::Time,
                budget,
            )
            .unwrap();
            for threads in [2usize, 4] {
                let par = explore_loop_orders_with_threads(
                    &partitioning_constrained_spec(),
                    "Z",
                    &inputs(),
                    OpTable::arithmetic(),
                    Objective::Time,
                    budget,
                    threads,
                )
                .unwrap();
                assert_eq!(seq.len(), par.len());
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.loop_order, b.loop_order);
                    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                    assert_eq!(a.energy_joules.to_bits(), b.energy_joules.to_bits());
                    assert_eq!(a.dram_bytes, b.dram_bytes);
                }
            }
        }
    }

    #[test]
    fn unknown_einsum_is_an_error() {
        let err = explore_loop_orders(
            &base_spec(),
            "Q",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            10,
        );
        assert!(err.is_err());
    }

    #[test]
    fn all_candidates_compute_the_same_result() {
        // Mapping changes performance, never the answer (§2.3).
        let spec = base_spec();
        let ins = inputs();
        let mut reference: Option<teaal_fibertree::TensorData> = None;
        let results = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        for c in &results {
            let mut s = spec.clone();
            s.mapping
                .loop_order
                .insert("Z".into(), c.loop_order.clone());
            let report = Simulator::new(s).unwrap().run(&ins).unwrap();
            let z = report.final_output().unwrap().clone();
            if let Some(r) = &reference {
                assert_eq!(r.max_abs_diff(&z), 0.0);
            }
            reference = Some(z);
        }
    }
}

#[cfg(test)]
mod fast_tests {
    use super::*;
    use teaal_fibertree::TensorBuilder;

    fn base_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
        ))
        .unwrap()
    }

    fn inputs() -> Vec<Tensor> {
        let a = TensorBuilder::new("A", &["K", "M"], &[16, 16])
            .entries((0..48).map(|i| (vec![(i * 7) % 16, (i * 3) % 16], 1.0 + i as f64)))
            .build()
            .unwrap();
        let b = TensorBuilder::new("B", &["K", "N"], &[16, 16])
            .entries((0..48).map(|i| (vec![(i * 5) % 16, (i * 11) % 16], 2.0 + i as f64)))
            .build()
            .unwrap();
        vec![a, b]
    }

    #[test]
    fn fast_search_agrees_with_exhaustive_top1() {
        let spec = base_spec();
        let ins = inputs();
        let exhaustive = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        let fast = explore_fast(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert!(fast.engine_evals < exhaustive.len());
        assert_eq!(fast.estimated.len(), exhaustive.len());
        // The verified winner scores no worse than the exhaustive winner
        // (loop orders may tie; compare scores, not labels).
        assert!(fast.candidates[0].seconds <= exhaustive[0].seconds + 1e-15);
    }

    #[test]
    fn fast_search_reports_eval_counts() {
        let fast = explore_fast(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            &ExploreConfig {
                top_k: 2,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert!(fast.engine_evals <= 2);
        assert_eq!(fast.estimator_evals, 6);
        assert!(!fast.candidates.is_empty());
        assert!(fast.candidates.len() <= fast.engine_evals);
    }

    #[test]
    fn fast_search_is_deterministic_across_threads() {
        let spec = base_spec();
        let ins = inputs();
        let seq = explore_fast(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            &ExploreConfig::default(),
        )
        .unwrap();
        let par = explore_fast(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            &ExploreConfig {
                threads: 4,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seq.candidates.len(), par.candidates.len());
        for (a, b) in seq.candidates.iter().zip(&par.candidates) {
            assert_eq!(a.loop_order, b.loop_order);
            assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        }
    }
}
