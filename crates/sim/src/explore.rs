//! Mapping-space exploration (paper §10, future work).
//!
//! The paper positions TeAAL as the middle level of a hierarchical
//! design-space-exploration flow: faster than RTL, higher fidelity than
//! analytical models. This module provides the inner loop of such a flow:
//! enumerate candidate loop orders for one Einsum of a specification, run
//! each candidate on real tensors, and rank the mappings by the modeled
//! objective. Everything else in the specification (partitioning, formats,
//! architecture, bindings) stays fixed, demonstrating the separation of
//! concerns of Fig. 7.

use teaal_core::TeaalSpec;
use teaal_fibertree::Tensor;

use crate::error::SimError;
use crate::model::Simulator;
use crate::ops::OpTable;

/// What to optimize when ranking mappings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Objective {
    /// Modeled execution time (bottleneck analysis).
    #[default]
    Time,
    /// Modeled energy.
    Energy,
    /// DRAM traffic in bytes.
    Traffic,
}

/// One evaluated mapping candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The loop order tried (outermost first).
    pub loop_order: Vec<String>,
    /// Modeled execution time in seconds.
    pub seconds: f64,
    /// Modeled energy in joules.
    pub energy_joules: f64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
}

impl Candidate {
    /// The candidate's score under `objective` (lower is better).
    pub fn score(&self, objective: Objective) -> f64 {
        match objective {
            Objective::Time => self.seconds,
            Objective::Energy => self.energy_joules,
            Objective::Traffic => self.dram_bytes as f64,
        }
    }
}

/// Explores loop orders for `einsum` within `spec`, evaluating each
/// candidate on `inputs` and returning candidates sorted by `objective`
/// (best first).
///
/// All permutations of the Einsum's derived iteration ranks are tried,
/// until `max_candidates` have been *successfully evaluated* (permutation
/// count grows factorially; 720 covers six ranks exhaustively).
/// Candidates whose loop order fails to lower — e.g. orders incompatible
/// with the fixed partitioning — are skipped and do not consume the
/// budget, so a small `max_candidates` still returns that many valid
/// mappings when they exist later in permutation order.
///
/// # Errors
///
/// Returns [`SimError`] if the base specification fails to lower or if
/// every candidate fails.
pub fn explore_loop_orders(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    objective: Objective,
    max_candidates: usize,
) -> Result<Vec<Candidate>, SimError> {
    explore_loop_orders_with_threads(spec, einsum, inputs, ops, objective, max_candidates, 1)
}

/// [`explore_loop_orders`] with candidate evaluation fanned out across up
/// to `threads` scoped workers.
///
/// Candidates are evaluated in permutation-order chunks and successes are
/// appended in permutation order until the budget fills, so the returned
/// set — and its ranking — is identical to the sequential exploration for
/// any thread count. Each candidate simulation itself runs sequentially
/// (the fan-out is across mappings, not within one).
///
/// # Errors
///
/// As [`explore_loop_orders`].
pub fn explore_loop_orders_with_threads(
    spec: &TeaalSpec,
    einsum: &str,
    inputs: &[Tensor],
    ops: OpTable,
    objective: Objective,
    max_candidates: usize,
    threads: usize,
) -> Result<Vec<Candidate>, SimError> {
    // Discover the derived iteration ranks from the baseline plan.
    let base = Simulator::new(spec.clone())?;
    let plan = base
        .plans()
        .iter()
        .find(|p| p.equation.name() == einsum)
        .ok_or_else(|| SimError::MissingTensor {
            tensor: einsum.to_string(),
        })?;
    let ranks: Vec<String> = plan.loop_ranks.iter().map(|l| l.name.clone()).collect();

    let mut orders: Vec<Vec<String>> = Vec::new();
    let mut order = ranks.clone();
    permute(&mut order, 0, &mut |candidate| {
        orders.push(candidate.to_vec());
    });

    // A candidate that fails to lower is skipped, not charged against the
    // budget (counting failures used to starve the budget and return
    // fewer valid mappings than exist). Spacetime entries may reference
    // ranks by name; they stay valid because the rank *set* is unchanged.
    let eval = |candidate: &[String]| -> Option<Candidate> {
        let mut s = spec.clone();
        s.mapping
            .loop_order
            .insert(einsum.to_string(), candidate.to_vec());
        let sim = Simulator::new(s).ok()?;
        let report = sim.with_ops(ops).with_threads(1).run(inputs).ok()?;
        Some(Candidate {
            loop_order: candidate.to_vec(),
            seconds: report.seconds,
            energy_joules: report.energy_joules,
            dram_bytes: report.dram_bytes(),
        })
    };

    let threads = threads.max(1);
    let mut results: Vec<Candidate> = Vec::new();
    let mut next = 0usize;
    while next < orders.len() && results.len() < max_candidates {
        let chunk = &orders[next..(next + threads).min(orders.len())];
        let evaluated: Vec<Option<Candidate>> = if threads > 1 && chunk.len() > 1 {
            std::thread::scope(|s| {
                let eval = &eval;
                let handles: Vec<_> = chunk.iter().map(|c| s.spawn(move || eval(c))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("explore worker panicked"))
                    .collect()
            })
        } else {
            chunk.iter().map(|c| eval(c)).collect()
        };
        for cand in evaluated.into_iter().flatten() {
            if results.len() < max_candidates {
                results.push(cand);
            }
        }
        next += chunk.len();
    }

    if results.is_empty() {
        return Err(SimError::Spec(teaal_core::SpecError::Validation {
            context: format!("einsum {einsum}"),
            message: "no loop-order candidate lowered and executed successfully".into(),
        }));
    }
    results.sort_by(|a, b| {
        a.score(objective)
            .partial_cmp(&b.score(objective))
            .expect("model outputs are finite")
    });
    Ok(results)
}

/// Heap's algorithm, calling `visit` for every permutation of `items`.
fn permute(items: &mut [String], k: usize, visit: &mut impl FnMut(&[String])) {
    if k == items.len() {
        visit(items);
        return;
    }
    // Recursive Heap variant: stable enough for the small rank counts
    // mappings have (≤ 9 in every spec in this repository).
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teaal_fibertree::TensorBuilder;

    fn base_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
        ))
        .unwrap()
    }

    fn inputs() -> Vec<Tensor> {
        let a = TensorBuilder::new("A", &["K", "M"], &[8, 8])
            .entries((0..8).map(|i| (vec![i, (i * 3) % 8], 1.0 + i as f64)))
            .build()
            .unwrap();
        let b = TensorBuilder::new("B", &["K", "N"], &[8, 8])
            .entries((0..8).map(|i| (vec![i, (i * 5) % 8], 2.0 + i as f64)))
            .build()
            .unwrap();
        vec![a, b]
    }

    #[test]
    fn explores_all_six_permutations_of_three_ranks() {
        let results = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        assert_eq!(results.len(), 6);
        // Sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
        // Every candidate is a permutation of {M, N, K}.
        for c in &results {
            let mut lo = c.loop_order.clone();
            lo.sort();
            assert_eq!(lo, vec!["K", "M", "N"]);
        }
    }

    #[test]
    fn candidate_cap_is_respected() {
        let results = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Traffic,
            2,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn objectives_rank_differently_when_models_disagree() {
        let by_time = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        let by_traffic = explore_loop_orders(
            &base_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Traffic,
            720,
        )
        .unwrap();
        // Same candidate set either way.
        assert_eq!(by_time.len(), by_traffic.len());
        // Traffic ordering is by dram_bytes.
        for w in by_traffic.windows(2) {
            assert!(w[0].dram_bytes <= w[1].dram_bytes);
        }
    }

    /// SIGMA-shaped spec: flattening (M, K0) leaves B's K0 coverable only
    /// when K1 precedes MK00 in the loop order, so 12 of the 24
    /// permutations fail to lower — including a contiguous block right
    /// after the first 8 successes in Heap order.
    fn partitioning_constrained_spec() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
            "mapping:\n",
            "  partitioning:\n",
            "    Z:\n",
            "      K: [uniform_shape(4)]\n",
            "      (M, K0): [flatten()]\n",
            "      MK0: [uniform_occupancy(A.4)]\n",
            "  loop-order:\n",
            "    Z: [K1, MK01, MK00, N]\n",
        ))
        .unwrap()
    }

    #[test]
    fn failed_candidates_do_not_consume_the_budget() {
        // Heap order visits 8 lowerable candidates, then 3 that fail to
        // lower, and more lowerable ones after. A budget of 10 must
        // return 10 evaluated candidates — the buggy accounting charged
        // the failures against the budget and returned only 8.
        let results = explore_loop_orders(
            &partitioning_constrained_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            10,
        )
        .unwrap();
        assert_eq!(
            results.len(),
            10,
            "failing candidates must be skipped, not charged against max_candidates"
        );
        // Exhaustively, exactly the 12 valid permutations come back.
        let all = explore_loop_orders(
            &partitioning_constrained_spec(),
            "Z",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn threaded_exploration_matches_sequential() {
        // Fanning candidate evaluation across workers must not change the
        // candidate set, scores, or ranking — including when the budget
        // cuts off mid-chunk.
        for budget in [2usize, 10, 720] {
            let seq = explore_loop_orders(
                &partitioning_constrained_spec(),
                "Z",
                &inputs(),
                OpTable::arithmetic(),
                Objective::Time,
                budget,
            )
            .unwrap();
            for threads in [2usize, 4] {
                let par = explore_loop_orders_with_threads(
                    &partitioning_constrained_spec(),
                    "Z",
                    &inputs(),
                    OpTable::arithmetic(),
                    Objective::Time,
                    budget,
                    threads,
                )
                .unwrap();
                assert_eq!(seq.len(), par.len());
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.loop_order, b.loop_order);
                    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                    assert_eq!(a.energy_joules.to_bits(), b.energy_joules.to_bits());
                    assert_eq!(a.dram_bytes, b.dram_bytes);
                }
            }
        }
    }

    #[test]
    fn unknown_einsum_is_an_error() {
        let err = explore_loop_orders(
            &base_spec(),
            "Q",
            &inputs(),
            OpTable::arithmetic(),
            Objective::Time,
            10,
        );
        assert!(err.is_err());
    }

    #[test]
    fn all_candidates_compute_the_same_result() {
        // Mapping changes performance, never the answer (§2.3).
        let spec = base_spec();
        let ins = inputs();
        let mut reference: Option<teaal_fibertree::TensorData> = None;
        let results = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        for c in &results {
            let mut s = spec.clone();
            s.mapping
                .loop_order
                .insert("Z".into(), c.loop_order.clone());
            let report = Simulator::new(s).unwrap().run(&ins).unwrap();
            let z = report.final_output().unwrap().clone();
            if let Some(r) = &reference {
                assert_eq!(r.max_abs_diff(&z), 0.0);
            }
            reference = Some(z);
        }
    }
}
