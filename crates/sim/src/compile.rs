//! Plan compilation: the reusable, execution-free front half of the
//! simulator.
//!
//! [`CompiledPlan`] is the `ParsedSpec → LoweredPlan` artifact of the
//! staged evaluation pipeline: lowering, fusion-block inference, on-chip
//! intermediate analysis, per-Einsum intersection-policy resolution, and
//! instrumentation-channel templates — everything about a specification
//! that does not depend on tensor data. A mapper probing hundreds of
//! loop orders, a batch of evaluation requests, or a graph driver
//! re-running its cascade every superstep compiles once (or fetches the
//! compiled artifact from an
//! [`EvalContext`](crate::pipeline::EvalContext) by
//! [`spec_hash`](teaal_core::canon::spec_hash)) and shares it behind an
//! [`Arc`](std::sync::Arc) across every
//! [`Simulator`](crate::Simulator) and thread.

use std::collections::{BTreeMap, BTreeSet};

use teaal_core::canon;
use teaal_core::ir::{self, EinsumBlock, EinsumPlan};
use teaal_core::spec::{BindStyle, BufferKind, ComponentClass, TeaalSpec};
use teaal_fibertree::IntersectPolicy;

use crate::counters::{ChannelCfg, Instruments};
use crate::error::SimError;

/// A specification compiled down to everything execution needs, with no
/// tensor data involved: plans, fusion blocks, on-chip intermediates,
/// and per-plan policy and instrumentation templates.
///
/// Immutable after construction and freely shareable across threads.
#[derive(Debug)]
pub struct CompiledPlan {
    spec: TeaalSpec,
    spec_hash: u64,
    plans: Vec<EinsumPlan>,
    blocks: Vec<EinsumBlock>,
    /// Intermediates whose producer and all consumers share a fused
    /// block: they live on-chip and never generate DRAM traffic
    /// (Gamma's `T`).
    on_chip: BTreeSet<String>,
    /// Resolved intersection policy per plan (parallel to `plans`).
    policies: Vec<IntersectPolicy>,
    /// Instrumentation-channel template per plan (parallel to `plans`);
    /// cloned fresh for every execution.
    templates: Vec<Instruments>,
}

impl CompiledPlan {
    /// Lowers and analyzes a specification.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when lowering fails.
    pub fn compile(spec: TeaalSpec) -> Result<Self, SimError> {
        let spec_hash = canon::spec_hash(&spec);
        let plans = ir::lower(&spec)?;
        let blocks = ir::infer_blocks(&spec, &plans);

        // Fusion keeps intermediates on-chip: when an Einsum's output and
        // every consumer of that output share one block, the tensor never
        // touches DRAM (paper §4.3 — Einsums "communicate by sharing
        // sub-tensors").
        let mut block_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (bi, b) in blocks.iter().enumerate() {
            for &m in &b.members {
                block_of.insert(plans[m].equation.name(), bi);
            }
        }
        let edges = spec.cascade.dag_edges();
        let mut on_chip = BTreeSet::new();
        for t in spec.cascade.intermediates() {
            let Some(&pb) = block_of.get(t.as_str()) else {
                continue;
            };
            let consumers: Vec<String> = edges
                .iter()
                .filter(|(p, _)| *p == t)
                .map(|(_, c)| c.clone())
                .collect();
            if !consumers.is_empty()
                && consumers
                    .iter()
                    .all(|c| block_of.get(c.as_str()) == Some(&pb))
            {
                on_chip.insert(t);
            }
        }

        let policies = plans
            .iter()
            .map(|p| resolve_intersect_policy(&spec, p))
            .collect();
        let templates = plans
            .iter()
            .map(|p| build_instruments(&spec, &on_chip, p))
            .collect();

        Ok(CompiledPlan {
            spec,
            spec_hash,
            plans,
            blocks,
            on_chip,
            policies,
            templates,
        })
    }

    /// The specification this plan was compiled from.
    pub fn spec(&self) -> &TeaalSpec {
        &self.spec
    }

    /// The canonical content hash of the specification
    /// ([`canon::spec_hash`]) — the key this artifact is cached under.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// The lowered plans.
    pub fn plans(&self) -> &[EinsumPlan] {
        &self.plans
    }

    /// The inferred fusion blocks.
    pub fn blocks(&self) -> &[EinsumBlock] {
        &self.blocks
    }

    /// Intermediates kept on-chip by fusion (no DRAM traffic).
    pub fn on_chip(&self) -> &BTreeSet<String> {
        &self.on_chip
    }

    /// The resolved intersection policy for `plan` (matched by Einsum
    /// name; falls back to re-resolving for foreign plans).
    pub fn policy_for(&self, plan: &EinsumPlan) -> IntersectPolicy {
        match self.index_of(plan) {
            Some(i) => self.policies[i],
            None => resolve_intersect_policy(&self.spec, plan),
        }
    }

    /// A fresh instrumentation set for one execution of `plan` (matched
    /// by Einsum name; falls back to rebuilding for foreign plans).
    pub fn instruments_for(&self, plan: &EinsumPlan) -> Instruments {
        match self.index_of(plan) {
            Some(i) => self.templates[i].clone(),
            None => build_instruments(&self.spec, &self.on_chip, plan),
        }
    }

    /// Rough resident size of the compiled artifact, for the telemetry
    /// byte counters.
    pub fn approx_bytes(&self) -> u64 {
        format!("{:?}", self.plans).len() as u64
    }

    /// Whether `component` is an explicitly-managed (buffet-class)
    /// buffer that data can be pinned in.
    pub(crate) fn is_pinnable_buffet(
        &self,
        binding: &teaal_core::spec::EinsumBinding,
        component: &str,
    ) -> bool {
        is_pinnable_buffet(&self.spec, binding, component)
    }

    fn index_of(&self, plan: &EinsumPlan) -> Option<usize> {
        self.plans
            .iter()
            .position(|p| p.equation.name() == plan.equation.name())
    }
}

fn is_pinnable_buffet(
    spec: &TeaalSpec,
    binding: &teaal_core::spec::EinsumBinding,
    component: &str,
) -> bool {
    spec.architecture
        .config(binding.arch_config.as_deref())
        .and_then(|a| a.find(component))
        .map(|(c, _)| {
            matches!(
                c.class,
                ComponentClass::Buffer {
                    kind: BufferKind::Buffet,
                    ..
                }
            )
        })
        .unwrap_or(false)
}

/// Resolves the intersection policy for an Einsum: its bound
/// intersection unit if the binding names one, otherwise the first
/// intersection unit in the architecture configuration.
fn resolve_intersect_policy(spec: &TeaalSpec, plan: &EinsumPlan) -> IntersectPolicy {
    let binding = spec.binding.for_einsum(plan.equation.name());
    if let Some(cfg) = spec.architecture.config(binding.arch_config.as_deref()) {
        for ib in &binding.intersects {
            if let Some((c, _)) = cfg.find(&ib.component) {
                if let ComponentClass::Intersect { policy } = &c.class {
                    return *policy;
                }
            }
        }
        for (c, _) in cfg.all_components() {
            if let ComponentClass::Intersect { policy } = &c.class {
                return *policy;
            }
        }
    }
    IntersectPolicy::TwoFinger
}

/// Builds the instrumentation channels for one Einsum from the binding +
/// format specifications.
fn build_instruments(
    spec: &TeaalSpec,
    on_chip: &BTreeSet<String>,
    plan: &EinsumPlan,
) -> Instruments {
    let name = plan.equation.name();
    let binding = spec.binding.for_einsum(name);
    let mut instruments = Instruments::default();

    for tp in &plan.tensor_plans {
        let declared = spec.rank_order_of(&tp.tensor).unwrap_or_default();
        let storage = binding.storage_for(&tp.tensor);
        let fmt_config = storage.iter().find_map(|s| s.config.clone());
        let fmt = spec
            .format
            .config_or_default(&tp.tensor, fmt_config.as_deref(), &declared);

        // Per-working-rank element bits: bottom ranks cost their
        // concrete element; upper partition ranks are bookkeeping.
        let mut rank_bits = Vec::new();
        for w in &tp.working_order {
            let bits = match plan.rank_space.def(w) {
                Some(teaal_core::ir::RankDef::Split { level, .. }) if *level > 0 => 0,
                _ => {
                    let roots = plan.rank_space.roots_of(w);
                    let concrete = roots.last().cloned().unwrap_or_else(|| w.clone());
                    fmt.element_bits(&concrete)
                }
            };
            rank_bits.push((w.clone(), bits));
        }

        let mut cfg = ChannelCfg::fully_buffered(rank_bits);
        if on_chip.contains(&tp.tensor) {
            cfg.dram_backed = false;
        }
        // A tensor bound exclusively to explicitly-managed on-chip
        // storage with no eviction policy is *pinned* there (e.g.
        // Graphicionado's temp property array in eDRAM): it never
        // generates DRAM traffic. Buffets with `evict-on` stream from
        // DRAM, and caches miss to DRAM, so both stay DRAM-backed.
        if !storage.is_empty()
            && storage
                .iter()
                .all(|s| s.evict_on.is_none() && is_pinnable_buffet(spec, &binding, &s.component))
        {
            cfg.dram_backed = false;
        }
        for s in &storage {
            if let Some(arch) = spec.architecture.config(binding.arch_config.as_deref()) {
                if let Some((comp, _)) = arch.find(&s.component) {
                    match &comp.class {
                        ComponentClass::Buffer {
                            kind, width, depth, ..
                        } => match kind {
                            BufferKind::Cache => {
                                let line_bits = (*width).max(64);
                                let lines = ((width * depth) / line_bits).max(1) as usize;
                                cfg.cache_lines = Some(lines);
                                cfg.line_bits = line_bits;
                            }
                            BufferKind::Buffet => {
                                cfg.evict_on = s.evict_on.clone();
                            }
                        },
                        ComponentClass::Dram { .. } => {
                            cfg.dram_backed = true;
                        }
                        _ => {}
                    }
                }
            }
            if s.style == BindStyle::Eager {
                // Map the bound storage rank to the working rank that
                // covers it.
                let er = tp
                    .working_order
                    .iter()
                    .find(|w| *w == &s.rank || plan.rank_space.roots_of(w).contains(&s.rank))
                    .cloned();
                cfg.eager_rank = er.or(Some(s.rank.clone()));
            }
        }
        instruments.add_tensor(&tp.tensor, cfg);
    }

    // Output channel.
    let out_declared = plan.output.target_order.clone();
    let out_fmt = spec.format.config_or_default(name, None, &out_declared);
    let leaf_rank = out_declared.last().cloned().unwrap_or_default();
    let elem_bits = out_fmt.element_bits(&leaf_rank);
    let evict = binding
        .storage_for(name)
        .iter()
        .find_map(|s| s.evict_on.clone());
    instruments.output = crate::counters::OutputChannel::new(elem_bits, evict);
    instruments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spmspm() -> TeaalSpec {
        TeaalSpec::parse(concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
        ))
        .unwrap()
    }

    #[test]
    fn compiles_once_and_exposes_the_artifacts() {
        let compiled = CompiledPlan::compile(spmspm()).unwrap();
        assert_eq!(compiled.plans().len(), 1);
        assert_eq!(compiled.spec_hash(), canon::spec_hash(compiled.spec()));
        assert!(compiled.approx_bytes() > 0);
        let plan = &compiled.plans()[0];
        // The template is cloned per execution, never shared state.
        let a = compiled.instruments_for(plan);
        let b = compiled.instruments_for(plan);
        assert_eq!(a.tensors.len(), b.tensors.len());
        assert!(a.tensors.contains_key("A"));
    }

    #[test]
    fn instrument_templates_match_a_fresh_build() {
        let spec = spmspm();
        let compiled = CompiledPlan::compile(spec.clone()).unwrap();
        for plan in compiled.plans() {
            let templ = compiled.instruments_for(plan);
            let fresh = build_instruments(&spec, compiled.on_chip(), plan);
            assert_eq!(
                templ.tensors.keys().collect::<Vec<_>>(),
                fresh.tensors.keys().collect::<Vec<_>>()
            );
            assert_eq!(
                compiled.policy_for(plan),
                resolve_intersect_policy(&spec, plan)
            );
        }
    }
}
