//! Simulator error types.

use std::fmt;

use crate::limits::{BudgetKind, Progress};

/// Errors produced while configuring or running the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// An input tensor required by the cascade was not provided.
    MissingTensor {
        /// The tensor's name.
        tensor: String,
    },
    /// A dense loop rank has no known extent; provide one with
    /// `Simulator::with_rank_extent`.
    MissingExtent {
        /// The rank missing an extent.
        rank: String,
    },
    /// A follower partition ran before its leader published boundaries.
    MissingBoundaries {
        /// The partitioned rank.
        rank: String,
        /// The leader tensor that never ran.
        leader: String,
    },
    /// An access descends deeper than its tensor's working rank order —
    /// the plan is malformed (previously the engine silently fabricated
    /// `leaf<N>` rank names and instrumented phantom ranks).
    PhantomRank {
        /// The tensor whose working order ran out.
        tensor: String,
        /// The descent depth that has no working rank.
        depth: usize,
        /// The tensor's actual working rank order.
        working_order: Vec<String>,
    },
    /// The specification failed to lower.
    Spec(teaal_core::SpecError),
    /// A fibertree transform failed during execution.
    Fibertree(String),
    /// The evaluation's wall-clock deadline passed
    /// ([`EvalLimits::deadline`](crate::limits::EvalLimits)). Carries
    /// the telemetry gathered up to the cancellation point.
    DeadlineExceeded {
        /// Work done before the deadline fired.
        progress: Progress,
    },
    /// A resource budget was exhausted
    /// ([`EvalLimits`](crate::limits::EvalLimits)).
    BudgetExceeded {
        /// Which budget ran out.
        resource: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// Consumption observed when the budget tripped (may slightly
        /// exceed `limit`: polls are amortized across loop iterations).
        used: u64,
        /// Work done before the budget tripped.
        progress: Progress,
    },
    /// The evaluation was cancelled externally
    /// ([`CancelToken::cancel`](crate::limits::CancelToken::cancel)).
    Cancelled {
        /// Work done before cancellation was observed.
        progress: Progress,
    },
    /// A component's modeled busy time came out non-finite — the
    /// architecture section declares a zero bandwidth or clock that
    /// divides to NaN/∞. Previously this panicked inside the bottleneck
    /// comparison.
    NonFiniteTime {
        /// The component whose time is NaN or infinite.
        component: String,
    },
    /// A worker thread panicked; the panic was isolated with
    /// `catch_unwind` and converted to this structured error instead of
    /// tearing down the process.
    WorkerPanic {
        /// Which fan-out the worker belonged to (e.g. `"shard"`,
        /// `"wave"`).
        site: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingTensor { tensor } => {
                write!(f, "input tensor {tensor} was not provided")
            }
            SimError::MissingExtent { rank } => write!(
                f,
                "rank {rank} has no extent; no input tensor carries it — provide one \
                 with with_rank_extent"
            ),
            SimError::MissingBoundaries { rank, leader } => write!(
                f,
                "follower partitioning of {rank} ran before leader {leader} published \
                 boundaries"
            ),
            SimError::PhantomRank {
                tensor,
                depth,
                working_order,
            } => write!(
                f,
                "access to tensor {tensor} descends to depth {depth} but its working \
                 order {working_order:?} has only {} ranks — the plan is malformed",
                working_order.len()
            ),
            SimError::Spec(e) => write!(f, "{e}"),
            SimError::Fibertree(m) => write!(f, "fibertree operation failed: {m}"),
            SimError::DeadlineExceeded { progress } => {
                write!(f, "evaluation deadline exceeded after {progress}")
            }
            SimError::BudgetExceeded {
                resource,
                limit,
                used,
                progress,
            } => write!(
                f,
                "{resource} budget exceeded ({used} used of {limit} allowed) after {progress}"
            ),
            SimError::Cancelled { progress } => {
                write!(f, "evaluation cancelled after {progress}")
            }
            SimError::NonFiniteTime { component } => write!(
                f,
                "modeled time for component {component} is not finite — check the \
                 architecture's bandwidth and clock values for zeros"
            ),
            SimError::WorkerPanic { site, message } => {
                write!(f, "{site} worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<teaal_core::SpecError> for SimError {
    fn from(e: teaal_core::SpecError) -> Self {
        SimError::Spec(e)
    }
}

/// Renders a `catch_unwind` payload as text: panics carry `&str` or
/// `String` messages in practice; anything else gets a placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<teaal_fibertree::FibertreeError> for SimError {
    fn from(e: teaal_fibertree::FibertreeError) -> Self {
        SimError::Fibertree(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_missing_piece() {
        let e = SimError::MissingTensor { tensor: "A".into() };
        assert!(e.to_string().contains('A'));
        let e = SimError::MissingExtent { rank: "Q".into() };
        assert!(e.to_string().contains("with_rank_extent"));
    }
}
