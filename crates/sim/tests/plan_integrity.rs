//! Malformed plans must fail loudly, not silently.
//!
//! The engine used to fabricate `leaf<N>` rank names when an access
//! descended deeper than its tensor's working order, instrumenting
//! phantom ranks that no hardware binding could ever reference. That is
//! now a structured [`SimError::PhantomRank`].

use std::collections::BTreeMap;

use teaal_core::TeaalSpec;
use teaal_fibertree::{IntersectPolicy, Tensor, TensorData};
use teaal_sim::engine::BoundaryCache;
use teaal_sim::{Engine, Instruments, OpTable, SimError, Simulator};

fn spmspm_spec() -> TeaalSpec {
    TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    ))
    .unwrap()
}

fn inputs() -> (TensorData, TensorData) {
    let a = Tensor::from_entries(
        "A",
        &["K", "M"],
        &[4, 4],
        vec![(vec![0, 1], 1.0), (vec![2, 3], 2.0)],
    )
    .unwrap();
    let b = Tensor::from_entries(
        "B",
        &["K", "N"],
        &[4, 4],
        vec![(vec![0, 0], 3.0), (vec![2, 2], 4.0)],
    )
    .unwrap();
    (TensorData::Owned(a), TensorData::Owned(b))
}

#[test]
fn descending_past_the_working_order_is_a_phantom_rank_error() {
    let sim = Simulator::new(spmspm_spec()).unwrap();
    // Malform the lowered plan: drop B's bottom working rank so the
    // access's second descent has no rank to consume.
    let mut plan = sim.plans()[0].clone();
    let bp = plan
        .tensor_plans
        .iter_mut()
        .find(|tp| tp.tensor == "B")
        .expect("B is planned");
    bp.working_order.truncate(1);

    let extents: BTreeMap<String, u64> = [("K", 4u64), ("M", 4), ("N", 4)]
        .map(|(r, e)| (r.to_string(), e))
        .into();
    let engine = Engine::new(
        &plan,
        OpTable::arithmetic(),
        IntersectPolicy::TwoFinger,
        extents,
    );
    let (a, b) = inputs();
    let env: BTreeMap<String, &TensorData> = [("A".to_string(), &a), ("B".to_string(), &b)].into();
    let mut instruments = Instruments::default();
    let mut boundaries = BoundaryCache::new();

    let err = engine
        .execute(&env, &mut instruments, &mut boundaries)
        .expect_err("the malformed plan must not execute");
    match err {
        SimError::PhantomRank {
            tensor,
            depth,
            working_order,
        } => {
            assert_eq!(tensor, "B");
            assert_eq!(depth, 1);
            // The default loop order is [M, N, K], so B's concordant
            // working order was [N, K] before the truncation.
            assert_eq!(working_order, vec!["N".to_string()]);
        }
        other => panic!("expected PhantomRank, got {other}"),
    }
    let msg = SimError::PhantomRank {
        tensor: "B".into(),
        depth: 1,
        working_order: vec!["K".into()],
    }
    .to_string();
    assert!(msg.contains("malformed"), "{msg}");
}

#[test]
fn intact_plans_still_execute() {
    let sim = Simulator::new(spmspm_spec()).unwrap();
    let (a, b) = inputs();
    let report = sim.run_data(&[&a, &b]).unwrap();
    assert_eq!(report.final_output().unwrap().get(&[1, 0]), Some(3.0));
    assert_eq!(report.final_output().unwrap().get(&[3, 2]), Some(8.0));
}
