//! Two-phase mapper search validation (prune-then-verify).
//!
//! The analytical estimator prunes the loop-order space; the executable
//! engine verifies the survivors. These tests pin the contract that makes
//! pruning safe: on every SpMSpM catalog spec, the pruned search must
//! return the **same best loop order** as the exhaustive engine sweep,
//! with far fewer engine evaluations — and on random tensors, the
//! mapping it picks must measure within the safety margin of the true
//! optimum.

use proptest::prelude::*;
use teaal_core::TeaalSpec;
use teaal_fibertree::Tensor;
use teaal_sim::{explore_fast, explore_loop_orders, ExploreConfig, Objective, OpTable};
use teaal_workloads::genmat;

/// Inputs sized so every catalog spec's partitioning lowers and the
/// matrices are sparse enough to make loop orders genuinely differ.
fn inputs(seed: u64) -> Vec<Tensor> {
    let a = genmat::uniform("A", &["K", "M"], 48, 48, 320, seed);
    let b = genmat::uniform("B", &["K", "N"], 48, 40, 280, seed + 1);
    vec![a, b]
}

/// Per-spec search-space budget: the candidate universe both search modes
/// share (first `budget` lowerable permutations). ExTensor's Z has nine
/// iteration ranks (9! permutations), so its exhaustive reference is
/// capped to keep the oracle sweep tractable.
fn budget_for(label: &str) -> usize {
    match label {
        "ExTensor" => 36,
        _ => 720,
    }
}

#[test]
fn pruned_search_matches_exhaustive_top1_on_all_catalog_specs() {
    let ins = inputs(7);
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let spec = TeaalSpec::parse(yaml).unwrap();
        let budget = budget_for(label);
        let exhaustive = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            budget,
        )
        .unwrap_or_else(|e| panic!("{label}: exhaustive search failed: {e}"));
        let cfg = ExploreConfig {
            budget,
            ..ExploreConfig::default()
        };
        let fast = explore_fast(&spec, "Z", &ins, OpTable::arithmetic(), &cfg)
            .unwrap_or_else(|e| panic!("{label}: pruned search failed: {e}"));

        assert_eq!(
            fast.candidates[0].loop_order,
            exhaustive[0].loop_order,
            "{label}: pruned search must return the exhaustive winner \
             (fast {:?} @ {:.3e}s vs exhaustive {:?} @ {:.3e}s)",
            fast.candidates[0].loop_order,
            fast.candidates[0].seconds,
            exhaustive[0].loop_order,
            exhaustive[0].seconds,
        );
        assert_eq!(
            fast.estimated.len(),
            exhaustive.len(),
            "{label}: both modes must consider the same candidate universe"
        );
        assert!(
            fast.engine_evals <= cfg.top_k,
            "{label}: engine evaluations bounded by top_k"
        );
        // The headline claim on the 5-rank spaces: ≥ 5x fewer engine runs.
        if matches!(label, "Gamma" | "OuterSPACE") {
            assert!(
                fast.engine_evals * 5 <= exhaustive.len(),
                "{label}: pruned search used {} engine evals vs {} exhaustive \
                 — must be at least 5x cheaper",
                fast.engine_evals,
                exhaustive.len(),
            );
        }
    }
}

#[test]
fn pruned_search_holds_across_seeds_on_gamma() {
    // The winner-retention property must not be an artifact of one input.
    let spec = TeaalSpec::parse(teaal_fixtures::GAMMA_EM).unwrap();
    for seed in [11u64, 23, 40] {
        let ins = inputs(seed);
        let exhaustive = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        let fast = explore_fast(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            &ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(
            fast.candidates[0].loop_order, exhaustive[0].loop_order,
            "seed {seed}: pruned winner diverged"
        );
    }
}

/// Plain (architecture-free) SpMSpM spec for the property test: every
/// loop order lowers, so the estimator is exercised on the full 3-rank
/// permutation space.
fn plain_spec() -> TeaalSpec {
    TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    ))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On random tensors, the mapping chosen by the pruned search must
    /// measure within the configured safety margin of the true
    /// (exhaustively measured) optimum — the property that makes the
    /// estimator safe to prune with.
    #[test]
    fn pruned_winner_measures_within_margin_of_true_optimum(
        seed in 0u64..1000,
        nnz_a in 40usize..400,
        nnz_b in 40usize..400,
    ) {
        let spec = plain_spec();
        let a = genmat::uniform("A", &["K", "M"], 32, 32, nnz_a, seed);
        let b = genmat::uniform("B", &["K", "N"], 32, 32, nnz_b, seed + 1);
        let ins = vec![a, b];
        let exhaustive = explore_loop_orders(
            &spec,
            "Z",
            &ins,
            OpTable::arithmetic(),
            Objective::Time,
            720,
        )
        .unwrap();
        let cfg = ExploreConfig::default();
        let fast = explore_fast(&spec, "Z", &ins, OpTable::arithmetic(), &cfg).unwrap();
        let best = exhaustive[0].seconds;
        let chosen = fast.candidates[0].seconds;
        prop_assert!(
            chosen <= best * cfg.margin + 1e-15,
            "chosen mapping measures {chosen:.3e}s vs optimum {best:.3e}s \
             (margin {})", cfg.margin
        );
    }
}
