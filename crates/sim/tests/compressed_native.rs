//! The compressed fast path stays compressed end-to-end.
//!
//! `Simulator::run_data_compressed` with compressed inputs must (a) never
//! decompress on the hot path — every catalog SpMSpM spec's transform
//! pipeline (swizzles, shape/occupancy partitions, flattens) and output
//! assembly runs on CSF arrays, pinned by the process-wide
//! [`teaal_fibertree::telemetry::decompress_count`] — and (b) produce
//! reports bit-identical to the owned oracle: instrument counters, time,
//! energy, and output content all agree.
//!
//! This file holds a single test so nothing else in the process touches
//! the decompression counter between the snapshots.

use teaal_core::TeaalSpec;
use teaal_fibertree::{telemetry, CompressedTensor, TensorData};
use teaal_sim::Simulator;
use teaal_workloads::genmat;

#[test]
fn catalog_specs_run_compressed_native_with_zero_decompressions() {
    // Dense enough to exercise multi-boundary occupancy partitions,
    // flattening, and caches in every catalog spec.
    let a = genmat::uniform("A", &["K", "M"], 60, 50, 700, 21);
    let b = genmat::uniform("B", &["K", "N"], 60, 40, 600, 22);
    let ca = TensorData::Compressed(CompressedTensor::from_tensor(&a).unwrap());
    let cb = TensorData::Compressed(CompressedTensor::from_tensor(&b).unwrap());

    // Owned oracle runs first (it never touches compressed storage).
    let mut oracles = Vec::new();
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let sim = Simulator::new(TeaalSpec::parse(yaml).unwrap()).unwrap();
        oracles.push((label, sim.run(&[a.clone(), b.clone()]).unwrap()));
    }

    let before = telemetry::decompress_count();
    let mut compressed_reports = Vec::new();
    for (_, yaml) in teaal_fixtures::spmspm_specs() {
        let sim = Simulator::new(TeaalSpec::parse(yaml).unwrap()).unwrap();
        compressed_reports.push(sim.run_data_compressed(&[&ca, &cb]).unwrap());
    }
    assert_eq!(
        telemetry::decompress_count(),
        before,
        "the compressed-native path must never call to_tensor()"
    );

    for ((label, owned), compressed) in oracles.iter().zip(&compressed_reports) {
        // Every Instruments-derived counter, bit for bit.
        assert_eq!(
            owned.einsums, compressed.einsums,
            "{label}: instrument counters diverge on the compressed-native path"
        );
        assert_eq!(owned.seconds, compressed.seconds, "{label}: time diverges");
        assert_eq!(
            owned.energy_joules, compressed.energy_joules,
            "{label}: energy diverges"
        );
        // Outputs: same names, same content (representations differ by
        // construction — owned trees vs CSF).
        assert_eq!(
            owned.outputs.keys().collect::<Vec<_>>(),
            compressed.outputs.keys().collect::<Vec<_>>(),
            "{label}: output sets diverge"
        );
        for (name, o) in &owned.outputs {
            let c = &compressed.outputs[name];
            assert!(o.as_owned().is_some(), "{label}/{name}: oracle is owned");
            assert!(c.is_compressed(), "{label}/{name}: fast path is compressed");
            assert_eq!(
                o.leaves(),
                c.leaves(),
                "{label}/{name}: output content diverges"
            );
            assert_eq!(o.nnz(), c.nnz(), "{label}/{name}: nnz diverges");
            assert_eq!(
                o.rank_stats(),
                c.rank_stats(),
                "{label}/{name}: structure diverges"
            );
        }
    }
}
