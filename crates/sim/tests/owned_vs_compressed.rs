//! Representation independence: the four catalog SpMSpM specs must
//! produce bit-identical instrument counters and output tensors whether
//! their inputs arrive as owned fibertrees or compressed (CSF) storage.
//!
//! This is the contract that lets callers pick a representation purely on
//! performance grounds — the model's answers (traffic, compute, visits,
//! intersections, outputs) never depend on the choice.

use teaal_core::TeaalSpec;
use teaal_fibertree::{CompressedTensor, Tensor, TensorData};
use teaal_sim::Simulator;
use teaal_workloads::genmat;

fn matrix_a() -> Tensor {
    // [K, M] layout, 6x5 — same fixture as the functional suite.
    Tensor::from_entries(
        "A",
        &["K", "M"],
        &[6, 5],
        vec![
            (vec![0, 0], 1.0),
            (vec![0, 3], 2.0),
            (vec![1, 1], 3.0),
            (vec![2, 0], 4.0),
            (vec![2, 2], -1.0),
            (vec![3, 4], 5.0),
            (vec![5, 0], 2.5),
            (vec![5, 4], -2.0),
        ],
    )
    .unwrap()
}

fn matrix_b() -> Tensor {
    Tensor::from_entries(
        "B",
        &["K", "N"],
        &[6, 4],
        vec![
            (vec![0, 1], 1.5),
            (vec![1, 0], 2.0),
            (vec![1, 3], -1.0),
            (vec![2, 2], 3.0),
            (vec![3, 1], 0.5),
            (vec![4, 0], 9.0),
            (vec![5, 3], 1.0),
        ],
    )
    .unwrap()
}

/// Runs one spec with owned and with compressed inputs and asserts the
/// reports agree bit for bit.
fn assert_representation_independent(label: &str, yaml: &str, a: &Tensor, b: &Tensor) {
    let spec = TeaalSpec::parse(yaml).unwrap_or_else(|e| panic!("{label}: parse failed: {e}"));
    let sim = Simulator::new(spec).unwrap_or_else(|e| panic!("{label}: lowering failed: {e}"));

    let owned = sim
        .run(&[a.clone(), b.clone()])
        .unwrap_or_else(|e| panic!("{label}: owned run failed: {e}"));

    let ca = TensorData::Compressed(CompressedTensor::from_tensor(a).unwrap());
    let cb = TensorData::Compressed(CompressedTensor::from_tensor(b).unwrap());
    let compressed = sim
        .run_data(&[&ca, &cb])
        .unwrap_or_else(|e| panic!("{label}: compressed run failed: {e}"));

    // Every Instruments-derived counter: traffic (fills, buffer reads,
    // touches), output writes/updates/partials, compute, load imbalance,
    // intersections, merges, loop visits.
    assert_eq!(
        owned.einsums, compressed.einsums,
        "{label}: instrument counters diverge across representations"
    );
    // Output tensors, bit for bit (exact f64 equality via PartialEq).
    assert_eq!(
        owned.outputs, compressed.outputs,
        "{label}: output tensors diverge across representations"
    );
    // Derived analyses follow from the above, but pin them anyway.
    assert_eq!(
        owned.seconds, compressed.seconds,
        "{label}: time model diverges"
    );
    assert_eq!(
        owned.energy_joules, compressed.energy_joules,
        "{label}: energy model diverges"
    );

    // Third leg: the fully compressed-native path (compressed transforms
    // and compressed outputs) must agree with both.
    let native = sim
        .run_data_compressed(&[&ca, &cb])
        .unwrap_or_else(|e| panic!("{label}: compressed-native run failed: {e}"));
    assert_eq!(
        owned.einsums, native.einsums,
        "{label}: instrument counters diverge on the compressed-native path"
    );
    assert_eq!(
        owned.seconds, native.seconds,
        "{label}: native time diverges"
    );
    for (name, o) in &owned.outputs {
        let c = native
            .outputs
            .get(name)
            .unwrap_or_else(|| panic!("{label}: native run lost output {name}"));
        assert!(
            c.is_compressed(),
            "{label}/{name}: native outputs must be compressed"
        );
        assert_eq!(
            o.leaves(),
            c.leaves(),
            "{label}/{name}: native output content diverges"
        );
    }
}

#[test]
fn catalog_specs_are_representation_independent_on_the_fixture_matrices() {
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        assert_representation_independent(label, yaml, &matrix_a(), &matrix_b());
    }
}

#[test]
fn catalog_specs_are_representation_independent_on_generated_matrices() {
    // A denser generated pair exercises multi-element intersections,
    // occupancy partitions with several boundaries, and cache behavior.
    let a = genmat::uniform("A", &["K", "M"], 60, 50, 700, 11);
    let b = genmat::uniform("B", &["K", "N"], 60, 40, 600, 12);
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        assert_representation_independent(label, yaml, &a, &b);
    }
}

#[test]
fn compressed_inputs_can_come_straight_from_coo() {
    // uniform_compressed builds CSF directly from the COO stream; the
    // same seed must land on the same model results as the owned path.
    let (rows, cols, nnz, seed) = (40, 40, 300, 5);
    let a = genmat::uniform("A", &["K", "M"], rows, cols, nnz, seed);
    let b = genmat::uniform("B", &["K", "N"], rows, cols, nnz, seed + 1);
    let ca = TensorData::Compressed(genmat::uniform_compressed(
        "A",
        &["K", "M"],
        rows,
        cols,
        nnz,
        seed,
    ));
    let cb = TensorData::Compressed(genmat::uniform_compressed(
        "B",
        &["K", "N"],
        rows,
        cols,
        nnz,
        seed + 1,
    ));
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let spec = TeaalSpec::parse(yaml).unwrap();
        let sim = Simulator::new(spec).unwrap();
        let owned = sim.run(&[a.clone(), b.clone()]).unwrap();
        let compressed = sim.run_data(&[&ca, &cb]).unwrap();
        assert_eq!(owned.einsums, compressed.einsums, "{label}");
        assert_eq!(owned.outputs, compressed.outputs, "{label}");
    }
}
