//! Service-grade hardening: fault injection, resource budgets, and
//! bounded caches.
//!
//! Every error/retry/degradation path added by the robustness work is
//! exercised here through the deterministic failpoint harness
//! (`teaal_core::failpoint`) and the [`EvalLimits`] budget machinery:
//!
//! - an injected shard-worker panic is isolated with `catch_unwind`,
//!   converted to a structured error, and the plan retries sequentially —
//!   producing a report **bit-identical** to an uninjected sequential run
//!   (the degradation is visible in telemetry, not in results);
//! - deadline / step-budget / output-budget trips return structured
//!   errors carrying the telemetry gathered so far — never a hang or
//!   an abort;
//! - a byte-bounded [`EvalContext`] evicts under pressure and a warm run
//!   after evictions is bit-identical to a cold one;
//! - cancellation at an arbitrary point never corrupts the shared
//!   caches (property-tested over random budgets);
//! - previously-panicking user inputs (NaN modelled time from a
//!   zero-bandwidth architecture; a panicking worker aborting the
//!   process) now surface as structured [`SimError`]s.
//!
//! Failpoint configuration is process-global, so every test that touches
//! it serializes behind one mutex and restores the empty config before
//! releasing it.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use proptest::prelude::*;
use teaal_core::{failpoint, TeaalSpec};
use teaal_fibertree::{telemetry, Tensor};
use teaal_sim::{BudgetKind, CancelToken, EvalContext, EvalLimits, SimError, SimReport, Simulator};
use teaal_workloads::genmat;

/// Serializes tests that install failpoint configs (process-global
/// state). Poisoning is ignored: a failed test must not cascade.
static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn lock_failpoints() -> MutexGuard<'static, ()> {
    FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `spec` for the duration of the returned guard; dropping it
/// leaves the registry cleared for the next test.
struct FailpointSession {
    _guard: MutexGuard<'static, ()>,
}

impl FailpointSession {
    fn install(spec: &str) -> Self {
        let guard = lock_failpoints();
        failpoint::set_config(spec).expect("test failpoint spec is valid");
        FailpointSession { _guard: guard }
    }
}

impl Drop for FailpointSession {
    fn drop(&mut self) {
        let _ = failpoint::set_config("");
    }
}

/// Same input group as the cache suite: sized so every catalog spec's
/// partitioning lowers.
fn inputs(seed: u64) -> Vec<Tensor> {
    let a = genmat::uniform("A", &["K", "M"], 48, 48, 320, seed);
    let b = genmat::uniform("B", &["K", "N"], 48, 40, 280, seed + 1);
    vec![a, b]
}

/// A bit-exact fingerprint of everything a report carries.
fn fingerprint(report: &SimReport) -> (String, u64, u64, BTreeMap<String, u64>) {
    (
        format!("{report}"),
        report.seconds.to_bits(),
        report.energy_joules.to_bits(),
        report
            .outputs
            .iter()
            .map(|(name, t)| (name.clone(), t.content_hash()))
            .collect(),
    )
}

/// Gustavson SpMSpM with output ranks outermost — the shape the shard
/// planner provably parallelizes (disjoint streaming merges), so the
/// sharded path genuinely runs and the injected worker panic genuinely
/// fires inside a worker thread.
const SHARDABLE: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    Z: [M, N, K]\n",
);

#[test]
fn injected_shard_panic_degrades_to_sequential_bit_identically() {
    let ins = inputs(31);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let baseline = Simulator::new(spec.clone())
        .unwrap()
        .with_threads(1)
        .run(&ins)
        .unwrap();

    let _fp = FailpointSession::install("engine.shard:panic@1");
    let degraded_before = telemetry::degraded_sequential_count();
    let report = Simulator::new(spec)
        .unwrap()
        .with_threads(4)
        .run(&ins)
        .expect("a panicking shard worker must degrade, not fail the run");
    assert_eq!(
        fingerprint(&report),
        fingerprint(&baseline),
        "sequential retry after a shard panic must be bit-identical to \
         an uninjected sequential run"
    );
    assert!(
        telemetry::degraded_sequential_count() > degraded_before,
        "the degradation must be recorded in telemetry"
    );
}

#[test]
fn injected_shard_panic_only_hits_once_so_a_rerun_shards_cleanly() {
    let ins = inputs(32);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let baseline = Simulator::new(spec.clone())
        .unwrap()
        .with_threads(1)
        .run(&ins)
        .unwrap();

    let _fp = FailpointSession::install("engine.shard:panic@1");
    let first = Simulator::new(spec.clone())
        .unwrap()
        .with_threads(4)
        .run(&ins)
        .unwrap();
    // `@1` fired during the first attempt; the second run's shard workers
    // pass the site untouched and the parallel path itself must agree.
    let second = Simulator::new(spec)
        .unwrap()
        .with_threads(4)
        .run(&ins)
        .unwrap();
    assert_eq!(fingerprint(&first), fingerprint(&baseline));
    assert_eq!(fingerprint(&second), fingerprint(&baseline));
}

#[test]
fn injected_transform_error_is_structured_not_a_panic() {
    let ins = inputs(33);
    // Gamma's mapping transforms its inputs, so the transform chain (and
    // its failpoint site) runs on this path.
    let (_, yaml) = teaal_fixtures::spmspm_specs()[2];
    let spec = TeaalSpec::parse(yaml).unwrap();
    let _fp = FailpointSession::install("transform.swizzle:err@1");
    let err = Simulator::new(spec)
        .unwrap()
        .run(&ins)
        .expect_err("the injected transform error must surface");
    match err {
        SimError::Fibertree(msg) => assert!(
            msg.contains("injected failpoint error"),
            "unexpected message: {msg}"
        ),
        other => panic!("expected a structured fibertree error, got {other:?}"),
    }
}

#[test]
fn expired_deadline_returns_structured_error_with_progress() {
    let ins = inputs(34);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let sim = Simulator::new(spec)
        .unwrap()
        .with_limits(EvalLimits::default().with_deadline(Duration::ZERO));
    std::thread::sleep(Duration::from_millis(2));
    match sim.run(&ins) {
        Err(SimError::DeadlineExceeded { progress }) => {
            // The run was cut off at the very start, but the telemetry
            // snapshot is still attached and coherent.
            assert_eq!(progress.output_entries, 0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn step_budget_trips_mid_run_with_partial_telemetry() {
    let ins = inputs(35);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let sim = Simulator::new(spec)
        .unwrap()
        .with_limits(EvalLimits::default().with_max_engine_steps(200));
    match sim.run(&ins) {
        Err(SimError::BudgetExceeded {
            resource: BudgetKind::EngineSteps,
            limit,
            used,
            progress,
        }) => {
            assert_eq!(limit, 200);
            assert!(used > 200, "trip must report actual consumption: {used}");
            assert!(
                progress.engine_steps >= 200,
                "partial telemetry must carry the work done: {progress}"
            );
        }
        other => panic!("expected an engine-step BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn output_budget_trips() {
    let ins = inputs(36);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let sim = Simulator::new(spec)
        .unwrap()
        .with_limits(EvalLimits::default().with_max_output_entries(5));
    match sim.run(&ins) {
        Err(SimError::BudgetExceeded {
            resource: BudgetKind::OutputEntries,
            used,
            ..
        }) => assert!(used > 5),
        other => panic!("expected an output-entry BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn external_cancellation_returns_cancelled() {
    let ins = inputs(37);
    let spec = TeaalSpec::parse(SHARDABLE).unwrap();
    let token = CancelToken::unlimited();
    token.cancel();
    let err = Simulator::new(spec)
        .unwrap()
        .with_cancel(token)
        .run(&ins)
        .expect_err("a pre-cancelled token must stop the run");
    assert!(matches!(err, SimError::Cancelled { .. }), "got {err:?}");
}

#[test]
fn bounded_context_evicts_and_warm_runs_stay_bit_identical() {
    let ins = inputs(38);
    // Small enough that the four catalog specs' transformed inputs cannot
    // all stay resident, large enough that single artifacts fit.
    let bounded = EvalContext::with_capacity(64 * 1024);
    let unbounded = EvalContext::new();
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let spec = TeaalSpec::parse(yaml).unwrap();
        let want = fingerprint(&unbounded.simulator(&spec).unwrap().run(&ins).unwrap());
        let cold = fingerprint(&bounded.simulator(&spec).unwrap().run(&ins).unwrap());
        assert_eq!(cold, want, "{label}: bounded cold run diverges");
    }
    // Second sweep: artifacts evicted by the first sweep are rebuilt
    // bit-identically on their next miss.
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let spec = TeaalSpec::parse(yaml).unwrap();
        let want = fingerprint(&unbounded.simulator(&spec).unwrap().run(&ins).unwrap());
        let warm = fingerprint(&bounded.simulator(&spec).unwrap().run(&ins).unwrap());
        assert_eq!(warm, want, "{label}: run after evictions diverges");
    }
    assert!(
        bounded.evictions() > 0,
        "a 64 KiB budget must evict under the four-spec working set"
    );
}

#[test]
fn nan_modelled_time_is_a_structured_error_not_a_panic() {
    // A zero-bandwidth DRAM with no bound storage traffic models
    // 0 bytes / 0 B/s = NaN seconds. The seed panicked inside the
    // bottleneck comparison (`expect("times are finite")`); now the run
    // returns `NonFiniteTime` naming the component.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "architecture:\n",
        "  clock: 1_000_000_000\n",
        "  configs:\n",
        "    Default:\n",
        "      name: System\n",
        "      local:\n",
        "        - name: HBM\n",
        "          class: DRAM\n",
        "          bandwidth: 0\n",
    ))
    .unwrap();
    let ins = inputs(39);
    match Simulator::new(spec).unwrap().run(&ins) {
        Err(SimError::NonFiniteTime { component }) => {
            assert!(!component.is_empty());
        }
        Ok(report) => panic!(
            "a zero-bandwidth architecture modelled {} seconds instead of erroring",
            report.seconds
        ),
        Err(other) => panic!("expected NonFiniteTime, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancelling an evaluation at an arbitrary budget point never
    /// corrupts the shared caches: after a tripped (or surviving) run on
    /// a byte-bounded context, a warm unlimited run through that same
    /// context is bit-identical to a cold run on a fresh one.
    #[test]
    fn cancellation_never_corrupts_shared_caches(
        steps in 1u64..5_000,
        entries in 1u64..2_000,
        spec_idx in 0usize..4,
    ) {
        let ins = inputs(40);
        let (label, yaml) = teaal_fixtures::spmspm_specs()[spec_idx];
        let spec = TeaalSpec::parse(yaml).unwrap();

        let cold_ctx = EvalContext::new();
        let want = fingerprint(&cold_ctx.simulator(&spec).unwrap().run(&ins).unwrap());

        let ctx = EvalContext::with_capacity(48 * 1024);
        let limits = EvalLimits::default()
            .with_max_engine_steps(steps)
            .with_max_output_entries(entries);
        // The budgeted run may trip anywhere (transform boundary, stream,
        // leaf) or even complete; either way the caches must stay sound.
        let budgeted = ctx
            .simulator(&spec)
            .unwrap()
            .with_limits(limits)
            .run(&ins);
        if let Err(e) = &budgeted {
            prop_assert!(
                matches!(e, SimError::BudgetExceeded { .. }),
                "{label}: unexpected error {e:?}"
            );
        }
        let warm = fingerprint(&ctx.simulator(&spec).unwrap().run(&ins).unwrap());
        prop_assert_eq!(warm, want, "{}: warm run after a cancelled/evicted run diverges", label);
    }
}
