//! Functional validation of the engine: every mapping style the paper
//! evaluates must compute the same answer as a dense reference.

use std::collections::BTreeMap;

use teaal_core::TeaalSpec;
use teaal_fibertree::{Tensor, TensorData};
use teaal_sim::{OpTable, Simulator};

/// Dense SpMSpM reference: `Z[m, n] = Σ_k A[k, m] · B[k, n]`.
fn dense_spmspm(a: &Tensor, b: &Tensor) -> BTreeMap<(u64, u64), f64> {
    let mut out = BTreeMap::new();
    for (pa, va) in a.entries() {
        let (k, m) = (pa[0], pa[1]);
        for (pb, vb) in b.entries() {
            if pb[0] == k {
                *out.entry((m, pb[1])).or_insert(0.0) += va * vb;
            }
        }
    }
    out.retain(|_, v| *v != 0.0);
    out
}

fn check_matches_reference(z: &TensorData, reference: &BTreeMap<(u64, u64), f64>) {
    let mut got = BTreeMap::new();
    for (p, v) in z.entries() {
        got.insert((p[0], p[1]), v);
    }
    assert_eq!(got.len(), reference.len(), "nnz mismatch");
    for (k, v) in reference {
        let g = got
            .get(k)
            .unwrap_or_else(|| panic!("missing output point {k:?}"));
        assert!((g - v).abs() < 1e-9, "value mismatch at {k:?}: {g} vs {v}");
    }
}

fn matrix_a() -> Tensor {
    // [K, M] layout, 6x5.
    Tensor::from_entries(
        "A",
        &["K", "M"],
        &[6, 5],
        vec![
            (vec![0, 0], 1.0),
            (vec![0, 3], 2.0),
            (vec![1, 1], 3.0),
            (vec![2, 0], 4.0),
            (vec![2, 2], -1.0),
            (vec![3, 4], 5.0),
            (vec![5, 0], 2.5),
            (vec![5, 4], -2.0),
        ],
    )
    .unwrap()
}

fn matrix_b() -> Tensor {
    // [K, N] layout, 6x4.
    Tensor::from_entries(
        "B",
        &["K", "N"],
        &[6, 4],
        vec![
            (vec![0, 1], 1.5),
            (vec![1, 0], 2.0),
            (vec![1, 3], -1.0),
            (vec![2, 2], 3.0),
            (vec![3, 1], 0.5),
            (vec![4, 0], 9.0),
            (vec![5, 3], 1.0),
        ],
    )
    .unwrap()
}

// The catalog specs come from the shared fixtures crate — the same bytes
// `teaal-accel` embeds (sim cannot depend on accel without a cycle).
const OUTERSPACE: &str = teaal_fixtures::OUTERSPACE_EM;
const GAMMA: &str = teaal_fixtures::GAMMA_EM;
const EXTENSOR: &str = teaal_fixtures::EXTENSOR_EM;
const SIGMA: &str = teaal_fixtures::SIGMA_EM;

#[test]
fn plain_matmul_matches_reference() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    ))
    .unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    check_matches_reference(
        report.final_output().unwrap(),
        &dense_spmspm(&matrix_a(), &matrix_b()),
    );
}

#[test]
fn outerspace_mapping_matches_reference() {
    let spec = TeaalSpec::parse(OUTERSPACE).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    check_matches_reference(
        report.final_output().unwrap(),
        &dense_spmspm(&matrix_a(), &matrix_b()),
    );
    // Two einsums, two blocks (OuterSPACE does not fuse).
    assert_eq!(report.einsums.len(), 2);
    assert_eq!(report.blocks.len(), 2);
    // T is produced in [K, M, N] order but stored [M, K, N]: an online
    // swizzle (merge) must have been recorded.
    assert!(
        report.einsums.iter().any(|e| !e.merges.is_empty()),
        "outerspace must sort its partial products"
    );
}

#[test]
fn gamma_mapping_matches_reference() {
    let spec = TeaalSpec::parse(GAMMA).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    check_matches_reference(
        report.final_output().unwrap(),
        &dense_spmspm(&matrix_a(), &matrix_b()),
    );
    // Gamma's two einsums fuse into one block (paper §5).
    assert_eq!(report.blocks.len(), 1);
}

#[test]
fn extensor_mapping_matches_reference() {
    let spec = TeaalSpec::parse(EXTENSOR).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    check_matches_reference(
        report.final_output().unwrap(),
        &dense_spmspm(&matrix_a(), &matrix_b()),
    );
    // Hierarchical (tiled) intersection happens at the K tile ranks.
    assert!(report.einsums[0].intersections > 0);
}

#[test]
fn sigma_mapping_matches_reference() {
    let spec = TeaalSpec::parse(SIGMA).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    check_matches_reference(
        report.final_output().unwrap(),
        &dense_spmspm(&matrix_a(), &matrix_b()),
    );
    assert_eq!(report.einsums.len(), 3); // S, T, Z
}

#[test]
fn all_four_accelerators_agree() {
    let mut answers = Vec::new();
    for src in [OUTERSPACE, GAMMA, EXTENSOR, SIGMA] {
        let spec = TeaalSpec::parse(src).unwrap();
        let sim = Simulator::new(spec).unwrap();
        let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
        let z = report.final_output().unwrap().clone();
        answers.push(z);
    }
    for w in answers.windows(2) {
        assert_eq!(w[0].max_abs_diff(&w[1]), 0.0);
    }
}

#[test]
fn direct_convolution_matches_reference() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    I: [W]\n",
        "    F: [S]\n",
        "    O: [Q]\n",
        "  expressions:\n",
        "    - O[q] = I[q + s] * F[s]\n",
    ))
    .unwrap();
    let i = Tensor::from_entries(
        "I",
        &["W"],
        &[6],
        vec![
            (vec![0], 1.0),
            (vec![1], 2.0),
            (vec![2], 3.0),
            (vec![3], 4.0),
            (vec![4], 5.0),
            (vec![5], 6.0),
        ],
    )
    .unwrap();
    let f = Tensor::from_entries("F", &["S"], &[2], vec![(vec![0], 1.0), (vec![1], 10.0)]).unwrap();
    let sim = Simulator::new(spec).unwrap().with_rank_extent("Q", 5);
    let report = sim.run(&[i, f]).unwrap();
    let o = report.final_output().unwrap();
    // O[q] = I[q]·1 + I[q+1]·10.
    assert_eq!(o.get(&[0]), Some(21.0));
    assert_eq!(o.get(&[1]), Some(32.0));
    assert_eq!(o.get(&[4]), Some(65.0));
}

#[test]
fn toeplitz_cascade_matches_direct_convolution() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    I: [W]\n",
        "    F: [S]\n",
        "    T: [Q, S]\n",
        "    O: [Q]\n",
        "  expressions:\n",
        "    - T[q, s] = I[q + s]\n",
        "    - O[q] = T[q, s] * F[s]\n",
    ))
    .unwrap();
    let i = Tensor::from_entries(
        "I",
        &["W"],
        &[6],
        vec![
            (vec![0], 1.0),
            (vec![1], 2.0),
            (vec![2], 3.0),
            (vec![3], 4.0),
            (vec![4], 5.0),
            (vec![5], 6.0),
        ],
    )
    .unwrap();
    let f = Tensor::from_entries("F", &["S"], &[2], vec![(vec![0], 1.0), (vec![1], 10.0)]).unwrap();
    let sim = Simulator::new(spec)
        .unwrap()
        .with_rank_extent("Q", 5)
        .with_rank_extent("S", 2);
    let report = sim.run(&[i, f]).unwrap();
    let o = report.final_output().unwrap();
    assert_eq!(o.get(&[0]), Some(21.0));
    assert_eq!(o.get(&[4]), Some(65.0));
}

#[test]
fn union_and_subtraction_semantics() {
    // Y[k] = E[k] + T[k]; M[k] = Y[k] - E[k].
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    E: [K]\n",
        "    T: [K]\n",
        "    Y: [K]\n",
        "    M: [K]\n",
        "  expressions:\n",
        "    - Y[k] = E[k] + T[k]\n",
        "    - M[k] = Y[k] - E[k]\n",
    ))
    .unwrap();
    let e = Tensor::from_entries("E", &["K"], &[6], vec![(vec![0], 1.0), (vec![2], 2.0)]).unwrap();
    let t = Tensor::from_entries("T", &["K"], &[6], vec![(vec![2], 5.0), (vec![4], 7.0)]).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[e, t]).unwrap();
    let y = report.outputs.get("Y").unwrap();
    assert_eq!(y.get(&[0]), Some(1.0));
    assert_eq!(y.get(&[2]), Some(7.0));
    assert_eq!(y.get(&[4]), Some(7.0));
    let m = report.outputs.get("M").unwrap();
    assert_eq!(m.get(&[0]), None); // 1 - 1 = 0 → pruned
    assert_eq!(m.get(&[2]), Some(5.0));
    assert_eq!(m.get(&[4]), Some(7.0));
}

#[test]
fn take_operator_filters_like_gamma() {
    // T[k, m, n] = take(A[k, m], B[k, n], 1): copies B where A is present.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    T: [K, M, N]\n",
        "  expressions:\n",
        "    - T[k, m, n] = take(A[k, m], B[k, n], 1)\n",
    ))
    .unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    let t = report.final_output().unwrap();
    // A[0, 0] and B[0, 1] both exist → T[0, 0, 1] = B[0, 1] = 1.5.
    assert_eq!(t.get(&[0, 0, 1]), Some(1.5));
    // k = 4 has no A entries → nothing copied at k = 4.
    assert_eq!(t.get(&[4, 0, 0]), None);
}

#[test]
fn min_plus_semiring_relaxation() {
    // R[d] = G[d, s] * P[s] over min-plus: single-step SSSP relaxation.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    G: [D, S]\n",
        "    P: [S]\n",
        "    R: [D]\n",
        "  expressions:\n",
        "    - R[d] = G[d, s] * P[s]\n",
    ))
    .unwrap();
    let g = Tensor::from_entries(
        "G",
        &["D", "S"],
        &[3, 3],
        vec![(vec![1, 0], 4.0), (vec![2, 0], 9.0), (vec![2, 1], 1.0)],
    )
    .unwrap();
    let p = Tensor::from_entries("P", &["S"], &[3], vec![(vec![0], 0.5), (vec![1], 2.0)]).unwrap();
    let sim = Simulator::new(spec).unwrap().with_ops(OpTable::sssp());
    let report = sim.run(&[g, p]).unwrap();
    let r = report.final_output().unwrap();
    assert_eq!(r.get(&[1]), Some(4.5)); // 4 + 0.5
    assert_eq!(r.get(&[2]), Some(3.0)); // min(9 + 0.5, 1 + 2)
}

#[test]
fn empty_inputs_produce_empty_outputs() {
    let spec = TeaalSpec::parse(OUTERSPACE).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let a = Tensor::empty("A", &["K", "M"], &[6, 5]);
    let report = sim.run(&[a, matrix_b()]).unwrap();
    assert_eq!(report.final_output().unwrap().nnz(), 0);
    assert_eq!(report.einsums[1].muls, 0);
}

#[test]
fn traffic_is_nonzero_and_energy_positive() {
    let spec = TeaalSpec::parse(GAMMA).unwrap();
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(&[matrix_a(), matrix_b()]).unwrap();
    assert!(report.dram_bytes() > 0);
    assert!(report.energy_joules > 0.0);
    assert!(report.seconds > 0.0);
    assert!(report.dram_bytes_of("A") > 0);
    assert!(report.dram_bytes_of("B") > 0);
}
