//! Model-level behavioral tests: traffic bounds, fusion effects, energy
//! accounting, and binding semantics — the §4.3 machinery end to end.

use teaal_core::TeaalSpec;
use teaal_fibertree::Tensor;
use teaal_sim::{EnergyTable, Simulator};
use teaal_workloads::genmat;

fn inputs(nnz: usize) -> (Tensor, Tensor) {
    (
        genmat::uniform("A", &["K", "M"], 64, 64, nnz, 11),
        genmat::uniform("B", &["K", "N"], 64, 64, nnz, 12),
    )
}

fn plain_spec() -> TeaalSpec {
    TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    ))
    .unwrap()
}

#[test]
fn full_traversal_traffic_matches_footprint() {
    // A single-operand copy streams every element of A exactly once: its
    // DRAM traffic must equal its compressed footprint (leaf elements at
    // 96 bits plus 64-bit upper-rank entries).
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    Z: [K, M]\n",
        "  expressions:\n",
        "    - Z[k, m] = A[k, m]\n",
    ))
    .unwrap();
    let (a, _) = inputs(400);
    let sim = Simulator::new(spec).unwrap();
    let report = sim.run(std::slice::from_ref(&a)).unwrap();
    let k_elems = a.rank_stats()[0].1 as u64;
    let expect = (a.nnz() as u64 * 96 + k_elems * 64) / 8;
    assert_eq!(report.dram_bytes_of("A"), expect);
}

#[test]
fn intersection_skips_reduce_traffic_below_footprint() {
    // With co-iterated operands, unmatched elements are never fetched:
    // lazy traffic stays strictly below the full footprints but above
    // zero (the whole point of sparse acceleration).
    let (a, b) = inputs(400);
    let sim = Simulator::new(plain_spec()).unwrap();
    let report = sim.run(&[a.clone(), b.clone()]).unwrap();
    for (t, tensor) in [("A", &a), ("B", &b)] {
        let traffic = report.dram_bytes_of(t);
        let footprint_ish = (tensor.nnz() * (96 + 64)) as u64 / 8;
        assert!(traffic > 0, "{t} must be touched");
        assert!(traffic <= footprint_ish, "{t}: {traffic} > {footprint_ish}");
    }
}

#[test]
fn energy_table_override_scales_energy() {
    let (a, b) = inputs(300);
    let spec = plain_spec();
    let base = Simulator::new(spec.clone())
        .unwrap()
        .run(&[a.clone(), b.clone()])
        .unwrap();
    let expensive = Simulator::new(spec)
        .unwrap()
        .with_energy(EnergyTable {
            dram_pj_per_bit: 70.0, // 10x default
            ..EnergyTable::default()
        })
        .run(&[a, b])
        .unwrap();
    assert!(expensive.energy_joules > base.energy_joules * 2.0);
}

#[test]
fn denser_inputs_cost_more_everything() {
    let sim = Simulator::new(plain_spec()).unwrap();
    let (a1, b1) = inputs(200);
    let (a2, b2) = inputs(1600);
    let small = sim.run(&[a1, b1]).unwrap();
    let large = sim.run(&[a2, b2]).unwrap();
    assert!(large.dram_bytes() > small.dram_bytes());
    assert!(large.total_ops() > small.total_ops());
    assert!(large.energy_joules > small.energy_joules);
    assert!(large.seconds >= small.seconds);
}

#[test]
fn spatial_mapping_reduces_modelled_time() {
    let serial = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, K, N]\n",
        "  spacetime:\n",
        "    Z:\n",
        "      space: []\n",
        "      time: [M, K, N]\n",
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "          bandwidth: 1_000_000_000_000\n",
        "      subtree:\n",
        "        - name: PE\n",
        "          count: 16\n",
        "          local:\n",
        "            - name: ALU\n",
        "              class: compute\n",
        "              op: mul\n",
    ))
    .unwrap();
    let parallel_yaml = serial_to_parallel();
    let parallel = TeaalSpec::parse(&parallel_yaml).unwrap();
    let (a, b) = inputs(800);
    let ts = Simulator::new(serial)
        .unwrap()
        .run(&[a.clone(), b.clone()])
        .unwrap();
    let tp = Simulator::new(parallel).unwrap().run(&[a, b]).unwrap();
    assert!(
        tp.seconds < ts.seconds,
        "parallel {} should beat serial {}",
        tp.seconds,
        ts.seconds
    );
}

fn serial_to_parallel() -> String {
    concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, K, N]\n",
        "  spacetime:\n",
        "    Z:\n",
        "      space: [M]\n",
        "      time: [K, N]\n",
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "          bandwidth: 1_000_000_000_000\n",
        "      subtree:\n",
        "        - name: PE\n",
        "          count: 16\n",
        "          local:\n",
        "            - name: ALU\n",
        "              class: compute\n",
        "              op: mul\n",
    )
    .to_string()
}

#[test]
fn buffet_evict_on_forces_refetch() {
    // A is re-streamed for every n when bound to a buffet evicting on N.
    let base = concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [N, M, K]\n",
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "        - name: Buf\n",
        "          class: buffet\n",
        "          width: 64\n",
        "          depth: 65536\n",
    );
    let streaming = format!(
        "{base}{}",
        concat!(
            "binding:\n",
            "  Z:\n",
            "    config: Default\n",
            "    storage:\n",
            "      - component: Buf\n",
            "        tensor: A\n",
            "        rank: K\n",
            "        style: lazy\n",
            "        evict-on: N\n",
        )
    );
    let buffered = base.to_string();
    let (a, b) = inputs(500);
    let r_stream = Simulator::new(TeaalSpec::parse(&streaming).unwrap())
        .unwrap()
        .run(&[a.clone(), b.clone()])
        .unwrap();
    let r_buffer = Simulator::new(TeaalSpec::parse(&buffered).unwrap())
        .unwrap()
        .run(&[a, b])
        .unwrap();
    let stream_a = r_stream.dram_bytes_of("A");
    let buffer_a = r_buffer.dram_bytes_of("A");
    assert!(
        stream_a > buffer_a * 4,
        "evict-on N must re-stream A: {stream_a} vs {buffer_a}"
    );
}

#[test]
fn cache_binding_filters_repeat_accesses() {
    // B is looked up per A-element; a big cache turns repeats into hits.
    let cached = concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, K, N]\n",
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: Mem\n",
        "          class: DRAM\n",
        "        - name: C\n",
        "          class: cache\n",
        "          width: 512\n",
        "          depth: 16384\n",
        "binding:\n",
        "  Z:\n",
        "    config: Default\n",
        "    storage:\n",
        "      - component: C\n",
        "        tensor: B\n",
        "        rank: K\n",
        "        style: lazy\n",
    );
    let (a, b) = inputs(600);
    let report = Simulator::new(TeaalSpec::parse(cached).unwrap())
        .unwrap()
        .run(&[a, b])
        .unwrap();
    let t = report.einsums[0]
        .traffic
        .iter()
        .find(|t| t.tensor == "B")
        .expect("B tracked");
    // On-chip reads far exceed DRAM fills: the cache captured reuse.
    assert!(
        t.buffer_read_bytes > t.fill_bytes * 2,
        "reads {} vs fills {}",
        t.buffer_read_bytes,
        t.fill_bytes
    );
}

#[test]
fn report_display_is_complete() {
    let (a, b) = inputs(100);
    let sim = Simulator::new(plain_spec()).unwrap();
    let report = sim.run(&[a, b]).unwrap();
    let text = report.to_string();
    assert!(text.contains("einsum Z"));
    assert!(text.contains("DRAM"));
    assert!(text.contains("bottleneck"));
}

#[test]
fn plans_and_blocks_are_inspectable() {
    let sim = Simulator::new(plain_spec()).unwrap();
    assert_eq!(sim.plans().len(), 1);
    assert_eq!(sim.blocks().len(), 1);
    assert_eq!(sim.blocks()[0].members, vec![0]);
}

#[test]
fn missing_input_is_a_clean_error() {
    let sim = Simulator::new(plain_spec()).unwrap();
    let (a, _) = inputs(10);
    let err = sim.run(&[a]).unwrap_err();
    assert!(err.to_string().contains('B'));
}
