//! Property-based end-to-end validation: random sparse matrices pushed
//! through the full spec→lower→execute pipeline must match a dense
//! reference for every mapping style.

use std::collections::BTreeMap;

use proptest::prelude::*;
use teaal_core::TeaalSpec;
use teaal_fibertree::Tensor;
use teaal_sim::Simulator;

fn arb_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    let mat = |name: &'static str, cols: &'static str| {
        proptest::collection::btree_map((0u64..12, 0u64..12), 1.0f64..9.0, 0..30).prop_map(
            move |m| {
                let entries: Vec<(Vec<u64>, f64)> =
                    m.into_iter().map(|((r, c), v)| (vec![r, c], v)).collect();
                Tensor::from_entries(name, &["K", cols], &[12, 12], entries).expect("in shape")
            },
        )
    };
    (mat("A", "M"), mat("B", "N"))
}

fn dense_reference(a: &Tensor, b: &Tensor) -> BTreeMap<(u64, u64), f64> {
    let mut out = BTreeMap::new();
    for (pa, va) in a.entries() {
        for (pb, vb) in b.entries() {
            if pa[0] == pb[0] {
                *out.entry((pa[1], pb[1])).or_insert(0.0) += va * vb;
            }
        }
    }
    out.retain(|_, v| *v != 0.0);
    out
}

fn check(spec_src: &str, a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    let spec = TeaalSpec::parse(spec_src).expect("spec parses");
    let sim = Simulator::new(spec).expect("spec lowers");
    let report = sim.run(&[a.clone(), b.clone()]).expect("runs");
    let z = report.final_output().expect("Z produced");
    let want = dense_reference(a, b);
    let mut got = BTreeMap::new();
    for (p, v) in z.entries() {
        got.insert((p[0], p[1]), v);
    }
    prop_assert_eq!(got.len(), want.len(), "nnz mismatch");
    for (k, v) in &want {
        let g = got.get(k).copied().unwrap_or(f64::NAN);
        prop_assert!((g - v).abs() < 1e-9, "at {:?}: {} vs {}", k, g, v);
    }
    Ok(())
}

const OUTERSPACE_STYLE: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [K, M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - T[k, m, n] = A[k, m] * B[k, n]\n",
    "    - Z[m, n] = T[k, m, n]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    T: [M, K, N]\n",
    "  partitioning:\n",
    "    T:\n",
    "      (K, M): [flatten()]\n",
    "      KM: [uniform_occupancy(A.4), uniform_occupancy(A.2)]\n",
    "    Z:\n",
    "      M: [uniform_occupancy(T.3)]\n",
    "  loop-order:\n",
    "    T: [KM2, KM1, KM0, N]\n",
    "    Z: [M1, M0, N, K]\n",
);

const TILED_STYLE: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  partitioning:\n",
    "    Z:\n",
    "      K: [uniform_shape(5), uniform_shape(2)]\n",
    "      M: [uniform_shape(4)]\n",
    "      N: [uniform_shape(4)]\n",
    "  loop-order:\n",
    "    Z: [N1, K2, M1, K1, M0, N0, K0]\n",
);

const GUSTAVSON_STYLE: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [K, M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - T[k, m, n] = take(A[k, m], B[k, n], 1)\n",
    "    - Z[m, n] = T[k, m, n] * A[k, m]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [M, K]\n",
    "    T: [M, K, N]\n",
    "  partitioning:\n",
    "    T:\n",
    "      M: [uniform_occupancy(A.2)]\n",
    "    Z:\n",
    "      M: [uniform_occupancy(A.2)]\n",
    "  loop-order:\n",
    "    T: [M1, M0, K, N]\n",
    "    Z: [M1, M0, N, K]\n",
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outerspace_style_matches_reference((a, b) in arb_pair()) {
        check(OUTERSPACE_STYLE, &a, &b)?;
    }

    #[test]
    fn tiled_style_matches_reference((a, b) in arb_pair()) {
        check(TILED_STYLE, &a, &b)?;
    }

    #[test]
    fn gustavson_style_matches_reference((a, b) in arb_pair()) {
        check(GUSTAVSON_STYLE, &a, &b)?;
    }

    #[test]
    fn mapping_never_changes_the_answer((a, b) in arb_pair()) {
        // The algorithm/mapping split (§2.3): every mapping of the same
        // Einsum produces the same tensor.
        let mut answers = Vec::new();
        for spec in [OUTERSPACE_STYLE, TILED_STYLE, GUSTAVSON_STYLE] {
            let sim = Simulator::new(TeaalSpec::parse(spec).expect("parses"))
                .expect("lowers");
            let report = sim.run(&[a.clone(), b.clone()]).expect("runs");
            answers.push(report.final_output().expect("Z").clone());
        }
        prop_assert_eq!(answers[0].max_abs_diff(&answers[1]), 0.0);
        prop_assert_eq!(answers[1].max_abs_diff(&answers[2]), 0.0);
    }
}
