//! Shard-parallel execution is bit-identical to the sequential oracle.
//!
//! `Simulator::with_threads(n)` partitions eligible Einsums' top loop
//! ranks across scoped workers and merges instruments and outputs
//! deterministically. The contract pinned here: for every catalog spec
//! and every synthetic spec below, an `n`-thread run produces the same
//! report as the 1-thread run *bit for bit* — every instrument counter,
//! modelled time, energy, and output entry. Plans the shard-exactness
//! analysis cannot prove (caches, inexact float reductions over shared
//! output keys, pair-coordinate tops) fall back to sequential execution,
//! which satisfies the contract trivially; the synthetic specs are
//! chosen so the sharded path genuinely runs (disjoint streaming merges,
//! overlap merges under the exact min-plus reduction, union and
//! intersection tops).

use teaal_core::TeaalSpec;
use teaal_fibertree::{CompressedTensor, Tensor, TensorData};
use teaal_sim::{OpTable, SimReport, Simulator};
use teaal_workloads::genmat;

fn assert_reports_identical(label: &str, seq: &SimReport, par: &SimReport) {
    assert_eq!(
        seq.einsums, par.einsums,
        "{label}: instrument counters diverge under sharding"
    );
    assert_eq!(
        seq.seconds.to_bits(),
        par.seconds.to_bits(),
        "{label}: modelled time diverges"
    );
    assert_eq!(
        seq.cycles.to_bits(),
        par.cycles.to_bits(),
        "{label}: modelled cycles diverge"
    );
    assert_eq!(
        seq.energy_joules.to_bits(),
        par.energy_joules.to_bits(),
        "{label}: modelled energy diverges"
    );
    assert_eq!(
        seq.outputs.keys().collect::<Vec<_>>(),
        par.outputs.keys().collect::<Vec<_>>(),
        "{label}: output sets diverge"
    );
    for (name, s) in &seq.outputs {
        let p = &par.outputs[name];
        assert_eq!(
            s.leaves(),
            p.leaves(),
            "{label}/{name}: output content diverges"
        );
        assert_eq!(s.nnz(), p.nnz(), "{label}/{name}: nnz diverges");
        assert_eq!(
            s.rank_stats(),
            p.rank_stats(),
            "{label}/{name}: structure diverges"
        );
    }
}

fn inputs() -> (Tensor, Tensor) {
    (
        genmat::uniform("A", &["K", "M"], 60, 50, 700, 21),
        genmat::uniform("B", &["K", "N"], 60, 40, 600, 22),
    )
}

/// All four catalog accelerator specs: 1-thread vs 4-thread, owned and
/// compressed pipelines.
#[test]
fn catalog_specs_are_thread_count_invariant() {
    let (a, b) = inputs();
    let ca = TensorData::Compressed(CompressedTensor::from_tensor(&a).unwrap());
    let cb = TensorData::Compressed(CompressedTensor::from_tensor(&b).unwrap());
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let spec = TeaalSpec::parse(yaml).unwrap();
        let seq = Simulator::new(spec.clone())
            .unwrap()
            .with_threads(1)
            .run(&[a.clone(), b.clone()])
            .unwrap();
        let par = Simulator::new(spec.clone())
            .unwrap()
            .with_threads(4)
            .run(&[a.clone(), b.clone()])
            .unwrap();
        assert_reports_identical(label, &seq, &par);

        let cseq = Simulator::new(spec.clone())
            .unwrap()
            .with_threads(1)
            .run_data_compressed(&[&ca, &cb])
            .unwrap();
        let cpar = Simulator::new(spec)
            .unwrap()
            .with_threads(4)
            .run_data_compressed(&[&ca, &cb])
            .unwrap();
        assert_reports_identical(&format!("{label} (compressed)"), &cseq, &cpar);
    }
}

/// Gustavson SpMSpM with the output ranks outermost: shards write
/// disjoint key ranges and stream straight into per-shard builders
/// merged by concatenation.
const GUSTAVSON_CONCORDANT: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    Z: [M, N, K]\n",
);

/// The same kernel with the contraction rank outermost: every shard
/// reduces into the same output keys, so the merge must fold shard
/// partials — only exact (order-insensitive) reductions qualify, and the
/// min-plus table declares itself exact.
const GUSTAVSON_OVERLAP: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    Z: [K, M, N]\n",
);

/// Elementwise sum: the top level unions the operands, exercising the
/// bounded union stream end-to-end.
const ELEMENTWISE_UNION: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [M, N]\n",
    "    B: [M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[m, n] + B[m, n]\n",
);

/// Shard-count invariance on random tensors (the satellite property):
/// reports must not depend on how many workers the top rank splits
/// across — 1, 2, 7, or the machine's parallelism.
#[test]
fn shard_count_never_changes_the_report() {
    let host = std::thread::available_parallelism().map_or(2, usize::from);
    let cases: [(&str, &str, OpTable); 3] = [
        (
            "gustavson/disjoint-stream",
            GUSTAVSON_CONCORDANT,
            OpTable::arithmetic(),
        ),
        (
            "gustavson/overlap-minplus",
            GUSTAVSON_OVERLAP,
            OpTable::sssp(),
        ),
        (
            "elementwise/union",
            ELEMENTWISE_UNION,
            OpTable::arithmetic(),
        ),
    ];
    for seed in [3u64, 11] {
        let a = genmat::uniform("A", &["K", "M"], 40, 48, 350, seed);
        let b = genmat::uniform("B", &["K", "N"], 40, 32, 300, seed + 1);
        let ea = genmat::uniform("A", &["M", "N"], 48, 32, 400, seed + 2);
        let eb = genmat::uniform("B", &["M", "N"], 48, 32, 380, seed + 3);
        for (label, yaml, ops) in &cases {
            let spec = TeaalSpec::parse(yaml).unwrap();
            let ins: &[Tensor] = if *label == "elementwise/union" {
                &[ea.clone(), eb.clone()]
            } else {
                &[a.clone(), b.clone()]
            };
            let run_with = |threads: usize| {
                let sim = Simulator::new(spec.clone())
                    .unwrap()
                    .with_ops(*ops)
                    .with_threads(threads);
                let owned = sim.run(ins).unwrap();
                let data: Vec<TensorData> =
                    ins.iter().map(|t| TensorData::Owned(t.clone())).collect();
                let refs: Vec<&TensorData> = data.iter().collect();
                let compressed = sim.run_data_compressed(&refs).unwrap();
                (owned, compressed)
            };
            let (seq, cseq) = run_with(1);
            for threads in [2usize, 7, host] {
                let (par, cpar) = run_with(threads);
                assert_reports_identical(&format!("{label} x{threads} seed{seed}"), &seq, &par);
                assert_reports_identical(
                    &format!("{label} x{threads} seed{seed} (compressed)"),
                    &cseq,
                    &cpar,
                );
            }
        }
    }
}

/// The overlap fallback: floating-point `+` is not associative, so an
/// overlap-sharded fold could change bits — the planner must refuse and
/// run sequentially, keeping the report identical anyway.
#[test]
fn inexact_overlap_reductions_still_match_sequential() {
    let (a, b) = inputs();
    let spec = TeaalSpec::parse(GUSTAVSON_OVERLAP).unwrap();
    let seq = Simulator::new(spec.clone())
        .unwrap()
        .with_threads(1)
        .run(&[a.clone(), b.clone()])
        .unwrap();
    let par = Simulator::new(spec)
        .unwrap()
        .with_threads(8)
        .run(&[a, b])
        .unwrap();
    assert_reports_identical("gustavson/overlap-arithmetic", &seq, &par);
}
