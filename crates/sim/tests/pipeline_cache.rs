//! Staged-pipeline cache validation: caching must never change results.
//!
//! The [`EvalContext`] puts a content-addressed cache boundary at every
//! pipeline stage (parse, compile, input transform, whole report). These
//! tests pin the contract that makes those caches safe to share across
//! requests, mapper candidates, and threads:
//!
//! - a warm-cache evaluation is **bit-identical** to a cold-cache one
//!   (instruments, time/energy, outputs) on every SpMSpM catalog spec,
//!   sequentially and with `--threads 4`;
//! - a warm-cache `explore_fast` on Gamma performs **zero** redundant
//!   input transforms (per-instance transform-cache counters);
//! - compiled plans and reports are shared as `Arc`s, not recomputed.

use std::collections::BTreeMap;

use proptest::prelude::*;
use teaal_core::TeaalSpec;
use teaal_fibertree::{Tensor, TensorData};
use teaal_sim::{
    explore_fast, explore_fast_with_context, EvalContext, ExploreConfig, OpTable, SimReport,
    Simulator,
};
use teaal_workloads::genmat;

/// Same input group as the mapper-search suite: sized so every catalog
/// spec's partitioning lowers.
fn inputs(seed: u64) -> Vec<Tensor> {
    let a = genmat::uniform("A", &["K", "M"], 48, 48, 320, seed);
    let b = genmat::uniform("B", &["K", "N"], 48, 40, 280, seed + 1);
    vec![a, b]
}

/// A bit-exact fingerprint of everything a report carries: rendered
/// instruments/traffic, the raw f64 bits of time and energy, and a
/// content hash per output tensor (representation-independent, value
/// bits included).
fn fingerprint(report: &SimReport) -> (String, u64, u64, BTreeMap<String, u64>) {
    (
        format!("{report}"),
        report.seconds.to_bits(),
        report.energy_joules.to_bits(),
        report
            .outputs
            .iter()
            .map(|(name, t)| (name.clone(), t.content_hash()))
            .collect(),
    )
}

#[test]
fn warm_cache_is_bit_identical_to_cold_on_all_catalog_specs() {
    let ins = inputs(11);
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        for threads in [1usize, 4] {
            let spec = TeaalSpec::parse(yaml).unwrap();
            let baseline = Simulator::new(spec.clone())
                .unwrap()
                .with_threads(threads)
                .run(&ins)
                .unwrap_or_else(|e| panic!("{label}: uncached run failed: {e}"));

            let ctx = EvalContext::new();
            let sim = ctx.simulator(&spec).unwrap().with_threads(threads);
            let cold = sim.run(&ins).unwrap();
            assert!(
                ctx.transforms().misses() > 0,
                "{label}: cold run must populate the transform cache"
            );
            let warm = sim.run(&ins).unwrap();
            assert!(
                ctx.transforms().hits() > 0,
                "{label}: warm run must hit the transform cache"
            );

            let want = fingerprint(&baseline);
            assert_eq!(
                fingerprint(&cold),
                want,
                "{label} (threads={threads}): cold cached run differs from uncached"
            );
            assert_eq!(
                fingerprint(&warm),
                want,
                "{label} (threads={threads}): warm cached run differs from uncached"
            );
        }
    }
}

#[test]
fn report_cache_returns_the_same_arc_for_identical_requests() {
    let ins = inputs(12);
    let data: Vec<TensorData> = ins.iter().map(|t| TensorData::Owned(t.clone())).collect();
    let refs: Vec<&TensorData> = data.iter().collect();
    for (label, yaml) in teaal_fixtures::spmspm_specs() {
        let ctx = EvalContext::new();
        let spec = TeaalSpec::parse(yaml).unwrap();
        let sim = ctx.simulator(&spec).unwrap();
        let first = sim.run_data_cached(&refs).unwrap();
        let second = sim.run_data_cached(&refs).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "{label}: identical requests must share one cached report"
        );
        // A different op table is a different request.
        let other = ctx
            .simulator(&spec)
            .unwrap()
            .with_ops(OpTable::sssp())
            .run_data_cached(&refs)
            .unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&first, &other),
            "{label}: changing the op table must miss the report cache"
        );
    }
}

#[test]
fn compiled_plans_are_shared_across_simulators() {
    let ctx = EvalContext::new();
    let spec = TeaalSpec::parse(teaal_fixtures::GAMMA_EM).unwrap();
    let a = ctx.simulator(&spec).unwrap();
    let b = ctx.simulator(&spec).unwrap();
    assert!(std::sync::Arc::ptr_eq(a.compiled(), b.compiled()));
    assert_eq!(ctx.compiled_len(), 1);
}

#[test]
fn warm_explore_fast_on_gamma_performs_zero_redundant_transforms() {
    let ins = inputs(7);
    let spec = TeaalSpec::parse(teaal_fixtures::GAMMA_EM).unwrap();
    let cfg = ExploreConfig::default();

    // Reference outcome without any caching.
    let plain = explore_fast(&spec, "Z", &ins, OpTable::arithmetic(), &cfg).unwrap();

    let ctx = EvalContext::new();
    let cold = explore_fast_with_context(&spec, "Z", &ins, OpTable::arithmetic(), &cfg, Some(&ctx))
        .unwrap();
    let cold_misses = ctx.transforms().misses();
    assert!(cold_misses > 0, "cold explore must populate the cache");

    let warm = explore_fast_with_context(&spec, "Z", &ins, OpTable::arithmetic(), &cfg, Some(&ctx))
        .unwrap();
    assert_eq!(
        ctx.transforms().misses(),
        cold_misses,
        "warm explore must perform zero redundant input transforms"
    );
    assert!(
        ctx.transforms().hits() > 0,
        "warm explore must be served from the transform cache"
    );

    // Caching must not change the search outcome, bit for bit.
    for (name, outcome) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(
            outcome.candidates.len(),
            plain.candidates.len(),
            "{name}: candidate count changed under caching"
        );
        for (c, p) in outcome.candidates.iter().zip(&plain.candidates) {
            assert_eq!(c.loop_order, p.loop_order, "{name}: ranking changed");
            assert_eq!(c.seconds.to_bits(), p.seconds.to_bits(), "{name}: time");
            assert_eq!(
                c.energy_joules.to_bits(),
                p.energy_joules.to_bits(),
                "{name}: energy"
            );
            assert_eq!(c.dram_bytes, p.dram_bytes, "{name}: traffic");
        }
    }
}

/// Simple un-partitioned SpMSpM for the property test (rank extents free,
/// so arbitrary small matrices lower).
const SPMSPM: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - Z[m, n] = A[k, m] * B[k, n]\n",
    "mapping:\n",
    "  loop-order:\n",
    "    Z: [M, N, K]\n",
);

fn arb_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    let mat = |name: &'static str, cols: &'static str| {
        proptest::collection::btree_map((0u64..12, 0u64..12), 1.0f64..9.0, 0..30).prop_map(
            move |m| {
                let entries: Vec<(Vec<u64>, f64)> =
                    m.into_iter().map(|((r, c), v)| (vec![r, c], v)).collect();
                Tensor::from_entries(name, &["K", cols], &[12, 12], entries).expect("in shape")
            },
        )
    };
    (mat("A", "M"), mat("B", "N"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random inputs, the cached pipeline (cold and warm, 1 and 4
    /// threads) reproduces the uncached run bit for bit.
    #[test]
    fn cached_run_matches_uncached_on_random_inputs((a, b) in arb_pair()) {
        let ins = vec![a, b];
        for threads in [1usize, 4] {
            let spec = TeaalSpec::parse(SPMSPM).unwrap();
            let baseline = Simulator::new(spec.clone())
                .unwrap()
                .with_threads(threads)
                .run(&ins)
                .unwrap();
            let ctx = EvalContext::new();
            let sim = ctx.simulator(&spec).unwrap().with_threads(threads);
            let cold = sim.run(&ins).unwrap();
            let warm = sim.run(&ins).unwrap();
            let want = fingerprint(&baseline);
            prop_assert_eq!(&fingerprint(&cold), &want);
            prop_assert_eq!(&fingerprint(&warm), &want);
        }
    }
}
