//! Direct tests of the lowering pass: the paper's §3 examples expressed
//! as assertions on the generated plans.

use teaal_core::ir::{self, Descent, PlanStep};
use teaal_core::TeaalSpec;

const OUTERSPACE: &str = concat!(
    "einsum:\n",
    "  declaration:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [K, M, N]\n",
    "    Z: [M, N]\n",
    "  expressions:\n",
    "    - T[k, m, n] = A[k, m] * B[k, n]\n",
    "    - Z[m, n] = T[k, m, n]\n",
    "mapping:\n",
    "  rank-order:\n",
    "    A: [K, M]\n",
    "    B: [K, N]\n",
    "    T: [M, K, N]\n",
    "    Z: [M, N]\n",
    "  partitioning:\n",
    "    T:\n",
    "      (K, M): [flatten()]\n",
    "      KM: [uniform_occupancy(A.256), uniform_occupancy(A.16)]\n",
    "    Z:\n",
    "      M: [uniform_occupancy(T.128), uniform_occupancy(T.8)]\n",
    "  loop-order:\n",
    "    T: [KM2, KM1, KM0, N]\n",
    "    Z: [M2, M1, M0, N, K]\n",
    "  spacetime:\n",
    "    T:\n",
    "      space: [KM1, KM0]\n",
    "      time: [KM2, N]\n",
    "    Z:\n",
    "      space: [M1, M0]\n",
    "      time: [M2, N, K]\n",
);

#[test]
fn outerspace_multiply_phase_plan() {
    let spec = TeaalSpec::parse(OUTERSPACE).unwrap();
    let plans = ir::lower(&spec).unwrap();
    let t = &plans[0];

    // A is flattened then occupancy-partitioned twice, as the leader.
    let a = t.tensor_plan("A").unwrap();
    assert_eq!(
        a.steps,
        vec![
            PlanStep::Flatten {
                upper: "K".into(),
                new_name: "KM".into()
            },
            PlanStep::SplitOccLeader {
                rank: "KM".into(),
                size: 256,
                upper: "KM2".into(),
                lower: "KM1".into(),
            },
            PlanStep::SplitOccLeader {
                rank: "KM1".into(),
                size: 16,
                upper: "KM1".into(),
                lower: "KM0".into(),
            },
        ]
    );
    assert_eq!(a.working_order, vec!["KM2", "KM1", "KM0"]);
    assert!(!a.online_swizzle, "inputs swizzle offline");

    // B keeps [K, N] and projects its K at the flattened bottom rank.
    let b = t.tensor_plan("B").unwrap();
    assert!(b.steps.is_empty());
    assert_eq!(b.working_order, vec!["K", "N"]);
    let b_roles = &t.access_roles[1].roles;
    assert!(b_roles[0].is_empty(), "skip at KM2");
    assert!(b_roles[1].is_empty(), "skip at KM1");
    assert_eq!(
        b_roles[2],
        vec![Descent::Project { component: 0 }],
        "project k at KM0"
    );
    assert_eq!(b_roles[3], vec![Descent::CoIterate], "co-iterate N");

    // T is produced in [K, M, N] root order but stored [M, K, N]:
    // the §3.2.2 online swizzle.
    assert_eq!(t.output.produced_order, vec!["K", "M", "N"]);
    assert_eq!(t.output.target_order, vec!["M", "K", "N"]);
    assert!(t.output.online_swizzle);

    // Spacetime: KM1/KM0 in space, KM2/N in time.
    let spaces: Vec<&str> = t.space_ranks().iter().map(|l| l.name.as_str()).collect();
    assert_eq!(spaces, vec!["KM1", "KM0"]);
}

#[test]
fn outerspace_merge_phase_plan() {
    let spec = TeaalSpec::parse(OUTERSPACE).unwrap();
    let plans = ir::lower(&spec).unwrap();
    let z = &plans[1];

    // T arrives as [M, K, N], is partitioned on M (leader T itself), and
    // needs an online swizzle to put K innermost for the merge.
    let t = z.tensor_plan("T").unwrap();
    assert!(t.online_swizzle, "intermediate reorders online");
    assert_eq!(t.working_order, vec!["M2", "M1", "M0", "N", "K"]);
    assert!(matches!(
        t.steps.last(),
        Some(PlanStep::Swizzle(order)) if order.last() == Some(&"K".to_string())
    ));

    // K is a pure reduction rank.
    let k = z.loop_ranks.iter().find(|l| l.name == "K").unwrap();
    assert!(k.reduction);
    let n = z.loop_ranks.iter().find(|l| l.name == "N").unwrap();
    assert!(!n.reduction);

    // Upper occupancy ranks bind no variables; bottom ranks do.
    let m2 = z.loop_ranks.iter().find(|l| l.name == "M2").unwrap();
    assert!(m2.binds.is_empty());
    let m0 = z.loop_ranks.iter().find(|l| l.name == "M0").unwrap();
    assert_eq!(m0.binds, vec![("M".to_string(), 0)]);
}

#[test]
fn gamma_follower_adopts_aligned_context_only() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    T: [K, M, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - T[k, m, n] = take(A[k, m], B[k, n], 1)\n",
        "    - Z[m, n] = T[k, m, n] * A[k, m]\n",
        "mapping:\n",
        "  rank-order:\n",
        "    A: [M, K]\n",
        "    B: [K, N]\n",
        "    T: [M, K, N]\n",
        "    Z: [M, N]\n",
        "  partitioning:\n",
        "    T:\n",
        "      M: [uniform_occupancy(A.32)]\n",
        "      K: [uniform_occupancy(A.64)]\n",
        "    Z:\n",
        "      M: [uniform_occupancy(A.32)]\n",
        "      K: [uniform_occupancy(A.64)]\n",
        "  loop-order:\n",
        "    T: [M1, M0, K1, K0, N]\n",
        "    Z: [M1, M0, K1, N, K0]\n",
    ))
    .unwrap();
    let plans = ir::lower(&spec).unwrap();
    let t = &plans[0];

    // A (the leader) is partitioned on both M and K.
    let a = t.tensor_plan("A").unwrap();
    assert_eq!(
        a.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::SplitOccLeader { .. }))
            .count(),
        2
    );

    // B's K sits at the top level while the leader's K sits under M:
    // contexts differ, so B must NOT adopt the partitioning — it projects
    // at K0 instead.
    let b = t.tensor_plan("B").unwrap();
    assert!(
        b.steps.is_empty(),
        "B skips misaligned occupancy splits: {:?}",
        b.steps
    );
    assert_eq!(b.working_order, vec!["K", "N"]);

    // In the second Einsum, T (same [M, K, ...] context as A) adopts both
    // splits as a follower.
    let z = &plans[1];
    let t_in_z = z.tensor_plan("T").unwrap();
    assert_eq!(
        t_in_z
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::SplitOccFollower { .. }))
            .count(),
        2
    );
}

#[test]
fn extensor_hierarchical_tiles_coiterate() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
        "mapping:\n",
        "  partitioning:\n",
        "    Z:\n",
        "      K: [uniform_shape(128), uniform_shape(16)]\n",
        "      M: [uniform_shape(128), uniform_shape(16)]\n",
        "      N: [uniform_shape(128), uniform_shape(16)]\n",
        "  loop-order:\n",
        "    Z: [N2, K2, M2, M1, N1, K1, M0, N0, K0]\n",
    ))
    .unwrap();
    let plans = ir::lower(&spec).unwrap();
    let z = &plans[0];
    // Both operands co-iterate at every K level: hierarchical (tile-level
    // then element-level) intersection emerges from the mapping alone.
    for (ai, _) in z.equation.rhs.accesses().iter().enumerate() {
        for (li, l) in z.loop_ranks.iter().enumerate() {
            if l.name.starts_with('K') {
                assert_eq!(
                    z.access_roles[ai].roles[li],
                    vec![Descent::CoIterate],
                    "access {ai} must co-iterate {}",
                    l.name
                );
            }
        }
    }
}

#[test]
fn loop_order_must_cover_derived_ranks() {
    let bad = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    Z: [M]\n",
        "  expressions:\n",
        "    - Z[m] = A[k, m]\n",
        "mapping:\n",
        "  partitioning:\n",
        "    Z:\n",
        "      K: [uniform_shape(4)]\n",
        "  loop-order:\n",
        "    Z: [M, K]\n", // K was split into K1/K0: stale loop order
    ))
    .unwrap();
    assert!(ir::lower(&bad).is_err());
}

#[test]
fn default_loop_order_is_derived_leaf_order() {
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    B: [K, N]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * B[k, n]\n",
    ))
    .unwrap();
    let plans = ir::lower(&spec).unwrap();
    let names: Vec<&str> = plans[0]
        .loop_ranks
        .iter()
        .map(|l| l.name.as_str())
        .collect();
    assert_eq!(names, vec!["M", "N", "K"]);
    // Everything defaults to temporal.
    assert!(plans[0].space_ranks().is_empty());
}
