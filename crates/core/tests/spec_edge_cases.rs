//! Edge-case coverage for the specification front end: malformed YAML,
//! inconsistent specs, and unusual-but-legal constructions.

use teaal_core::{ir, TeaalSpec};

fn minimal(extra: &str) -> String {
    format!(
        concat!(
            "einsum:\n",
            "  declaration:\n",
            "    A: [K, M]\n",
            "    B: [K, N]\n",
            "    Z: [M, N]\n",
            "  expressions:\n",
            "    - Z[m, n] = A[k, m] * B[k, n]\n",
            "{extra}",
        ),
        extra = extra
    )
}

#[test]
fn scalar_output_einsum_lowers() {
    // Full reduction to a 0-tensor — no output ranks at all.
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K]\n",
        "    B: [K]\n",
        "    Z: []\n",
        "  expressions:\n",
        "    - Z = A[k] * B[k]\n",
    ));
    // A bare scalar output is parsed as a zero-index access.
    let spec = spec.unwrap();
    let plans = ir::lower(&spec).unwrap();
    assert_eq!(plans[0].loop_ranks.len(), 1);
    assert!(plans[0].loop_ranks[0].reduction);
}

#[test]
fn duplicate_rank_in_loop_order_is_rejected() {
    let s = minimal("mapping:\n  loop-order:\n    Z: [M, M, K]\n");
    let spec = TeaalSpec::parse(&s).unwrap();
    assert!(ir::lower(&spec).is_err());
}

#[test]
fn missing_rank_in_loop_order_is_rejected() {
    let s = minimal("mapping:\n  loop-order:\n    Z: [M, N]\n");
    let spec = TeaalSpec::parse(&s).unwrap();
    assert!(ir::lower(&spec).is_err());
}

#[test]
fn partitioning_unknown_tensor_rank_is_rejected() {
    let s = minimal("mapping:\n  partitioning:\n    Z:\n      Q: [uniform_shape(4)]\n");
    let spec = TeaalSpec::parse(&s).unwrap();
    assert!(ir::lower(&spec).is_err());
}

#[test]
fn flatten_of_three_ranks_is_rejected() {
    let s = minimal(concat!(
        "mapping:\n",
        "  partitioning:\n",
        "    Z:\n",
        "      (K, M, N): [flatten()]\n",
    ));
    let spec = TeaalSpec::parse(&s).unwrap();
    assert!(ir::lower(&spec).is_err());
}

#[test]
fn flatten_on_single_rank_target_is_rejected() {
    let s = minimal("mapping:\n  partitioning:\n    Z:\n      K: [flatten()]\n");
    let spec = TeaalSpec::parse(&s).unwrap();
    assert!(ir::lower(&spec).is_err());
}

#[test]
fn yaml_tab_indentation_is_a_parse_error() {
    let err = TeaalSpec::parse("einsum:\n\tdeclaration:\n").unwrap_err();
    assert!(err.to_string().contains("tab"));
}

#[test]
fn unknown_format_type_is_rejected() {
    let s = minimal(concat!(
        "format:\n",
        "  A:\n",
        "    X:\n",
        "      K:\n",
        "        format: Q\n",
    ));
    assert!(TeaalSpec::parse(&s).is_err());
}

#[test]
fn spacetime_covering_disjoint_rank_sets() {
    // Spacetime lists may reference only some loop ranks; the rest default
    // to temporal.
    let s = minimal(concat!(
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, N, K]\n",
        "  spacetime:\n",
        "    Z:\n",
        "      space: [M]\n",
        "      time: [N, K]\n",
    ));
    let spec = TeaalSpec::parse(&s).unwrap();
    let plans = ir::lower(&spec).unwrap();
    assert!(plans[0].loop_ranks[0].is_space);
    assert!(!plans[0].loop_ranks[1].is_space);
}

#[test]
fn coord_stamped_time_rank_is_recorded() {
    let s = minimal(concat!(
        "mapping:\n",
        "  loop-order:\n",
        "    Z: [M, N, K]\n",
        "  spacetime:\n",
        "    Z:\n",
        "      space: [M]\n",
        "      time: [N.coord, K]\n",
    ));
    let spec = TeaalSpec::parse(&s).unwrap();
    let plans = ir::lower(&spec).unwrap();
    let n = plans[0].loop_ranks.iter().find(|l| l.name == "N").unwrap();
    assert!(n.coord_stamped);
}

#[test]
fn intersect_binding_roundtrips() {
    let s = minimal(concat!(
        "architecture:\n",
        "  configs:\n",
        "    Default:\n",
        "      name: Sys\n",
        "      local:\n",
        "        - name: IX\n",
        "          class: intersect\n",
        "          type: leader-follower\n",
        "          leader: 1\n",
        "binding:\n",
        "  Z:\n",
        "    config: Default\n",
        "    intersect:\n",
        "      - component: IX\n",
    ));
    let spec = TeaalSpec::parse(&s).unwrap();
    let b = spec.binding.for_einsum("Z");
    assert_eq!(b.intersects.len(), 1);
    assert_eq!(b.intersects[0].component, "IX");
}

#[test]
fn deeply_chained_partitioning_produces_many_ranks() {
    let s = minimal(concat!(
        "mapping:\n",
        "  partitioning:\n",
        "    Z:\n",
        "      K: [uniform_shape(64), uniform_shape(16), uniform_shape(4)]\n",
        "  loop-order:\n",
        "    Z: [K3, K2, K1, M, N, K0]\n",
    ));
    let spec = TeaalSpec::parse(&s).unwrap();
    let plans = ir::lower(&spec).unwrap();
    assert_eq!(plans[0].loop_ranks.len(), 6);
    let k0 = plans[0].loop_ranks.iter().find(|l| l.name == "K0").unwrap();
    assert_eq!(k0.binds, vec![("K".to_string(), 0)]);
    let k3 = plans[0].loop_ranks.iter().find(|l| l.name == "K3").unwrap();
    assert!(k3.binds.is_empty());
}

#[test]
fn self_multiplication_uses_one_tensor_twice() {
    // Z[m, n] = A[k, m] * A[k, n]: the same tensor appears as two
    // accesses with different index patterns (Aᵀ·A proper).
    let spec = TeaalSpec::parse(concat!(
        "einsum:\n",
        "  declaration:\n",
        "    A: [K, M]\n",
        "    Z: [M, N]\n",
        "  expressions:\n",
        "    - Z[m, n] = A[k, m] * A[k, n]\n",
    ))
    .unwrap();
    // Note: both accesses share one tensor plan keyed by name, so the
    // second access reuses the first's working order. Lowering must not
    // crash; execution correctness for self-products with *different*
    // orders per access is documented as unsupported.
    let lowered = ir::lower(&spec);
    // Either a clean plan or a clean error — never a panic.
    let _ = lowered;
}
